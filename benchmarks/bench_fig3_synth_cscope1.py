"""Figure 3: fundamental differences on synth (left) and cscope1 (right).

Paper shape, synth: aggressive wins at 1–2 disks (I/O-bound); at ≥3 disks
its extra fetches push elapsed time *above* fixed horizon's (the famous
driver-overhead blowup).  cscope1 (CPU-bound) shows the same but milder.
"""

from benchmarks.common import figure_sweep, index_results, print_figure
from benchmarks.conftest import once

POLICIES = ("fixed-horizon", "aggressive", "reverse-aggressive")


def test_fig3_synth(benchmark, setting):
    results = once(
        benchmark,
        lambda: figure_sweep(setting, "synth", POLICIES, (1, 2, 3, 4)),
    )
    print_figure("Figure 3 (left) — synth", results)
    by_key = index_results(results)

    # I/O-bound end: aggressive beats fixed horizon.
    assert (
        by_key[("aggressive", 1)].elapsed_ms
        < by_key[("fixed-horizon", 1)].elapsed_ms
    )
    # Compute-bound end: fixed horizon beats aggressive on driver overhead.
    assert (
        by_key[("fixed-horizon", 4)].elapsed_ms
        < by_key[("aggressive", 4)].elapsed_ms
    )
    assert (
        by_key[("aggressive", 4)].fetches
        > by_key[("fixed-horizon", 4)].fetches
    )


def test_fig3_cscope1(benchmark, setting):
    results = once(
        benchmark,
        lambda: figure_sweep(setting, "cscope1", POLICIES, (1, 2, 3, 4)),
    )
    print_figure("Figure 3 (right) — cscope1", results)
    by_key = index_results(results)
    # CPU-bound: aggressive issues more fetches, paying driver overhead.
    assert (
        by_key[("aggressive", 4)].driver_ms
        >= by_key[("fixed-horizon", 4)].driver_ms
    )

"""Shared helpers for the figure/table benchmarks.

The harnesses describe their sweeps as declarative **cell plans**
(:class:`repro.runner.Cell`) and execute them through ``repro.runner`` —
the same plan/executor layer behind ``repro-sim sweep --jobs``, so a
benchmark's cells can equally run on the supervised parallel runner
(see ``docs/RUNNER.md``).
"""

from typing import Dict, List, Sequence

from repro.analysis.experiments import ExperimentSetting
from repro.analysis.tables import format_breakdown_table, format_table
from repro.core.results import SimulationResult
from repro.runner import Cell, execute_cells, sweep_cells


def figure_sweep(
    setting: ExperimentSetting,
    trace_name: str,
    policies: Sequence[str],
    disk_counts: Sequence[int],
    tuned_reverse: bool = True,
) -> List[SimulationResult]:
    """The standard figure layout: per disk count, one bar per policy."""
    cells = sweep_cells(
        setting, trace_name, policies, disk_counts,
        tuned_reverse=tuned_reverse, tuned_fetch_times=(2, 8, 32),
    )
    outcomes = execute_cells(cells, trace_cache=setting._trace_cache)
    return [outcome.result for outcome in outcomes]


def run_keyed_cells(
    setting: ExperimentSetting, keyed_cells: Dict
) -> Dict[object, SimulationResult]:
    """Execute a ``{key: Cell}`` plan, preserving keys.

    The grid benchmarks (appendix parameter sweeps, ablations) build
    their cells up front and index results by grid coordinates.
    """
    outcomes = execute_cells(
        list(keyed_cells.values()), trace_cache=setting._trace_cache
    )
    return {
        key: outcome.result
        for key, outcome in zip(keyed_cells, outcomes)
    }


def grid_cell(
    setting: ExperimentSetting, trace_name: str, policy: str, disks: int,
    config_overrides: Dict = None, **policy_kwargs,
) -> Cell:
    """One grid point as a declarative cell (``run_one``'s plan form)."""
    return Cell.from_setting(
        setting, trace_name, policy, disks,
        config_overrides=dict(config_overrides or {}),
        policy_kwargs=dict(policy_kwargs),
    )


def print_figure(title: str, results: List[SimulationResult]) -> None:
    print()
    print(format_breakdown_table(results, title=title))


def print_crossover(results: List[SimulationResult]) -> None:
    """Who wins at each disk count (the figures' qualitative content)."""
    by_disks: Dict[int, List[SimulationResult]] = {}
    for result in results:
        by_disks.setdefault(result.num_disks, []).append(result)
    rows = []
    for disks in sorted(by_disks):
        best = min(by_disks[disks], key=lambda r: r.elapsed_ms)
        rows.append((disks, best.policy_name, round(best.elapsed_s, 3)))
    print(format_table(("disks", "best policy", "elapsed_s"), rows))


def index_results(results) -> Dict:
    """Index results by (base policy name, disks) — parameter suffixes like
    ``fixed-horizon(H=15)`` are stripped."""
    return {
        (r.policy_name.split("(")[0], r.num_disks): r for r in results
    }

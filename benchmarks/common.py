"""Shared helpers for the figure/table benchmarks."""

from typing import Dict, List, Sequence

from repro.analysis.experiments import (
    ExperimentSetting,
    run_one,
    tuned_reverse_aggressive,
)
from repro.analysis.tables import format_breakdown_table, format_table
from repro.core.results import SimulationResult


def figure_sweep(
    setting: ExperimentSetting,
    trace_name: str,
    policies: Sequence[str],
    disk_counts: Sequence[int],
    tuned_reverse: bool = True,
) -> List[SimulationResult]:
    """The standard figure layout: per disk count, one bar per policy."""
    results = []
    for disks in disk_counts:
        for policy in policies:
            if policy == "reverse-aggressive" and tuned_reverse:
                results.append(
                    tuned_reverse_aggressive(
                        setting, trace_name, disks, fetch_times=(2, 8, 32)
                    )
                )
            else:
                results.append(run_one(setting, trace_name, policy, disks))
    return results


def print_figure(title: str, results: List[SimulationResult]) -> None:
    print()
    print(format_breakdown_table(results, title=title))


def print_crossover(results: List[SimulationResult]) -> None:
    """Who wins at each disk count (the figures' qualitative content)."""
    by_disks: Dict[int, List[SimulationResult]] = {}
    for result in results:
        by_disks.setdefault(result.num_disks, []).append(result)
    rows = []
    for disks in sorted(by_disks):
        best = min(by_disks[disks], key=lambda r: r.elapsed_ms)
        rows.append((disks, best.policy_name, round(best.elapsed_s, 3)))
    print(format_table(("disks", "best policy", "elapsed_s"), rows))


def index_results(results) -> Dict:
    """Index results by (base policy name, disks) — parameter suffixes like
    ``fixed-horizon(H=15)`` are stripped."""
    return {
        (r.policy_name.split("(")[0], r.num_disks): r for r in results
    }

#!/usr/bin/env python
"""Performance-regression harness: time representative simulator cells.

Unlike the figure/table benchmarks (which reproduce the paper's *results*),
this harness measures the *simulator itself*: wall-clock per cell, simulator
events dispatched per second, references replayed per second, and peak RSS.
It emits ``BENCH_perf.json`` so future PRs have a performance trajectory to
compare against, and can gate on a committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf.py                # full set
    PYTHONPATH=src python benchmarks/bench_perf.py --quick \\
        --baseline benchmarks/BENCH_perf_baseline.json --max-regression 2.0

Cells cover every scheduling discipline and the policies with distinct
hot paths (demand bursts for the FCFS queue, deep aggressive batches for
the missing-block scan, forestall's per-disk trigger walks, reverse
aggressive's reverse simulation).  Wall-clock comparisons across different
machines are only indicative; the regression gate uses a generous factor
to catch complexity blowups (the O(n^2) class of bug), not micro-noise.

See ``docs/PERFORMANCE.md`` for how to read the output.
"""

import argparse
import json
import os
import platform
import resource
import sys
import time

from repro.core import SimConfig, Simulator, make_policy
from repro.runner import write_json_atomic
from repro.trace import build as build_workload
from repro.trace import cache_blocks_for

#: The full trajectory set: (trace, policy, disks, discipline).
DEFAULT_CELLS = [
    ("ld", "demand", 1, "fcfs"),
    ("ld", "forestall", 4, "cscan"),
    ("cscope2", "aggressive", 4, "cscan"),
    ("cscope2", "fixed-horizon", 2, "cscan"),
    ("glimpse", "forestall", 4, "cscan"),
    ("synth", "aggressive", 2, "sstf"),
    ("postgres-select", "reverse-aggressive", 4, "cscan"),
    # XL tier: 10^5–10^6 refs even at fractional scale; exercises the
    # batched array-backed core where dict-of-lists scans used to dominate.
    ("synth-xl", "aggressive", 4, "cscan"),
    ("synth-xl", "forestall", 4, "cscan"),
]

#: Reduced set for the CI perf-smoke job.
QUICK_CELLS = [
    ("ld", "demand", 1, "fcfs"),
    ("ld", "forestall", 4, "cscan"),
    ("cscope2", "aggressive", 4, "cscan"),
    ("synth", "aggressive", 2, "sstf"),
    ("synth-xl", "aggressive", 4, "cscan"),
]


def cell_id(trace, policy, disks, discipline) -> str:
    return f"{trace}/{policy}/d{disks}/{discipline}"


def parse_cell(spec: str):
    parts = spec.split(":")
    if len(parts) != 4:
        raise SystemExit(
            f"--cell {spec!r}: expected TRACE:POLICY:DISKS:DISCIPLINE"
        )
    trace, policy, disks, discipline = parts
    return trace, policy, int(disks), discipline


def peak_rss_kb() -> int:
    """Process peak RSS so far, in KB (ru_maxrss is KB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        rss //= 1024
    return int(rss)


def time_cell(trace, policy_name, disks, discipline, scale, repeat,
              profile=False):
    """Best-of-``repeat`` wall time for one cell; returns the record dict."""
    config = SimConfig(
        cache_blocks=cache_blocks_for(trace.name, scale),
        discipline=discipline,
    )
    best_wall = None
    sim = None
    result = None
    profiler = None
    for _ in range(repeat):
        run_profiler = None
        if profile:
            from repro.perf import PhaseProfiler

            run_profiler = PhaseProfiler()
        candidate = Simulator(
            trace, make_policy(policy_name), disks, config,
            profiler=run_profiler,
        )
        start = time.perf_counter()
        run_result = candidate.run()
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall, sim, result, profiler = wall, candidate, run_result, run_profiler
    record = {
        "id": cell_id(trace.name, policy_name, disks, discipline),
        "trace": trace.name,
        "policy": policy_name,
        "disks": disks,
        "discipline": discipline,
        "references": result.references,
        "fetches": result.fetches,
        "events": sim.events_dispatched,
        "wall_s": round(best_wall, 6),
        "events_per_s": round(sim.events_dispatched / best_wall, 1),
        "refs_per_s": round(result.references / best_wall, 1),
        "simulated_elapsed_ms": round(result.elapsed_ms, 3),
        "peak_rss_kb": peak_rss_kb(),
    }
    if profiler is not None:
        record["phases"] = profiler.to_dict()
    return record


def check_baseline(records, baseline_path, max_regression):
    """Compare wall times against a committed baseline; list regressions."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_by_id = {cell["id"]: cell for cell in baseline.get("cells", [])}
    regressions = []
    for record in records:
        base = base_by_id.get(record["id"])
        if base is None or base["wall_s"] <= 0:
            continue
        ratio = record["wall_s"] / base["wall_s"]
        record["baseline_wall_s"] = base["wall_s"]
        record["vs_baseline"] = round(ratio, 3)
        if ratio > max_regression:
            regressions.append((record["id"], ratio))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced cell set at --scale 0.1 (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="trace scale (default: REPRO_SCALE or 0.25; "
                        "0.1 under --quick)")
    parser.add_argument("--repeat", type=int, default=2,
                        help="runs per cell; best wall time is kept")
    parser.add_argument("--cell", action="append", default=[],
                        metavar="TRACE:POLICY:DISKS:DISCIPLINE",
                        help="time this cell instead of the built-in set; "
                        "repeatable")
    parser.add_argument("--output", "-o", default="BENCH_perf.json")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_perf.json to gate against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail if any cell's wall time exceeds "
                        "baseline x this factor (default 2.0)")
    parser.add_argument("--profile", action="store_true",
                        help="attach the phase profiler and record the "
                        "per-phase breakdown in each cell")
    args = parser.parse_args(argv)

    if args.scale is not None:
        scale = args.scale
    elif args.quick:
        scale = 0.1
    else:
        scale = float(os.environ.get("REPRO_SCALE", "0.25"))
    if args.cell:
        cells = [parse_cell(spec) for spec in args.cell]
    else:
        cells = QUICK_CELLS if args.quick else DEFAULT_CELLS

    traces = {}
    records = []
    for trace_name, policy, disks, discipline in cells:
        trace = traces.get(trace_name)
        if trace is None:
            trace = traces[trace_name] = build_workload(trace_name, scale=scale)
        record = time_cell(
            trace, policy, disks, discipline, scale, args.repeat,
            profile=args.profile,
        )
        print(
            f"{record['id']:44s} {record['wall_s']*1000:9.1f} ms  "
            f"{record['events_per_s']:>11,.0f} ev/s  "
            f"{record['refs_per_s']:>10,.0f} refs/s"
        )
        records.append(record)

    regressions = []
    if args.baseline:
        regressions = check_baseline(records, args.baseline, args.max_regression)

    payload = {
        "schema": 1,
        "scale": scale,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cells": records,
    }
    # Atomic (tmp + rename): a run killed mid-write can't leave a truncated
    # baseline that poisons later --baseline gating.
    write_json_atomic(args.output, payload)
    print(f"wrote {len(records)} cells to {args.output}")

    if regressions:
        for cell, ratio in regressions:
            print(
                f"PERF REGRESSION: {cell} is {ratio:.2f}x the baseline "
                f"(limit {args.max_regression:.2f}x)",
                file=sys.stderr,
            )
        return 1
    if args.baseline:
        print(f"all cells within {args.max_regression:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: the drive's readahead cache.

The paper attributes sequential traces' 3–4 ms average response times to
the HP 97560's 128 KB readahead buffer (and chooses CSCAN because it scans
in the readahead direction).  Disabling readahead in the drive model must
drive sequential service times toward full mechanical costs and lengthen
the I/O-bound traces substantially.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_breakdown_table

from benchmarks.conftest import once


def test_ablation_readahead_cache(benchmark, setting):
    def sweep():
        results = {}
        for readahead in (True, False):
            overrides = {"readahead": readahead}
            for trace in ("dinero", "synth"):
                results[(trace, readahead)] = run_one(
                    setting, trace, "aggressive", 1,
                    config_overrides=overrides,
                )
        return results

    results = once(benchmark, sweep)
    rows = [results[key] for key in sorted(results, key=str)]
    print()
    print(format_breakdown_table(
        rows, title="Ablation — drive readahead cache on/off (1 disk)"
    ))

    for trace in ("dinero", "synth"):
        with_ra = results[(trace, True)]
        without = results[(trace, False)]
        # Sequential traces must see much faster average service with
        # readahead...
        assert with_ra.average_fetch_ms < without.average_fetch_ms * 0.6, (
            f"readahead should cut {trace}'s service times"
        )
        # ...and no worse elapsed time.
        assert with_ra.elapsed_ms <= without.elapsed_ms * 1.001
    # The sequential hit path lands in the paper's 3-4 ms neighbourhood.
    assert results[("synth", True)].average_fetch_ms < 7.0

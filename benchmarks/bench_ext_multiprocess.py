"""Extension: multiple hinting processes sharing cache and disks.

The paper defers multi-process buffer allocation to TIP2 and future work;
this benchmark runs two of its workloads concurrently on one array and
compares static partitioning against the simplified cost-benefit
allocator (buffers migrate toward the staller).
"""

from repro.analysis.tables import format_table
from repro.core import SimConfig, make_policy
from repro.core.multiprocess import (
    CostBenefitAllocator,
    MultiProcessSimulator,
    StaticAllocator,
)

from benchmarks.conftest import once


def test_ext_multiprocess_allocation(benchmark, setting):
    trace_a = setting.trace("cscope1")
    trace_b = setting.trace("postgres-select")
    cache_total = setting.cache_for("postgres-select")
    horizon = max(8, int(62 * setting.scale))

    def build(allocator):
        return MultiProcessSimulator(
            [
                (trace_a, make_policy("fixed-horizon", horizon=horizon)),
                (trace_b, make_policy("forestall", horizon=horizon)),
            ],
            num_disks=2,
            config=SimConfig(cache_blocks=cache_total),
            allocator=allocator,
        )

    def sweep():
        return {
            "static": build(StaticAllocator()).run(),
            "static 3:1": build(StaticAllocator([3, 1])).run(),
            "cost-benefit": build(CostBenefitAllocator()).run(),
        }

    outcomes = once(benchmark, sweep)
    rows = []
    for label, result in outcomes.items():
        rows.append(
            (
                label,
                round(result[0].elapsed_s, 2),
                round(result[1].elapsed_s, 2),
                round(result.makespan_ms / 1000.0, 2),
                round(result.total_stall_ms / 1000.0, 2),
            )
        )
    print()
    print("Extension — two processes sharing 2 disks "
          f"({trace_a.name} + {trace_b.name})")
    print(format_table(
        ("allocator", "proc0_s", "proc1_s", "makespan_s", "total_stall_s"),
        rows,
    ))

    # Both processes complete under every allocator.
    for result in outcomes.values():
        assert len(result.results) == 2
    # The dynamic allocator never loses badly to an even static split.
    assert (
        outcomes["cost-benefit"].makespan_ms
        <= outcomes["static"].makespan_ms * 1.10
    )

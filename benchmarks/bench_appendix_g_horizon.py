"""Appendix G: fixed horizon's full measurement vector across horizons.

Extends Figure 7 with the traces the appendix reports (dinero, cscope1,
cscope2, postgres-select).  Paper shape: fetches grow with H (earlier
replacement); I/O-bound traces benefit from larger H before declining.
"""

import pytest

from repro.analysis.tables import format_breakdown_table

from benchmarks.common import grid_cell, run_keyed_cells
from benchmarks.conftest import full_run, once

TRACES = ("dinero", "postgres-select") if not full_run() else (
    "dinero", "cscope1", "cscope2", "postgres-select",
)
BASE_HORIZONS = (16, 64, 256, 1024)


@pytest.mark.parametrize("trace", TRACES)
def test_appendix_g_horizon(benchmark, setting, trace):
    # Horizons at or above the cache size defeat the eviction proviso
    # ("victim needed further than H ahead") and degrade to demand
    # fetching; the sweep stays below K, as the paper's H < K note advises.
    cache = setting.cache_for(trace)
    horizons = sorted(
        {
            max(2, int(h * setting.scale))
            for h in BASE_HORIZONS
            if int(h * setting.scale) < cache
        }
    )
    counts = (1, 2, 4)

    def sweep():
        plan = {
            (horizon, disks): grid_cell(
                setting, trace, "fixed-horizon", disks, horizon=horizon
            )
            for horizon in horizons
            for disks in counts
        }
        return run_keyed_cells(setting, plan)

    results = once(benchmark, sweep)
    print()
    rows = [results[(h, d)] for h in horizons for d in counts]
    print(format_breakdown_table(
        rows, title=f"Appendix G — fixed horizon grid, {trace}"
    ))

    # Fetch count never shrinks as the horizon grows (earlier replacement
    # can only add fetches).
    fetch_series = [results[(h, 1)].fetches for h in horizons]
    assert all(b >= a for a, b in zip(fetch_series, fetch_series[1:]))

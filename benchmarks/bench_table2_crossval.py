"""Table 2: cross-validation of the simulators on xds and synth.

The paper validated its results by running fixed horizon and aggressive on
two independently-written simulators (UW's HP 97560 model, CMU's RaidSim
with IBM 0661 drives).  We run three disk models — the detailed HP 97560,
the detailed IBM 0661 (Lee & Katz constants), and a structurally different
uniform-time model — and require the algorithm *rankings* to agree even
though absolute times differ.
"""

from repro.analysis.experiments import ExperimentSetting, run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import once

POLICIES = ("fixed-horizon", "aggressive")
COUNTS = (1, 2, 3, 4)


def test_table2_simulator_crossvalidation(benchmark, setting):
    models = {
        "hp": setting,
        "ibm": ExperimentSetting(scale=setting.scale, disk_model="ibm0661"),
        "uni": ExperimentSetting(scale=setting.scale, disk_model="simple"),
    }

    def sweep():
        table = {}
        for trace in ("xds", "synth"):
            for disks in COUNTS:
                for policy in POLICIES:
                    for label, model_setting in models.items():
                        table[(trace, disks, policy, label)] = run_one(
                            model_setting, trace, policy, disks
                        )
        return table

    table = once(benchmark, sweep)
    for trace in ("xds", "synth"):
        rows = []
        for disks in COUNTS:
            row = [disks]
            for label in models:
                row.append(
                    round(table[(trace, disks, "fixed-horizon", label)].elapsed_s, 2)
                )
                row.append(
                    round(table[(trace, disks, "aggressive", label)].elapsed_s, 2)
                )
            rows.append(tuple(row))
        print()
        print(f"Table 2 — simulator comparison, {trace} "
              "(HP 97560 | IBM 0661 | uniform)")
        print(
            format_table(
                ("disks", "FH/hp", "Agg/hp", "FH/ibm", "Agg/ibm",
                 "FH/uni", "Agg/uni"),
                rows,
            )
        )

    # Cross-validation criterion: whenever the HP model shows a material
    # (>5%) winner, the other models must agree on who it is.
    for other in ("ibm", "uni"):
        agreements, decisions = 0, 0
        for trace in ("xds", "synth"):
            for disks in COUNTS:
                fh_d = table[(trace, disks, "fixed-horizon", "hp")]
                ag_d = table[(trace, disks, "aggressive", "hp")]
                margin = abs(fh_d.elapsed_ms - ag_d.elapsed_ms) / fh_d.elapsed_ms
                if margin < 0.05:
                    continue
                decisions += 1
                if (fh_d.elapsed_ms < ag_d.elapsed_ms) == (
                    table[(trace, disks, "fixed-horizon", other)].elapsed_ms
                    < table[(trace, disks, "aggressive", other)].elapsed_ms
                ):
                    agreements += 1
        if decisions:
            assert agreements >= decisions * 0.7, (
                f"{other} disagrees too often: {agreements}/{decisions}"
            )

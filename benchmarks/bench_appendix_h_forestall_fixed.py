"""Appendix H: forestall with static fetch-time estimates vs the dynamic
estimator.

Paper shape: no single fixed F' works for every trace (mean compute times
span 1.3–15.7 ms), but for each trace some fixed value comes close to the
dynamic estimator — the dynamic scheme's advantage is portability, not raw
speed on any one workload.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_elapsed_grid
from repro.core.forestall import APPENDIX_H_FETCH_TIMES

from benchmarks.conftest import full_run, once

ESTIMATES = APPENDIX_H_FETCH_TIMES if full_run() else (1, 4, 15, 60)


def test_appendix_h_forestall_fixed_estimates(benchmark, setting):
    traces = ("cscope2", "postgres-select")
    counts = (1, 2, 4)

    def sweep():
        grid = {}
        for trace in traces:
            grid[(trace, "dynamic")] = [
                run_one(setting, trace, "forestall", disks).elapsed_s
                for disks in counts
            ]
            for estimate in ESTIMATES:
                grid[(trace, estimate)] = [
                    run_one(
                        setting, trace, "forestall", disks,
                        fixed_estimate=float(estimate),
                    ).elapsed_s
                    for disks in counts
                ]
        return grid

    grid = once(benchmark, sweep)
    for trace in traces:
        view = {
            f"F'={key}": values
            for (t, key), values in grid.items()
            if t == trace
        }
        print()
        print(format_elapsed_grid(
            view, "estimate", [f"{d} disks" for d in counts],
            title=f"Appendix H — forestall fixed vs dynamic F', {trace}",
        ))

    # For each trace, the best fixed estimate is within 10% of dynamic
    # (paper: within 7%, almost always within 4%).
    for trace in traces:
        dynamic = grid[(trace, "dynamic")]
        for disks_index in range(len(counts)):
            best_fixed = min(
                grid[(trace, e)][disks_index] for e in ESTIMATES
            )
            assert best_fixed <= dynamic[disks_index] * 1.10

"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows (run pytest with ``-s`` to see them; the numbers also land
in the benchmark JSON if requested).  Traces are scaled by ``REPRO_SCALE``
(default 0.25) unless ``REPRO_FULL=1`` requests paper-scale runs; device
parameters (horizon, batch sizes) scale alongside, preserving regimes.
"""

import os

import pytest

from repro.analysis.experiments import (
    PAPER_DISK_COUNTS,
    ExperimentSetting,
    default_scale,
)


def full_run() -> bool:
    return os.environ.get("REPRO_FULL") == "1"


def disk_counts(limit: int = 16):
    """Paper disk counts under REPRO_FULL, a representative subset else."""
    counts = PAPER_DISK_COUNTS if full_run() else (1, 2, 3, 4, 6, 8)
    return tuple(d for d in counts if d <= limit)


@pytest.fixture(scope="session")
def setting():
    return ExperimentSetting(scale=default_scale())


@pytest.fixture(scope="session")
def fcfs_setting():
    return ExperimentSetting(scale=default_scale(), discipline="fcfs")


def once(benchmark, fn):
    """Run the experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""Figure 9: fixed horizon / aggressive / forestall on cscope2, 1–16 disks.

Paper shape: forestall has the best (or tied-best) performance of the three
practical algorithms across the whole array-size range.
"""

from benchmarks.common import figure_sweep, index_results, print_crossover, print_figure
from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "aggressive", "forestall")


def test_fig9_cscope2(benchmark, setting):
    counts = disk_counts()
    results = once(
        benchmark, lambda: figure_sweep(setting, "cscope2", POLICIES, counts)
    )
    print_figure("Figure 9 — cscope2", results)
    print_crossover(results)
    by_key = index_results(results)
    for disks in counts:
        best = min(
            by_key[("fixed-horizon", disks)].elapsed_ms,
            by_key[("aggressive", disks)].elapsed_ms,
        )
        forestall = by_key[("forestall", disks)].elapsed_ms
        assert forestall <= best * 1.10, (
            f"forestall strays from the best practical at {disks} disks"
        )

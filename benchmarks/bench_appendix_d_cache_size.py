"""Appendix D: baseline algorithms under varying cache sizes (640 and 1920
blocks alongside the default 1280), on the traces the paper reports.

Paper shape: everyone improves with cache; the aggressive prefetchers gain
more in I/O-bound configurations.
"""

import pytest

from repro.analysis.experiments import ExperimentSetting, run_one
from repro.analysis.tables import format_breakdown_table

from benchmarks.conftest import full_run, once

TRACES = ("glimpse", "postgres-select") if not full_run() else (
    "glimpse", "postgres-join", "postgres-select", "xds",
)
CACHES = (640, 1280, 1920)


@pytest.mark.parametrize("trace", TRACES)
def test_appendix_d_cache_sizes(benchmark, setting, trace):
    scale = setting.scale
    counts = (1, 2, 4)

    def sweep():
        results = {}
        for cache in CACHES:
            sized = ExperimentSetting(
                scale=scale, cache_blocks=max(16, int(cache * scale))
            )
            for policy in ("fixed-horizon", "aggressive"):
                for disks in counts:
                    results[(cache, policy, disks)] = run_one(
                        sized, trace, policy, disks
                    )
        return results

    results = once(benchmark, sweep)
    print()
    for cache in CACHES:
        rows = [
            results[(cache, p, d)]
            for d in counts
            for p in ("fixed-horizon", "aggressive")
        ]
        print(format_breakdown_table(
            rows, title=f"Appendix D — {trace}, cache {cache} blocks (scaled)"
        ))

    # Monotone improvement with cache size for both policies, all arrays.
    for policy in ("fixed-horizon", "aggressive"):
        for disks in counts:
            small = results[(CACHES[0], policy, disks)]
            large = results[(CACHES[-1], policy, disks)]
            assert large.elapsed_ms <= small.elapsed_ms * 1.02
            assert large.fetches <= small.fetches

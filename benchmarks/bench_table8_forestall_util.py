"""Table 8: disk utilization of forestall on postgres-select.

Paper shape: forestall's utilization falls between aggressive's and fixed
horizon's — near aggressive when I/O-bound, near fixed horizon when
compute-bound.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "forestall", "aggressive")


def test_table8_forestall_utilization(benchmark, setting):
    counts = disk_counts()

    def sweep():
        return {
            (policy, disks): run_one(setting, "postgres-select", policy, disks)
            for policy in POLICIES
            for disks in counts
        }

    table = once(benchmark, sweep)
    rows = [
        (disks,)
        + tuple(round(table[(p, disks)].disk_utilization, 2) for p in POLICIES)
        for disks in counts
    ]
    print()
    print("Table 8 — forestall disk utilization, postgres-select")
    print(format_table(("disks",) + POLICIES, rows))

    for disks in counts:
        fh = table[("fixed-horizon", disks)].disk_utilization
        agg = table[("aggressive", disks)].disk_utilization
        forestall = table[("forestall", disks)].disk_utilization
        low, high = min(fh, agg), max(fh, agg)
        assert low * 0.9 <= forestall <= high * 1.1, (
            f"forestall utilization out of band at {disks} disks"
        )

"""Table 3: trace summary data (reads, distinct blocks, compute time).

Regenerates the workload-characterization table; paper targets printed
alongside.  Note the paper's postgres compute-time swap (see DESIGN.md):
the "paper" column shows the appendix-consistent values we calibrate to.
"""

from repro.analysis.tables import format_table
from repro.trace import TABLE3, build
from repro.trace.workloads import COMPUTE_AS_SIMULATED, WORKLOADS

from benchmarks.conftest import once


def test_table3_trace_summaries(benchmark):
    def build_all():
        return {name: build(name) for name in WORKLOADS}

    traces = once(benchmark, build_all)
    rows = []
    for name, trace in traces.items():
        reads, distinct, _ = TABLE3[name]
        rows.append(
            (
                name,
                trace.reads, reads,
                trace.distinct_blocks, distinct,
                round(trace.compute_time_s, 1),
                COMPUTE_AS_SIMULATED[name],
            )
        )
        assert trace.reads == reads
        assert trace.distinct_blocks == distinct
    print()
    print("Table 3 — trace summary data (measured vs paper)")
    print(
        format_table(
            (
                "trace", "reads", "paper", "distinct", "paper",
                "compute_s", "paper",
            ),
            rows,
        )
    )

"""Appendix A: baseline measurements for every trace.

Regenerates the per-trace tables (fetches, driver/stall/elapsed time,
average fetch time, utilization for all four algorithms across disk
counts).  Under the default scale a representative disk subset is used;
``REPRO_FULL=1`` runs the paper's full grid.
"""

import pytest

from repro.analysis.experiments import baseline_rows
from repro.analysis.tables import format_appendix_table

from benchmarks.common import index_results
from benchmarks.conftest import disk_counts, full_run, once

ALL_TRACES = (
    "dinero", "cscope1", "cscope2", "cscope3", "glimpse",
    "ld", "postgres-join", "postgres-select", "xds", "synth",
)


def _traces():
    if full_run():
        return ALL_TRACES
    # a representative cross-section: sequential-loop, search, linker,
    # database, visualization
    return ("dinero", "cscope2", "ld", "postgres-select", "xds")


@pytest.mark.parametrize("trace", _traces())
def test_appendix_a_baseline(benchmark, setting, trace):
    counts = disk_counts(limit=8 if not full_run() else 16)
    table = once(
        benchmark,
        lambda: baseline_rows(setting, trace, counts, tuned_reverse=False),
    )
    print()
    print(f"Appendix A — baseline, {trace}")
    print(format_appendix_table(table, counts))

    flat = [r for row in table.values() for r in row]
    by_key = index_results(flat)
    # Paper's invariant: fixed horizon never fetches more than aggressive.
    for disks in counts:
        fh = by_key[("fixed-horizon", disks)]
        agg = by_key[("aggressive", disks)]
        assert fh.fetches <= agg.fetches * 1.001
        # driver time == fetches x 0.5 ms in every cell
        assert fh.driver_ms == pytest.approx(fh.fetches * 0.5)
        assert agg.driver_ms == pytest.approx(agg.fetches * 0.5)

"""Figure 5: cscope3 — bursty compute times trip reverse aggressive.

Paper shape: on a trace whose inter-reference compute times alternate
between ~1 ms and ~7 ms runs, no single fetch-time estimate F suits the
whole trace, and reverse aggressive's single-disk result is much worse than
aggressive's (whose adaptivity is inherent).
"""

from repro.analysis.experiments import run_one, tuned_reverse_aggressive

from benchmarks.common import figure_sweep, index_results, print_figure
from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "aggressive", "reverse-aggressive")


def test_fig5_cscope3(benchmark, setting):
    counts = disk_counts(limit=8)
    results = once(
        benchmark, lambda: figure_sweep(setting, "cscope3", POLICIES, counts)
    )
    print_figure("Figure 5 — cscope3 (bursty compute)", results)
    by_key = index_results(results)
    # The burstiness penalty: even the tuned reverse aggressive cannot beat
    # aggressive's inherent adaptivity at one disk by any useful margin.
    agg = by_key[("aggressive", 1)]
    reverse = by_key[("reverse-aggressive", 1)]
    assert reverse.elapsed_ms >= agg.elapsed_ms * 0.95


def test_fig5_fixed_estimate_hurts_on_bursty_trace(benchmark, setting):
    """A deliberately bad single F (too large -> too conservative) visibly
    degrades reverse aggressive on cscope3 at one disk."""

    def runs():
        good = tuned_reverse_aggressive(
            setting, "cscope3", 1, fetch_times=(2, 8, 32)
        )
        bad = run_one(
            setting, "cscope3", "reverse-aggressive", 1,
            fetch_time_estimate=128,
        )
        return good, bad

    good, bad = once(benchmark, runs)
    print()
    print(f"tuned F:   {good}")
    print(f"F=128:     {bad}")
    assert bad.elapsed_ms >= good.elapsed_ms

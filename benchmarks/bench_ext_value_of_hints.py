"""Extension: what are the hints worth?

Pits the paper's hint-based algorithms against the classic unhinted
heuristics (LRU demand, sequential readahead, stride prefetching) on three
structurally different workloads.  The paper's motivation in one table:
readahead keeps up only while access is sequential; hints win everywhere.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import once

POLICIES = (
    "lru-demand", "seq-readahead", "stride-prefetch",
    "demand", "fixed-horizon", "forestall",
)
TRACES = ("dinero", "postgres-select", "xds")


def test_ext_value_of_hints(benchmark, setting):
    def sweep():
        return {
            (trace, policy): run_one(setting, trace, policy, 2)
            for trace in TRACES
            for policy in POLICIES
        }

    table = once(benchmark, sweep)
    rows = []
    for trace in TRACES:
        rows.append(
            (trace,)
            + tuple(round(table[(trace, p)].elapsed_s, 2) for p in POLICIES)
        )
    print()
    print("Extension — unhinted heuristics vs hinted algorithms "
          "(elapsed s, 2 disks)")
    print(format_table(("trace",) + POLICIES, rows))

    for trace in TRACES:
        hinted_best = min(
            table[(trace, p)].elapsed_ms
            for p in ("fixed-horizon", "forestall")
        )
        # Hints never lose to any unhinted heuristic...
        for policy in ("lru-demand", "seq-readahead", "stride-prefetch"):
            assert hinted_best <= table[(trace, policy)].elapsed_ms * 1.02
    # ...and on the index-driven trace they win by a wide margin.
    select_gap = (
        table[("postgres-select", "seq-readahead")].elapsed_ms
        / min(
            table[("postgres-select", p)].elapsed_ms
            for p in ("fixed-horizon", "forestall")
        )
    )
    assert select_gap > 1.15

    # Belady beats LRU on every trace (the other thing hints buy).
    for trace in TRACES:
        assert (
            table[(trace, "demand")].fetches
            <= table[(trace, "lru-demand")].fetches
        )

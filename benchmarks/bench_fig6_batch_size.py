"""Figure 6: aggressive's elapsed time vs batch size on cscope2.

Paper shape: performance first improves with batch size (better CSCAN
scheduling), then degrades (out-of-order fetching + early replacement);
the optimum shifts toward smaller batches as disks are added.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_elapsed_grid

from benchmarks.conftest import full_run, once


def test_fig6_aggressive_batch_size(benchmark, setting):
    scale = setting.scale
    base_batches = (4, 8, 16, 40, 80, 160, 320, 640, 1280)
    if not full_run():
        base_batches = (4, 8, 16, 40, 80, 160, 320)
    batches = sorted({max(2, int(b * scale)) for b in base_batches})
    counts = (1, 2, 4) if not full_run() else (1, 2, 3, 4, 5)

    def sweep():
        grid = {}
        for batch in batches:
            grid[f"batch={batch}"] = [
                run_one(
                    setting, "cscope2", "aggressive", disks, batch_size=batch
                ).elapsed_s
                for disks in counts
            ]
        return grid

    grid = once(benchmark, sweep)
    print()
    print(
        format_elapsed_grid(
            grid, "batch", [f"{d} disks" for d in counts],
            title="Figure 6 — aggressive elapsed time (s) vs batch size, cscope2",
        )
    )

    # At 1 disk, some mid-size batch beats both extremes (the U-shape).
    one_disk = [grid[f"batch={b}"][0] for b in batches]
    best = min(one_disk)
    assert best <= one_disk[0]
    assert best <= one_disk[-1]
    # Variation shrinks as disks increase (compute-bound flattening).
    spread_one = max(one_disk) - min(one_disk)
    last_col = [grid[f"batch={b}"][-1] for b in batches]
    spread_last = max(last_col) - min(last_col)
    assert spread_last <= spread_one

"""Table 5: percentage improvement of CSCAN over FCFS on postgres-select.

Paper shape: CSCAN helps most in I/O-bound configurations (up to ~24% for
reverse aggressive, ~19% aggressive, ~15% fixed horizon at 1-4 disks) and
fades to ~zero — occasionally slightly negative (out-of-order fetching) —
once the trace is compute-bound.
"""

from repro.analysis.experiments import compare_disciplines
from repro.analysis.tables import format_table

from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "aggressive", "reverse-aggressive")


def test_table5_cscan_vs_fcfs(benchmark, setting):
    counts = disk_counts(limit=8)

    def sweep():
        return {
            policy: compare_disciplines(setting, "postgres-select", policy, counts)
            for policy in POLICIES
        }

    table = once(benchmark, sweep)
    rows = []
    for disks_index, disks in enumerate(counts):
        row = [disks]
        for policy in POLICIES:
            _d, _cscan, _fcfs, improvement = table[policy][disks_index]
            row.append(round(improvement, 2))
        rows.append(tuple(row))
    print()
    print("Table 5 — % improvement of CSCAN over FCFS, postgres-select")
    print(format_table(("disks",) + POLICIES, rows))

    # I/O-bound end: CSCAN must help the deep-queue algorithms.
    for policy in ("aggressive", "reverse-aggressive"):
        _d, cscan, fcfs, improvement = table[policy][0]
        assert improvement > 0, f"CSCAN should help {policy} at 1 disk"
    # Compute-bound end: the effect shrinks substantially.
    for policy in POLICIES:
        first = table[policy][0][3]
        last = table[policy][-1][3]
        assert last < max(first, 5.0)

"""Ablation: flat vs zoned disk geometry.

The paper's Kotz/Ruemmler–Wilkes HP 97560 model is flat (constant sectors
per track); real drives are zone-bit-recorded, with outer tracks streaming
faster.  Re-running the baseline under an illustrative 4-zone variant
checks that none of the paper's conclusions hinge on the flat-geometry
simplification: rankings must match, absolute times shift only modestly.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import once

TRACES = ("dinero", "postgres-select")
POLICIES = ("fixed-horizon", "aggressive")


def test_ablation_zoned_geometry(benchmark, setting):
    def sweep():
        table = {}
        for trace in TRACES:
            for policy in POLICIES:
                for disks in (1, 2):
                    table[(trace, policy, disks, "flat")] = run_one(
                        setting, trace, policy, disks
                    )
                    table[(trace, policy, disks, "zoned")] = run_one(
                        setting, trace, policy, disks,
                        config_overrides={"disk_model": "hp97560-zoned"},
                    )
        return table

    table = once(benchmark, sweep)
    rows = []
    for trace in TRACES:
        for policy in POLICIES:
            for disks in (1, 2):
                flat = table[(trace, policy, disks, "flat")]
                zoned = table[(trace, policy, disks, "zoned")]
                rows.append(
                    (
                        trace, policy, disks,
                        round(flat.elapsed_s, 2), round(zoned.elapsed_s, 2),
                        round(flat.average_fetch_ms, 1),
                        round(zoned.average_fetch_ms, 1),
                    )
                )
    print()
    print("Ablation — flat vs zoned HP 97560 geometry")
    print(format_table(
        ("trace", "policy", "disks", "flat_s", "zoned_s",
         "flat_ms", "zoned_ms"),
        rows,
    ))

    for trace in TRACES:
        for disks in (1, 2):
            flat_fh = table[(trace, "fixed-horizon", disks, "flat")]
            flat_ag = table[(trace, "aggressive", disks, "flat")]
            zoned_fh = table[(trace, "fixed-horizon", disks, "zoned")]
            zoned_ag = table[(trace, "aggressive", disks, "zoned")]
            # Absolute times shift only modestly under zoning...
            for flat, zoned in ((flat_fh, zoned_fh), (flat_ag, zoned_ag)):
                assert zoned.elapsed_ms <= flat.elapsed_ms * 1.3
                assert flat.elapsed_ms <= zoned.elapsed_ms * 1.3
            # ...and any material FH-vs-aggressive verdict is preserved.
            margin = abs(flat_fh.elapsed_ms - flat_ag.elapsed_ms)
            if margin > 0.05 * flat_fh.elapsed_ms:
                assert (flat_fh.elapsed_ms < flat_ag.elapsed_ms) == (
                    zoned_fh.elapsed_ms < zoned_ag.elapsed_ms
                )

"""Extension: fault tolerance — how gracefully does each algorithm degrade?

The paper's machines never break: every fetch succeeds, every spindle
spins at spec.  Real arrays see transient read errors (media retries),
fail-slow disks (a dying spindle serving at a fraction of its rate), and
outright deaths.  This sweep injects those faults under all five
algorithms and asks two questions the paper could not:

* transient errors tax the prefetchers *more* in absolute fetch count
  (every abandoned prefetch is wasted bandwidth) yet hurt elapsed time
  *less* than they hurt demand fetching, whose every error stalls the app
  through a retry-backoff cycle;
* a fail-slow disk degrades everyone, but prefetching hides part of the
  inflated service times behind compute, so demand fetching degrades at
  least as badly as the best prefetcher.

Determinism is part of the contract: fault draws are a pure function of
(seed, disk, request sequence number), so re-running a scenario must
reproduce it exactly, and a zero-fault schedule must match the no-schedule
baseline bit for bit.
"""

import repro
from repro.analysis.tables import format_table
from repro.faults import FaultSchedule, SlowWindow

from benchmarks.conftest import once

POLICIES = (
    "demand", "fixed-horizon", "aggressive", "reverse-aggressive", "forestall",
)
SCENARIOS = (
    ("healthy", None),
    ("2% errors", FaultSchedule(read_error_rate=0.02, seed=11)),
    ("10% errors", FaultSchedule(read_error_rate=0.10, seed=11)),
    ("disk0 3x slow", FaultSchedule(slow_windows=(SlowWindow(3.0, disk=0),))),
    ("disk0 10x slow", FaultSchedule(slow_windows=(SlowWindow(10.0, disk=0),))),
)


def test_ext_fault_tolerance(benchmark, setting):
    trace = setting.trace("cscope2")
    cache = setting.cache_for("cscope2")

    def run(policy, schedule):
        return repro.run_simulation(
            trace, policy=policy, num_disks=2, cache_blocks=cache,
            faults=schedule,
        )

    def sweep():
        return {
            (label, policy): run(policy, schedule)
            for label, schedule in SCENARIOS
            for policy in POLICIES
        }

    table = once(benchmark, sweep)
    rows = [
        (label,)
        + tuple(round(table[(label, p)].elapsed_s, 2) for p in POLICIES)
        for label, _schedule in SCENARIOS
    ]
    print()
    print("Extension — elapsed time (s) under injected faults, cscope2, 2 disks")
    print(format_table(("fault scenario",) + POLICIES, rows))

    # A zero-fault schedule reproduces the unscheduled baseline exactly.
    null = run("forestall", FaultSchedule())
    baseline = table[("healthy", "forestall")]
    assert null.elapsed_ms == baseline.elapsed_ms
    assert null.fetches == baseline.fetches
    assert null.faults_injected == 0

    # Fault runs are deterministic: identical invocations, identical results.
    again = run("aggressive", SCENARIOS[2][1])
    first = table[("10% errors", "aggressive")]
    assert again.elapsed_ms == first.elapsed_ms
    assert again.fetches == first.fetches
    assert again.extras == first.extras

    for policy in POLICIES:
        healthy = table[("healthy", policy)]
        assert healthy.faults_injected == 0
        # Faults never break the accounting identity.
        for label, _schedule in SCENARIOS:
            table[(label, policy)].check_accounting()
        # Degradation is monotone in severity within each fault family.
        assert (table[("10% errors", policy)].elapsed_ms
                >= healthy.elapsed_ms)
        assert (table[("disk0 10x slow", policy)].elapsed_ms
                >= table[("disk0 3x slow", policy)].elapsed_ms
                >= healthy.elapsed_ms)

    # Prefetching keeps paying off under every fault scenario: the best
    # prefetcher still beats demand fetching, which eats every inflated or
    # retried service time as stall.
    for label, _schedule in SCENARIOS:
        best_prefetch = min(
            table[(label, p)].elapsed_ms for p in POLICIES if p != "demand"
        )
        assert best_prefetch < table[(label, "demand")].elapsed_ms

"""Appendix F: reverse aggressive's elapsed time as a function of its
fetch-time estimate F and reverse-pass batch size.

Paper shape: smaller F makes the schedule more aggressive (better when
I/O-bound, wasteful when compute-bound); larger batch sizes behave like
larger batches in aggressive.  The best cell varies per disk count, which
is why the paper's baseline tunes (F, batch) per configuration.
"""

from repro.analysis.tables import format_elapsed_grid

from benchmarks.common import grid_cell, run_keyed_cells
from benchmarks.conftest import full_run, once

FETCH_TIMES = (2, 4, 8, 16, 32, 64) if full_run() else (2, 8, 32)
BATCHES = (4, 16, 40, 80, 160) if full_run() else (8, 40)


def test_appendix_f_reverse_aggressive_grid(benchmark, setting):
    trace = "cscope2"
    counts = (1, 2, 4)

    def sweep():
        plan = {
            (fetch_time, batch, disks): grid_cell(
                setting, trace, "reverse-aggressive", disks,
                fetch_time_estimate=fetch_time,
                reverse_batch_size=max(2, int(batch * setting.scale)),
            )
            for fetch_time in FETCH_TIMES
            for batch in BATCHES
            for disks in counts
        }
        results = run_keyed_cells(setting, plan)
        return {
            (fetch_time, batch): [
                results[(fetch_time, batch, disks)].elapsed_s
                for disks in counts
            ]
            for fetch_time in FETCH_TIMES
            for batch in BATCHES
        }

    grid = once(benchmark, sweep)
    view = {
        f"F={f},batch={b}": values for (f, b), values in grid.items()
    }
    print()
    print(format_elapsed_grid(
        view, "params", [f"{d} disks" for d in counts],
        title=f"Appendix F — reverse aggressive parameter grid, {trace}",
    ))

    # The grid is not flat: parameters matter (>2% spread at 1 disk).
    one_disk = [values[0] for values in grid.values()]
    assert max(one_disk) > min(one_disk) * 1.02
    # And the best F at 1 disk (I/O-bound) is not the most conservative one.
    best_params = min(grid, key=lambda key: grid[key][0])
    assert best_params[0] < max(FETCH_TIMES)

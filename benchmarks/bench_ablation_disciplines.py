"""Ablation: FCFS vs SSTF vs CSCAN head scheduling.

Extends Table 5's two-way comparison with the classic greedy scheduler.
Expected shape: both reordering disciplines beat FCFS when queues are deep
(I/O-bound, batched); SSTF's greed approaches CSCAN's sweep on these
queue depths, while CSCAN retains the readahead-direction advantage the
paper chose it for.
"""

from repro.analysis.tables import format_table

from benchmarks.common import grid_cell, run_keyed_cells
from benchmarks.conftest import once

DISCIPLINES = ("fcfs", "sstf", "cscan")
TRACES = ("postgres-select", "glimpse")


def test_ablation_disciplines(benchmark, setting):
    def sweep():
        plan = {
            (trace, discipline, disks): grid_cell(
                setting, trace, "aggressive", disks,
                config_overrides={"discipline": discipline},
            )
            for trace in TRACES
            for discipline in DISCIPLINES
            for disks in (1, 2)
        }
        return run_keyed_cells(setting, plan)

    table = once(benchmark, sweep)
    rows = []
    for trace in TRACES:
        for disks in (1, 2):
            rows.append(
                (trace, disks)
                + tuple(
                    round(table[(trace, d, disks)].elapsed_s, 2)
                    for d in DISCIPLINES
                )
                + tuple(
                    round(table[(trace, d, disks)].average_fetch_ms, 1)
                    for d in DISCIPLINES
                )
            )
    print()
    print("Ablation — head scheduling (aggressive): elapsed_s | avg fetch ms")
    print(format_table(
        ("trace", "disks") + DISCIPLINES + tuple(f"{d}_ms" for d in DISCIPLINES),
        rows,
    ))

    for trace in TRACES:
        fcfs = table[(trace, "fcfs", 1)]
        sstf = table[(trace, "sstf", 1)]
        cscan = table[(trace, "cscan", 1)]
        # Reordering shortens service times at 1 disk (deep queues).
        assert sstf.average_fetch_ms <= fcfs.average_fetch_ms * 1.02
        assert cscan.average_fetch_ms <= fcfs.average_fetch_ms * 1.02
        # And neither reordering discipline loses badly end-to-end.
        best = min(fcfs.elapsed_ms, sstf.elapsed_ms, cscan.elapsed_ms)
        assert cscan.elapsed_ms <= best * 1.10

"""Ablation: file-clustered placement vs random scatter.

The paper places each file within a 100-cylinder group (max intra-group
seek 7.24 ms) and stripes with a one-block unit; the combination is what
keeps disk loads balanced and seeks short.  Scattering every block to an
independent random address destroys spatial locality: average service
times rise toward full-stroke seek + rotation costs and I/O-bound elapsed
times grow.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_breakdown_table

from benchmarks.conftest import once


def test_ablation_placement_scatter(benchmark, setting):
    def sweep():
        results = {}
        for placement in ("clustered", "scatter"):
            overrides = {"placement": placement}
            for trace in ("dinero", "cscope2"):
                results[(trace, placement)] = run_one(
                    setting, trace, "aggressive", 1,
                    config_overrides=overrides,
                )
        return results

    results = once(benchmark, sweep)
    rows = [results[key] for key in sorted(results)]
    print()
    print(format_breakdown_table(
        rows, title="Ablation — clustered vs scattered placement (1 disk)"
    ))

    for trace in ("dinero", "cscope2"):
        clustered = results[(trace, "clustered")]
        scattered = results[(trace, "scatter")]
        assert clustered.average_fetch_ms < scattered.average_fetch_ms, (
            f"clustering should shorten {trace}'s seeks"
        )
        assert clustered.elapsed_ms <= scattered.elapsed_ms

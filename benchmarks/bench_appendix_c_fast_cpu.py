"""Appendix C: the xds trace with a double-speed CPU.

Paper shape: halving compute times makes the application more I/O-bound,
increasing the payoff of disks and prefetching, and pushing the point where
fixed horizon overtakes aggressive out to larger arrays.  Fixed horizon's
prefetch horizon doubles to 124 (the paper's choice).
"""

from repro.analysis.experiments import ExperimentSetting, run_one
from repro.analysis.tables import format_breakdown_table

from benchmarks.conftest import disk_counts, once


def test_appendix_c_double_speed_cpu(benchmark, setting):
    fast = ExperimentSetting(scale=setting.scale, cpu_speedup=2.0)
    counts = disk_counts(limit=8)
    doubled_horizon = max(16, int(124 * setting.scale))

    def sweep():
        table = {}
        for disks in counts:
            table[("fast-fh", disks)] = run_one(
                fast, "xds", "fixed-horizon", disks, horizon=doubled_horizon
            )
            table[("fast-agg", disks)] = run_one(fast, "xds", "aggressive", disks)
            table[("base-fh", disks)] = run_one(
                setting, "xds", "fixed-horizon", disks
            )
        return table

    table = once(benchmark, sweep)
    results = [table[key] for key in sorted(table)]
    print()
    print(format_breakdown_table(
        results, title="Appendix C — xds, double-speed CPU (H doubled)"
    ))

    fast_fh = [table[("fast-fh", d)] for d in counts]
    base_fh = [table[("base-fh", d)] for d in counts]
    # Faster CPU: compute halves, so stall makes up a larger share.
    assert fast_fh[0].compute_ms < base_fh[0].compute_ms * 0.55
    first_fast, first_base = fast_fh[0], base_fh[0]
    assert (
        first_fast.stall_ms / first_fast.elapsed_ms
        >= first_base.stall_ms / first_base.elapsed_ms
    )
    # More disks pay off more with the fast CPU: relative improvement from
    # 1 disk to the max array is at least as large.
    fast_gain = fast_fh[0].elapsed_ms / fast_fh[-1].elapsed_ms
    base_gain = base_fh[0].elapsed_ms / base_fh[-1].elapsed_ms
    assert fast_gain >= base_gain * 0.95

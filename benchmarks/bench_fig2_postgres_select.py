"""Figure 2: postgres-select — demand fetching vs the three prefetchers.

Paper shape: all prefetching algorithms beat optimal demand fetching by a
wide margin, and stall time drops near-linearly with disks until the trace
turns compute-bound (elapsed floor = compute + driver).
"""

from benchmarks.common import figure_sweep, index_results, print_crossover, print_figure
from benchmarks.conftest import disk_counts, once

POLICIES = ("demand", "fixed-horizon", "aggressive", "reverse-aggressive")


def test_fig2_postgres_select(benchmark, setting):
    counts = disk_counts()

    results = once(
        benchmark,
        lambda: figure_sweep(setting, "postgres-select", POLICIES, counts),
    )
    print_figure("Figure 2 — postgres-select", results)
    print_crossover(results)

    by_key = index_results(results)
    for disks in counts:
        demand = by_key[("demand", disks)]
        for policy in POLICIES[1:]:
            assert by_key[(policy, disks)].elapsed_ms < demand.elapsed_ms, (
                f"{policy} must beat demand at {disks} disks"
            )
    # near-linear stall reduction until compute-bound
    fh = [by_key[("fixed-horizon", d)] for d in counts]
    assert fh[0].stall_ms > fh[-1].stall_ms

"""Table 7: fixed horizon vs aggressive as cache size varies, on glimpse.

Paper shape: everyone improves with a bigger cache; in I/O-bound configs a
larger cache helps the aggressive prefetchers more, while in compute-bound
configs aggressive's extra driver overhead grows with cache size, improving
fixed horizon's *relative* standing.
"""

from repro.analysis.experiments import ExperimentSetting, run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import once

#: Paper cache sizes (blocks), scaled at runtime.
CACHE_SIZES = (640, 1280, 1920)


def test_table7_cache_size_glimpse(benchmark, setting):
    scale = setting.scale
    counts = (1, 2, 4, 8)

    def sweep():
        table = {}
        for cache in CACHE_SIZES:
            sized = ExperimentSetting(
                scale=scale, cache_blocks=max(16, int(cache * scale))
            )
            for disks in counts:
                fh = run_one(sized, "glimpse", "fixed-horizon", disks)
                agg = run_one(sized, "glimpse", "aggressive", disks)
                table[(cache, disks)] = (fh, agg)
        return table

    table = once(benchmark, sweep)
    rows = []
    for cache in CACHE_SIZES:
        row = [cache]
        for disks in counts:
            fh, agg = table[(cache, disks)]
            pct = 100.0 * (fh.elapsed_ms - agg.elapsed_ms) / agg.elapsed_ms
            row.append(round(pct, 1))
        rows.append(tuple(row))
    print()
    print(
        "Table 7 — fixed horizon relative to aggressive (% elapsed-time\n"
        "difference; positive = FH slower), glimpse"
    )
    print(format_table(("cache",) + tuple(f"{d} disks" for d in counts), rows))

    # Bigger cache improves everyone in absolute terms.
    for disks in counts:
        fh_small, _ = table[(CACHE_SIZES[0], disks)]
        fh_large, _ = table[(CACHE_SIZES[-1], disks)]
        assert fh_large.elapsed_ms <= fh_small.elapsed_ms * 1.02
        _, agg_small = table[(CACHE_SIZES[0], disks)]
        _, agg_large = table[(CACHE_SIZES[-1], disks)]
        assert agg_large.elapsed_ms <= agg_small.elapsed_ms * 1.02

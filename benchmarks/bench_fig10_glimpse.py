"""Figure 10: fixed horizon / aggressive / forestall on glimpse, 1–16 disks.

Paper shape: same story as Figure 9 on the index-heavy glimpse trace —
forestall tracks the best of the two practical algorithms everywhere.
"""

from benchmarks.common import figure_sweep, index_results, print_crossover, print_figure
from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "aggressive", "forestall")


def test_fig10_glimpse(benchmark, setting):
    counts = disk_counts()
    results = once(
        benchmark, lambda: figure_sweep(setting, "glimpse", POLICIES, counts)
    )
    print_figure("Figure 10 — glimpse", results)
    print_crossover(results)
    by_key = index_results(results)
    for disks in counts:
        best = min(
            by_key[("fixed-horizon", disks)].elapsed_ms,
            by_key[("aggressive", disks)].elapsed_ms,
        )
        assert by_key[("forestall", disks)].elapsed_ms <= best * 1.10
    # I/O-bound end: aggressive-style prefetching (and forestall) cut stall
    # relative to fixed horizon.
    assert (
        by_key[("forestall", 1)].stall_ms
        <= by_key[("fixed-horizon", 1)].stall_ms
    )

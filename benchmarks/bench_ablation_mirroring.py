"""Ablation: striping vs RAID-1 mirroring for parallel prefetching.

The paper's arrays stripe with a one-block unit (RAID-0); its RAID
citations raise the obvious alternative of mirroring.  With the same
spindle count, striping doubles capacity and spreads load statically;
mirroring halves capacity but lets every read choose the less-loaded copy.
For the paper's read-only hinted workloads, striping's static balance is
usually enough — which is itself the paper's point about well-laid-out
data (finding 6).
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table

from benchmarks.conftest import once

TRACES = ("postgres-select", "cscope2")
SPINDLES = (2, 4, 8)


def test_ablation_mirroring_vs_striping(benchmark, setting):
    def sweep():
        table = {}
        for trace in TRACES:
            for spindles in SPINDLES:
                table[(trace, spindles, "striped")] = run_one(
                    setting, trace, "forestall", spindles
                )
                table[(trace, spindles, "mirrored")] = run_one(
                    setting, trace, "forestall", spindles,
                    config_overrides={"mirrored": True},
                )
        return table

    table = once(benchmark, sweep)
    rows = []
    for trace in TRACES:
        for spindles in SPINDLES:
            striped = table[(trace, spindles, "striped")]
            mirrored = table[(trace, spindles, "mirrored")]
            rows.append(
                (
                    trace, spindles,
                    round(striped.elapsed_s, 2), round(striped.stall_s, 2),
                    round(mirrored.elapsed_s, 2), round(mirrored.stall_s, 2),
                )
            )
    print()
    print("Ablation — striping vs mirroring (forestall)")
    print(format_table(
        ("trace", "spindles", "striped_s", "stall", "mirrored_s", "stall"),
        rows,
    ))

    for trace in TRACES:
        for spindles in SPINDLES:
            striped = table[(trace, spindles, "striped")]
            mirrored = table[(trace, spindles, "mirrored")]
            # Mirroring halves the independent homes; it must not *win* big
            # on these balanced read workloads (the paper's well-laid-out
            # data finding), and must stay within a sane factor.
            assert mirrored.elapsed_ms <= striped.elapsed_ms * 2.0
            assert striped.elapsed_ms <= mirrored.elapsed_ms * 1.6

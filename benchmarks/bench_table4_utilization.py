"""Table 4: average disk utilization on postgres-select.

Paper shape: for moderate disk counts aggressive loads the disks most,
then reverse aggressive, then fixed horizon; demand fetching least.
Utilization falls as the array grows.
"""

from repro.analysis.tables import format_table

from benchmarks.common import figure_sweep, index_results
from benchmarks.conftest import disk_counts, once

POLICIES = ("demand", "fixed-horizon", "aggressive", "reverse-aggressive")


def test_table4_disk_utilization(benchmark, setting):
    counts = disk_counts()
    results = once(
        benchmark,
        lambda: figure_sweep(setting, "postgres-select", POLICIES, counts),
    )
    by_key = index_results(results)
    rows = []
    for disks in counts:
        rows.append(
            (disks,)
            + tuple(
                round(by_key[(p, disks)].disk_utilization, 2)
                for p in POLICIES
            )
        )
    print()
    print("Table 4 — disk utilization, postgres-select")
    print(format_table(("disks",) + POLICIES, rows))

    for disks in counts[:3]:
        demand = by_key[("demand", disks)].disk_utilization
        fh = by_key[("fixed-horizon", disks)].disk_utilization
        agg = by_key[("aggressive", disks)].disk_utilization
        assert demand <= fh <= agg * 1.02, (
            f"utilization ordering broken at {disks} disks"
        )
    # utilization decreases with array size for every policy
    for policy in POLICIES:
        series = [by_key[(policy, d)].disk_utilization for d in counts]
        assert series[0] >= series[-1]

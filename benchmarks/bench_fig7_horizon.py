"""Figure 7: fixed horizon's elapsed time vs the prefetch horizon H, on
cscope1 (CPU-bound, left) and cscope2 (more I/O-bound, right).

Paper shape: on cscope1 performance degrades as H grows (out-of-order
fetching and early replacement); on cscope2 a larger H first helps a lot
(more aggressive prefetching eliminates stalling) before declining at
extreme values.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_elapsed_grid

from benchmarks.conftest import full_run, once


def _horizons(setting):
    base = (16, 32, 64, 128, 256, 512, 1024, 2048)
    if not full_run():
        base = (16, 32, 64, 128, 256, 512)
    scaled = sorted({max(2, int(h * setting.scale)) for h in base})
    return scaled


def test_fig7_horizon_cscope1_and_cscope2(benchmark, setting):
    horizons = _horizons(setting)
    counts = (1, 2, 3)

    def sweep():
        grid = {}
        for trace in ("cscope1", "cscope2"):
            for horizon in horizons:
                grid[(trace, horizon)] = [
                    run_one(
                        setting, trace, "fixed-horizon", disks,
                        horizon=horizon,
                    )
                    for disks in counts
                ]
        return grid

    grid = once(benchmark, sweep)
    for trace in ("cscope1", "cscope2"):
        view = {
            f"H={h}": [r.elapsed_s for r in grid[(trace, h)]]
            for h in horizons
        }
        print()
        print(
            format_elapsed_grid(
                view, "horizon", [f"{d} disks" for d in counts],
                title=f"Figure 7 — fixed horizon vs H, {trace}",
            )
        )

    # cscope1, multi-disk: very large H does not beat the best small H
    # (early replacement costs fetches).
    cscope1_3d = [grid[("cscope1", h)][2].elapsed_ms for h in horizons]
    assert min(cscope1_3d[:2]) <= cscope1_3d[-1] * 1.005
    # cscope1: fetch count grows with H (earlier replacements).
    fetches = [grid[("cscope1", h)][0].fetches for h in horizons]
    assert fetches[-1] >= fetches[0]
    # cscope2, 1 disk: increasing H from the minimum helps substantially.
    cscope2_1d = [grid[("cscope2", h)][0].elapsed_ms for h in horizons]
    assert min(cscope2_1d[1:]) < cscope2_1d[0]

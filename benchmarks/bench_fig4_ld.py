"""Figure 4: the ld trace from 1 to 16 disks — the crossover figure.

Paper shape: with few disks all algorithms are I/O-bound and aggressive's
deeper prefetching wins; past the crossover the trade-off (idle-disk stalls
vs driver overhead) favors fixed horizon.
"""

from benchmarks.common import figure_sweep, index_results, print_crossover, print_figure
from benchmarks.conftest import disk_counts, once

POLICIES = ("fixed-horizon", "aggressive", "reverse-aggressive")


def test_fig4_ld(benchmark, setting):
    counts = disk_counts()
    results = once(
        benchmark, lambda: figure_sweep(setting, "ld", POLICIES, counts)
    )
    print_figure("Figure 4 — ld", results)
    print_crossover(results)
    by_key = index_results(results)

    # I/O-bound at 1 disk: both roughly comparable, aggressive not worse
    # than FH by more than a whisker, and stall dominates elapsed time.
    one_fh = by_key[("fixed-horizon", 1)]
    assert one_fh.stall_ms > one_fh.compute_ms
    # Aggressive reduces stall relative to FH while disks are scarce.
    assert (
        by_key[("aggressive", 2)].stall_ms
        <= by_key[("fixed-horizon", 2)].stall_ms
    )
    # At the high-disk end the stall is essentially gone for everyone.
    top = max(counts)
    assert by_key[("fixed-horizon", top)].stall_ms < one_fh.stall_ms / 4

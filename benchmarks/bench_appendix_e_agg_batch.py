"""Appendix E: aggressive's full measurement vector across batch sizes.

Extends Figure 6 from elapsed time to the full per-run vector, on more
traces.  Paper shape: larger batches help I/O-bound configs through
scheduling, then hurt through out-of-order fetching and early replacement;
the number of fetches grows with batch size in cache-pressured traces.
"""

import pytest

from repro.analysis.tables import format_breakdown_table

from benchmarks.common import grid_cell, run_keyed_cells
from benchmarks.conftest import full_run, once

TRACES = ("dinero", "cscope2") if not full_run() else (
    "dinero", "cscope1", "cscope2", "cscope3", "glimpse",
    "ld", "postgres-join", "postgres-select", "xds",
)
BASE_BATCHES = (4, 16, 40, 80, 160)


@pytest.mark.parametrize("trace", TRACES)
def test_appendix_e_aggressive_batch(benchmark, setting, trace):
    batches = sorted({max(2, int(b * setting.scale)) for b in BASE_BATCHES})
    counts = (1, 2, 4)

    def sweep():
        plan = {
            (batch, disks): grid_cell(
                setting, trace, "aggressive", disks, batch_size=batch
            )
            for batch in batches
            for disks in counts
        }
        return run_keyed_cells(setting, plan)

    results = once(benchmark, sweep)
    print()
    rows = [results[(b, d)] for b in batches for d in counts]
    print(format_breakdown_table(
        rows, title=f"Appendix E — aggressive batch-size grid, {trace}"
    ))

    # Fetch count is nondecreasing-ish in batch size at 1 disk (early
    # replacement); allow slack for ties.
    one_disk_fetches = [results[(b, 1)].fetches for b in batches]
    assert one_disk_fetches[-1] >= one_disk_fetches[0] * 0.98
    # Every cell satisfies driver = fetches x 0.5 ms.
    for result in results.values():
        assert result.driver_ms == pytest.approx(result.fetches * 0.5)

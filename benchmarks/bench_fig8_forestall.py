"""Figure 8: forestall vs fixed horizon and aggressive on synth and xds.

Paper shape: in I/O-bound configurations forestall prefetches aggressively
enough to match (or beat) aggressive; in CPU-bound configurations it turns
conservative, matching fixed horizon's low driver overhead.
"""

from benchmarks.common import figure_sweep, index_results, print_figure
from benchmarks.conftest import once

POLICIES = ("fixed-horizon", "aggressive", "forestall")


def test_fig8_synth(benchmark, setting):
    results = once(
        benchmark,
        lambda: figure_sweep(setting, "synth", POLICIES, (1, 2, 3, 4)),
    )
    print_figure("Figure 8 (left) — synth", results)
    by_key = index_results(results)
    # I/O-bound: forestall within a whisker of aggressive (or better).
    assert (
        by_key[("forestall", 1)].elapsed_ms
        <= by_key[("aggressive", 1)].elapsed_ms * 1.02
    )
    # Compute-bound: forestall's driver overhead near fixed horizon's,
    # far below aggressive's.
    agg = by_key[("aggressive", 4)].driver_ms
    fh = by_key[("fixed-horizon", 4)].driver_ms
    forestall = by_key[("forestall", 4)].driver_ms
    assert forestall < (fh + agg) / 2


def test_fig8_xds(benchmark, setting):
    results = once(
        benchmark,
        lambda: figure_sweep(setting, "xds", POLICIES, (1, 2, 3, 4, 6)),
    )
    print_figure("Figure 8 (right) — xds", results)
    by_key = index_results(results)
    for disks in (1, 2, 4, 6):
        best = min(
            by_key[("fixed-horizon", disks)].elapsed_ms,
            by_key[("aggressive", disks)].elapsed_ms,
        )
        assert by_key[("forestall", disks)].elapsed_ms <= best * 1.10

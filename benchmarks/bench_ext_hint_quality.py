"""Extension: imperfect hints (the paper's section-6 future work).

The paper conjectures that "since fixed horizon places the least load on
the disks and the cache, it is likely to be least affected" by unhinted
accesses, while aggressive prefetching suffers (busy disks, cache full of
speculation).  Degrading the hint stream lets us test that conjecture:
missing hints surface as demand misses, wrong hints waste prefetches.
"""

import repro
from repro.analysis.tables import format_table

from benchmarks.conftest import once

POLICIES = ("fixed-horizon", "aggressive", "forestall")
QUALITIES = (
    ("perfect", repro.HintQuality()),
    ("10% missing", repro.HintQuality(missing_fraction=0.10, seed=42)),
    ("25% missing", repro.HintQuality(missing_fraction=0.25, seed=42)),
    ("10% wrong", repro.HintQuality(wrong_fraction=0.10, seed=42)),
    ("15%+10% bad", repro.HintQuality(missing_fraction=0.15,
                                      wrong_fraction=0.10, seed=42)),
)


def test_ext_hint_quality(benchmark, setting):
    trace = setting.trace("cscope2")
    cache = setting.cache_for("cscope2")

    def sweep():
        table = {}
        for label, quality in QUALITIES:
            for policy in POLICIES:
                table[(label, policy)] = repro.run_simulation(
                    trace, policy=policy, num_disks=2, cache_blocks=cache,
                    hint_quality=quality,
                )
        return table

    table = once(benchmark, sweep)
    rows = []
    for label, _quality in QUALITIES:
        rows.append(
            (label,)
            + tuple(round(table[(label, p)].elapsed_s, 2) for p in POLICIES)
        )
    print()
    print("Extension — elapsed time (s) under degraded hints, cscope2, 2 disks")
    print(format_table(("hint quality",) + POLICIES, rows))

    # Degradation is monotone in hint badness for every policy.
    for policy in POLICIES:
        perfect = table[("perfect", policy)].elapsed_ms
        worst = table[("15%+10% bad", policy)].elapsed_ms
        assert worst >= perfect

    # The paper's conjecture: fixed horizon is hurt least (relative
    # slowdown) by imperfect hints; aggressive most.
    def slowdown(policy):
        return (
            table[("15%+10% bad", policy)].elapsed_ms
            / table[("perfect", policy)].elapsed_ms
        )

    assert slowdown("fixed-horizon") <= slowdown("aggressive")

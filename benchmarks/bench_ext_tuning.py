"""Extension: scoring the analytic parameter recommendations.

The paper's open problem is choosing H, batch sizes, and F without search.
This bench compares the analytic recommendations (from trace statistics
alone) against exhaustively searched optima: the recommendation must land
within a modest factor of the best searched value on every trace.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table
from repro.analysis.tuning import (
    recommend_batch_size,
    recommend_horizon,
    search_parameter,
)

from benchmarks.conftest import once

TRACES = ("cscope2", "postgres-select", "dinero")


def test_ext_analytic_tuning(benchmark, setting):
    def sweep():
        table = {}
        for trace_name in TRACES:
            trace = setting.trace(trace_name)
            cache = setting.cache_for(trace_name)

            # --- horizon for fixed horizon at 1 disk -------------------
            recommended_h = recommend_horizon(trace)

            def eval_h(h):
                return run_one(
                    setting, trace_name, "fixed-horizon", 1, horizon=h
                ).elapsed_ms

            ladder = sorted({
                max(2, int(x * setting.scale)) for x in (8, 16, 32, 64, 128)
            })
            best_h, best_h_score, _ = search_parameter(eval_h, ladder)
            rec_h_score = eval_h(min(recommended_h, cache - 1))

            # --- batch for aggressive at 1 disk -------------------------
            recommended_b = recommend_batch_size(trace, 1, cache)

            def eval_b(b):
                return run_one(
                    setting, trace_name, "aggressive", 1, batch_size=b
                ).elapsed_ms

            ladder_b = sorted({
                max(2, int(x * setting.scale)) for x in (4, 16, 40, 80, 160)
            })
            best_b, best_b_score, _ = search_parameter(eval_b, ladder_b)
            rec_b_score = eval_b(recommended_b)

            table[trace_name] = {
                "best_h": best_h, "best_h_s": best_h_score / 1000,
                "rec_h": recommended_h, "rec_h_s": rec_h_score / 1000,
                "best_b": best_b, "best_b_s": best_b_score / 1000,
                "rec_b": recommended_b, "rec_b_s": rec_b_score / 1000,
            }
        return table

    table = once(benchmark, sweep)
    rows = [
        (
            name,
            row["best_h"], round(row["best_h_s"], 2),
            row["rec_h"], round(row["rec_h_s"], 2),
            row["best_b"], round(row["best_b_s"], 2),
            row["rec_b"], round(row["rec_b_s"], 2),
        )
        for name, row in table.items()
    ]
    print()
    print("Extension — analytic recommendations vs searched optima (1 disk)")
    print(format_table(
        ("trace", "H*", "s", "H_rec", "s", "B*", "s", "B_rec", "s"),
        rows,
    ))

    for name, row in table.items():
        # The analytic recommendation lands within 15% of the searched
        # optimum on both parameters.
        assert row["rec_h_s"] <= row["best_h_s"] * 1.15, f"{name} horizon"
        assert row["rec_b_s"] <= row["best_b_s"] * 1.15, f"{name} batch"

"""Appendix B: the baseline grid re-run under FCFS disk-head scheduling.

Paper shape: FCFS mostly degrades I/O-bound configurations relative to
CSCAN (the appendix-A numbers) and changes little where compute dominates.
"""

import pytest

from repro.analysis.experiments import baseline_rows
from repro.analysis.tables import format_appendix_table

from benchmarks.conftest import disk_counts, full_run, once

TRACES = ("cscope2", "postgres-select") if not full_run() else (
    "dinero", "cscope1", "cscope2", "cscope3", "glimpse",
    "ld", "postgres-join", "postgres-select", "xds", "synth",
)


@pytest.mark.parametrize("trace", TRACES)
def test_appendix_b_fcfs(benchmark, setting, fcfs_setting, trace):
    counts = disk_counts(limit=8)

    def sweep():
        fcfs = baseline_rows(
            fcfs_setting, trace, counts,
            policies=("fixed-horizon", "aggressive"), tuned_reverse=False,
        )
        cscan = baseline_rows(
            setting, trace, counts,
            policies=("fixed-horizon", "aggressive"), tuned_reverse=False,
        )
        return fcfs, cscan

    fcfs, cscan = once(benchmark, sweep)
    print()
    print(f"Appendix B — FCFS scheduling, {trace}")
    print(format_appendix_table(fcfs, counts))

    # At the most I/O-bound configuration (1 disk), CSCAN's reordering
    # should not lose to FCFS for the deep-queue aggressive algorithm.
    agg_fcfs = fcfs["aggressive"][0]
    agg_cscan = cscan["aggressive"][0]
    assert agg_cscan.elapsed_ms <= agg_fcfs.elapsed_ms * 1.02

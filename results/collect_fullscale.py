"""Collect full-scale paper-vs-measured numbers for EXPERIMENTS.md.

Run from the repository root:  python results/collect_fullscale.py
Takes ~10 minutes; writes results/fullscale.json and prints progress.
"""
import json, time
from repro.runner import write_json_atomic
from repro.analysis.experiments import ExperimentSetting, run_one, tuned_reverse_aggressive, compare_disciplines

s = ExperimentSetting(scale=1.0)
out = {}
t0 = time.time()

def rec(key, r):
    out[key] = dict(elapsed_s=round(r.elapsed_s,3), stall_s=round(r.stall_s,3),
                    driver_s=round(r.driver_s,3), fetches=r.fetches,
                    util=round(r.disk_utilization,2), avg_fetch_ms=round(r.average_fetch_ms,2))
    print(f"[{time.time()-t0:7.1f}s] {key}: {out[key]}")

# Figure 2 + Table 4: postgres-select
for d in (1,2,4,8,16):
    for p in ("demand","fixed-horizon","aggressive"):
        rec(f"pselect/{p}/{d}", run_one(s,"postgres-select",p,d))
    rec(f"pselect/reverse-aggressive/{d}", tuned_reverse_aggressive(s,"postgres-select",d,fetch_times=(2,8,32)))
    rec(f"pselect/forestall/{d}", run_one(s,"postgres-select","forestall",d))

# Figure 3: synth + cscope1
for d in (1,2,3,4):
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"synth/{p}/{d}", run_one(s,"synth",p,d))
    rec(f"synth/reverse-aggressive/{d}", tuned_reverse_aggressive(s,"synth",d,fetch_times=(4,8,16)))
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"cscope1/{p}/{d}", run_one(s,"cscope1",p,d))

# Figure 4: ld
for d in (1,2,4,8,10,16):
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"ld/{p}/{d}", run_one(s,"ld",p,d))

# Figure 5: cscope3
for d in (1,2,4,8):
    for p in ("fixed-horizon","aggressive"):
        rec(f"cscope3/{p}/{d}", run_one(s,"cscope3",p,d))
    rec(f"cscope3/reverse-aggressive/{d}", tuned_reverse_aggressive(s,"cscope3",d,fetch_times=(2,8,32)))

# Figures 9/10: cscope2, glimpse
for d in (1,2,4,8,16):
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"cscope2/{p}/{d}", run_one(s,"cscope2",p,d))
        rec(f"glimpse/{p}/{d}", run_one(s,"glimpse",p,d))

# Figure 8: xds
for d in (1,2,3,4,6):
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"xds/{p}/{d}", run_one(s,"xds",p,d))

# Table 5: CSCAN vs FCFS on postgres-select
for p in ("fixed-horizon","aggressive"):
    rows = compare_disciplines(s,"postgres-select",p,(1,2,4,8))
    for d,c,f,imp in rows:
        out[f"t5/{p}/{d}"] = round(imp,2)
        print(f"t5/{p}/{d}: {imp:.2f}%")

# dinero + postgres-join baselines (appendix A flavor)
for d in (1,2,4):
    for p in ("fixed-horizon","aggressive","forestall"):
        rec(f"dinero/{p}/{d}", run_one(s,"dinero",p,d))
        rec(f"pjoin/{p}/{d}", run_one(s,"postgres-join",p,d))

write_json_atomic("results/fullscale.json", out, indent=1)
print("DONE", time.time()-t0)

"""The ten calibrated workloads: Table 3 aggregates and pattern structure."""

import pytest

from repro.trace import TABLE3, Trace, build, cache_blocks_for
from repro.trace.workloads import COMPUTE_AS_SIMULATED, WORKLOADS, XL_WORKLOADS


@pytest.fixture(scope="module")
def traces():
    return {name: build(name) for name in WORKLOADS}


class TestTable3Calibration:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_reads_exact(self, traces, name):
        assert traces[name].reads == TABLE3[name][0]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_distinct_blocks_exact(self, traces, name):
        assert traces[name].distinct_blocks == TABLE3[name][1]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_compute_total_matches_simulation_values(self, traces, name):
        assert traces[name].compute_time_s == pytest.approx(
            COMPUTE_AS_SIMULATED[name], rel=1e-6
        )

    def test_postgres_compute_swap_documented(self):
        """Table 3 as printed swaps the postgres compute times relative to
        the appendix; the builders follow the appendix."""
        assert COMPUTE_AS_SIMULATED["postgres-join"] == TABLE3["postgres-select"][2]
        assert COMPUTE_AS_SIMULATED["postgres-select"] == TABLE3["postgres-join"][2]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a, b = build("glimpse"), build("glimpse")
        assert a.blocks == b.blocks
        assert a.compute_ms == b.compute_ms

    def test_different_seed_differs(self):
        a = build("glimpse", seed=5)
        b = build("glimpse", seed=55)
        assert a.blocks != b.blocks or a.compute_ms != b.compute_ms


class TestScaling:
    @pytest.mark.parametrize("name", ["cscope2", "glimpse", "ld", "synth"])
    def test_scaled_trace_shrinks_proportionally(self, name):
        t = build(name, scale=0.25)
        reads, distinct, _ = TABLE3[name]
        assert t.reads == pytest.approx(reads * 0.25, rel=0.02)
        assert t.distinct_blocks == pytest.approx(distinct * 0.25, rel=0.1)

    def test_cache_scales_with_trace(self):
        assert cache_blocks_for("glimpse") == 1280
        assert cache_blocks_for("glimpse", 0.25) == 320
        assert cache_blocks_for("dinero") == 512
        assert cache_blocks_for("cscope1", 0.5) == 256

    def test_cache_floor(self):
        assert cache_blocks_for("glimpse", 0.001) == 16


class TestPatternStructure:
    def test_dinero_is_single_file_sequential(self, traces):
        t = traces["dinero"]
        distinct = t.distinct_blocks
        # first pass is strictly sequential
        assert t.blocks[:distinct] == sorted(set(t.blocks))

    def test_synth_is_the_paper_loop(self, traces):
        t = traces["synth"]
        # 50 passes over 2000 sequential blocks
        assert t.blocks[:2000] == t.blocks[2000:4000]
        assert t.blocks[0:3] == [t.blocks[0], t.blocks[0] + 1, t.blocks[0] + 2]

    def test_synth_compute_mean_near_1ms(self, traces):
        assert traces["synth"].mean_compute_ms == pytest.approx(1.0, abs=0.01)

    def test_cscope3_compute_is_bursty(self, traces):
        gaps = traces["cscope3"].compute_ms
        lows = sum(1 for g in gaps if g < 3.0 * 74.1 / 74.1)
        # bursty: both regimes well represented
        low_frac = lows / len(gaps)
        assert 0.2 < low_frac < 0.95

    def test_glimpse_index_blocks_are_hot(self, traces):
        t = traces["glimpse"]
        from collections import Counter

        counts = Counter(t.blocks)
        top = [b for b, _c in counts.most_common(100)]
        # hottest blocks are re-read far more than data blocks
        assert counts[top[0]] > 10

    def test_ld_two_pass_structure(self, traces):
        t = traces["ld"]
        # roughly two references per distinct block
        assert 1.9 < t.reads / t.distinct_blocks < 2.2

    def test_postgres_select_mostly_single_touch_data(self, traces):
        from collections import Counter

        t = traces["postgres-select"]
        counts = Counter(t.blocks)
        single = sum(1 for c in counts.values() if c == 1)
        assert single > t.distinct_blocks * 0.8

    def test_xds_strided_runs(self, traces):
        t = traces["xds"]
        strides = [b - a for a, b in zip(t.blocks, t.blocks[1:])]
        from collections import Counter

        common = Counter(strides).most_common(3)
        # dominated by a few repeated strides (slice structure)
        assert common[0][1] > len(strides) * 0.2

    def test_file_metadata_covers_all_blocks(self, traces):
        for name, t in traces.items():
            if t.files is None:
                continue
            missing = set(t.blocks) - set(t.files)
            assert not missing, f"{name} has unmapped blocks"


class TestRegistry:
    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build("nonesuch")

    def test_all_ten_present(self):
        assert len(WORKLOADS) == 10
        assert set(WORKLOADS) == set(TABLE3)

    def test_xl_tier_separate_from_table3(self):
        assert "synth-xl" in XL_WORKLOADS
        assert not set(XL_WORKLOADS) & set(WORKLOADS)

    def test_synth_xl_builds_and_simulates_small(self):
        import repro

        trace = build("synth-xl", scale=0.002)
        assert trace.name == "synth-xl"
        assert trace.references >= 1_000
        assert trace.distinct_blocks >= 100
        result = repro.run_simulation(
            trace, policy="aggressive", num_disks=2,
            cache_blocks=cache_blocks_for("synth-xl", 0.002),
        )
        assert result.references == trace.references

    def test_synth_xl_deterministic(self):
        a = build("synth-xl", scale=0.001)
        b = build("synth-xl", scale=0.001)
        assert a.blocks == b.blocks
        assert a.compute_ms == b.compute_ms


class TestScaleRobustness:
    """Builders must produce valid, simulable traces at any scale."""

    @pytest.mark.parametrize("scale", [0.03, 0.11, 0.37, 0.71])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_builds_and_simulates_at_any_scale(self, name, scale):
        import repro

        trace = build(name, scale=scale)
        assert trace.references >= 8
        assert trace.distinct_blocks >= 4
        assert trace.compute_time_s > 0
        result = repro.run_simulation(
            trace, policy="demand", num_disks=2,
            cache_blocks=cache_blocks_for(name, scale),
        )
        assert result.references == trace.references

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_scaled_counts_proportional(self, name):
        full_reads, full_distinct, _ = TABLE3[name]
        trace = build(name, scale=0.5)
        assert trace.reads == pytest.approx(full_reads * 0.5, rel=0.02)
        assert trace.distinct_blocks == pytest.approx(
            full_distinct * 0.5, rel=0.1
        )

"""Hostile-network hardening of the service tier (docs/SERVICE.md,
"Overload and hostile networks").

Three layers under test, each over real sockets where the behaviour is
wire-visible:

* **protocol limits** — the malformed-request corpus (split CRLFs,
  oversized request lines, bad framing, premature EOF, pipelined
  garbage) must each produce the documented 4xx and never an exception
  on the event loop; the hard size ceilings must hold for *any*
  configuration;
* **overload control** — deadline-aware shedding, the per-peer rate
  limiter, the compute priority lane, and the connection cap;
* **event-stream bounds** — a stalled ``/v1/events`` consumer is
  disconnected, ring-buffer overflow is surfaced as an explicit gap.
"""

import asyncio
import json

import pytest

from repro.obs import MetricsRegistry
from repro.svc import (
    HARD_MAX_BODY_BYTES,
    HARD_MAX_HEADER_BYTES,
    PeerRateLimiter,
    ProtocolLimits,
    ServiceConfig,
    ServiceServer,
    SimulationService,
)
from repro.svc.admission import AdmissionController

from tests.test_runner import kind_cell, test_kinds  # noqa: F401
from tests.test_svc_http import fetch, http_test


INSTANT_SPEC = {"trace": "ld", "policy": "demand", "disks": 1,
                "kind": "instant", "params": {"n": 5}}


async def raw_exchange(port, payload, timeout_s=10.0, eof_after=None):
    """Send raw bytes, return the decoded response (or b"" on reset).

    ``eof_after``: send only that prefix, then half-close the write side
    (premature EOF) and read whatever the server answers.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if eof_after is not None:
            writer.write(payload[:eof_after])
            await writer.drain()
            writer.write_eof()
        else:
            writer.write(payload)
            await writer.drain()
        try:
            return await asyncio.wait_for(reader.read(), timeout_s)
        except (ConnectionError, OSError):
            return b""
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def status_of(raw):
    assert raw, "server closed the connection without a response"
    return int(raw.split(b"\r\n", 1)[0].split(b" ")[1])


# -- hard ceilings: no configuration is memory-unbounded --------------------------------


class TestHardCeilings:
    def test_header_ceiling_clamps_any_configuration(self):
        limits = ProtocolLimits(max_header_bytes=10**9)
        assert limits.max_header_bytes == HARD_MAX_HEADER_BYTES

    def test_body_ceiling_clamps_any_configuration(self):
        limits = ProtocolLimits(max_body_bytes=10**12)
        assert limits.max_body_bytes == HARD_MAX_BODY_BYTES

    def test_request_line_never_exceeds_header_limit(self):
        limits = ProtocolLimits(max_header_bytes=2048,
                                max_request_line_bytes=10**9)
        assert limits.max_request_line_bytes == 2048

    def test_defaults_are_already_bounded(self):
        limits = ProtocolLimits()
        assert limits.max_header_bytes <= HARD_MAX_HEADER_BYTES
        assert limits.max_body_bytes <= HARD_MAX_BODY_BYTES

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(ValueError, match="max_connections"):
            ProtocolLimits(max_connections=0)
        with pytest.raises(ValueError, match="header_timeout_s"):
            ProtocolLimits(header_timeout_s=0.0)
        with pytest.raises(ValueError, match="reserved_read_connections"):
            ProtocolLimits(reserved_read_connections=-1)

    def test_compute_lane_has_floor_one(self):
        limits = ProtocolLimits(max_connections=4,
                                reserved_read_connections=100)
        assert limits.compute_connections == 1
        wide = ProtocolLimits(max_connections=100,
                              reserved_read_connections=30)
        assert wide.compute_connections == 70


# -- the malformed-request corpus -------------------------------------------------------


class TestMalformedCorpus:
    """Every entry must produce the documented 4xx (or a clean close)
    over a real socket — never an unhandled exception on the loop."""

    def run(self, scenario, tmp_path, **limit_kwargs):
        limits = ProtocolLimits(**limit_kwargs) if limit_kwargs else \
            ProtocolLimits()
        return http_test(scenario, store_dir=str(tmp_path / "store"),
                         jobs=1, limits=limits)

    def test_oversized_request_line_is_431(self, tmp_path):
        async def scenario(service, port):
            path = "/" + "a" * 6000
            raw = await raw_exchange(
                port, f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            assert status_of(raw) == 431
            assert b"request line too large" in raw

        self.run(scenario, tmp_path)

    def test_oversized_header_block_is_431(self, tmp_path):
        async def scenario(service, port):
            filler = "".join(
                f"X-Pad-{i}: {'y' * 64}\r\n" for i in range(40)
            )
            raw = await raw_exchange(
                port,
                f"GET /v1/healthz HTTP/1.1\r\n{filler}\r\n".encode(),
            )
            assert status_of(raw) == 431
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.http.limited{reason="header"}') == 1

        self.run(scenario, tmp_path, max_header_bytes=1024)

    def test_oversized_declared_body_is_413(self, tmp_path):
        async def scenario(service, port):
            raw = await raw_exchange(
                port,
                b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 999999999\r\n\r\n",
            )
            assert status_of(raw) == 413
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.http.limited{reason="body"}') == 1

        self.run(scenario, tmp_path, max_body_bytes=4096)

    def test_bad_content_length_is_400(self, tmp_path):
        async def scenario(service, port):
            for value in (b"banana", b"-5"):
                raw = await raw_exchange(
                    port,
                    b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: " + value + b"\r\n\r\n",
                )
                assert status_of(raw) == 400
                assert b"bad Content-Length" in raw

        self.run(scenario, tmp_path)

    def test_transfer_encoding_is_refused(self, tmp_path):
        async def scenario(service, port):
            raw = await raw_exchange(
                port,
                b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n",
            )
            assert status_of(raw) == 400
            assert b"Transfer-Encoding" in raw

        self.run(scenario, tmp_path)

    def test_premature_eof_mid_body_is_400(self, tmp_path):
        async def scenario(service, port):
            request = (
                b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 100\r\n\r\n" + b"{" * 3
            )
            raw = await raw_exchange(port, request, eof_after=len(request))
            assert status_of(raw) == 400
            assert b"truncated body" in raw

        self.run(scenario, tmp_path)

    def test_garbage_request_line_is_400(self, tmp_path):
        async def scenario(service, port):
            raw = await raw_exchange(port, b"\x00\x01GARBAGE\r\n\r\n")
            assert status_of(raw) == 400

        self.run(scenario, tmp_path)

    def test_split_crlfs_still_parse(self, tmp_path):
        """Headers arriving one byte at a time (within the deadline) are
        legitimate — pacing is not a protocol offence."""

        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for byte in b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n":
                writer.write(bytes([byte]))
                await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            writer.close()
            await writer.wait_closed()
            assert status_of(raw) == 200

        self.run(scenario, tmp_path)

    def test_pipelined_garbage_after_request_is_ignored(self, tmp_path):
        """Without keep-alive the connection closes after one response;
        pipelined trailing bytes are never interpreted as a request."""

        async def scenario(service, port):
            before = service.metrics.to_dict()["counters"].get(
                "svc.requests", 0
            )
            raw = await raw_exchange(
                port,
                b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                b"\x00\xff NOT HTTP AT ALL \r\n\r\n",
            )
            assert status_of(raw) == 200
            after = service.metrics.to_dict()["counters"].get(
                "svc.requests", 0
            )
            assert after == before  # healthz is not a cell request

        self.run(scenario, tmp_path)

    def test_header_slowloris_is_408(self, tmp_path):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /v1/healthz HTTP/1.1\r\nHost")  # ...stall
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            writer.close()
            await writer.wait_closed()
            assert status_of(raw) == 408
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.http.limited{reason="timeout"}') == 1

        self.run(scenario, tmp_path, header_timeout_s=0.3)

    def test_drip_fed_body_is_408(self, tmp_path):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 64\r\n\r\n{"  # 1 of 64 bytes, then stall
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            writer.close()
            await writer.wait_closed()
            assert status_of(raw) == 408
            assert b"body" in raw

        self.run(scenario, tmp_path, body_timeout_s=0.3)

    def test_bare_lf_head_never_completes_and_times_out(self, tmp_path):
        async def scenario(service, port):
            raw = await raw_exchange(
                port, b"GET /v1/healthz HTTP/1.1\nHost: t\n\n"
            )
            assert status_of(raw) == 408

        self.run(scenario, tmp_path, header_timeout_s=0.3)


# -- connection cap, keep-alive, priority lane, rate limit ------------------------------


class TestConnectionLimits:
    def test_connection_cap_refuses_with_503(self, test_kinds, tmp_path):
        async def scenario(service, port):
            holder_reader, holder = await asyncio.open_connection(
                "127.0.0.1", port
            )
            await asyncio.sleep(0.05)  # let the accept register
            try:
                raw = await raw_exchange(
                    port, b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                assert status_of(raw) == 503
                head = raw.split(b"\r\n\r\n")[0].decode().lower()
                assert "retry-after" in head
                counters = service.metrics.to_dict()["counters"]
                assert counters.get(
                    'svc.http.limited{reason="connections"}') == 1
            finally:
                holder.close()
                await holder.wait_closed()
            # Once the holder leaves, the server accepts again.
            await asyncio.sleep(0.05)
            status, _, payload = await fetch(port, "GET", "/v1/healthz")
            assert status == 200 and payload["ok"] is True

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1,
                  limits=ProtocolLimits(max_connections=1))

    def test_keep_alive_is_opt_in_and_capped(self, test_kinds, tmp_path):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def one(expect_keep_alive):
                writer.write(
                    b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: keep-alive\r\n\r\n"
                )
                await writer.drain()
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), 10.0
                )
                lines = head.decode().lower()
                length = int(
                    [line for line in lines.split("\r\n")
                     if line.startswith("content-length")][0].split(":")[1]
                )
                await asyncio.wait_for(reader.readexactly(length), 10.0)
                assert status_of(head) == 200
                if expect_keep_alive:
                    assert "connection: keep-alive" in lines
                else:
                    assert "connection: close" in lines

            await one(expect_keep_alive=True)
            await one(expect_keep_alive=False)  # request cap reached
            # The server closes the socket after the capped request.
            assert await asyncio.wait_for(reader.read(), 10.0) == b""
            writer.close()
            await writer.wait_closed()

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1,
                  limits=ProtocolLimits(max_requests_per_connection=2))

    def test_without_keep_alive_header_connection_closes(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, headers, _ = await fetch(port, "GET", "/v1/healthz")
            assert status == 200
            assert headers["connection"] == "close"

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_compute_lane_full_is_429_but_reads_pass(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            spec = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "sleep", "params": {"sleep_s": 2.0}}
            slow = asyncio.create_task(
                fetch(port, "POST", "/v1/cells", spec, timeout_s=30.0)
            )
            # Wait until the slow cell holds the (width-1) compute lane.
            for _ in range(100):
                await asyncio.sleep(0.05)
                if service.admission.in_system > 0:
                    break
            status, headers, payload = await fetch(
                port, "POST", "/v1/cells", INSTANT_SPEC
            )
            assert status == 429
            assert "compute lane full" in payload["error"]
            assert "retry-after" in headers
            # Reads are never starved by a saturated compute lane.
            status, _, _ = await fetch(port, "GET", "/v1/status")
            assert status == 200
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.http.limited{reason="lane"}') == 1
            status, _, _ = await slow
            assert status == 200

        http_test(
            scenario, store_dir=str(tmp_path / "store"), jobs=1,
            limits=ProtocolLimits(max_connections=16,
                                  reserved_read_connections=15),
        )

    def test_rate_limited_compute_is_429_but_reads_pass(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            first = await fetch(port, "POST", "/v1/cells", INSTANT_SPEC)
            assert first[0] == 200
            status, headers, payload = await fetch(
                port, "POST", "/v1/cells", INSTANT_SPEC
            )
            assert status == 429
            assert "rate limit" in payload["error"]
            assert int(headers["retry-after"]) >= 1
            # Reads are exempt from the compute rate limit.
            status, _, _ = await fetch(port, "GET", "/v1/healthz")
            assert status == 200
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.http.limited{reason="rate"}') == 1
            assert service.rate_limiter.rejected_total == 1

        http_test(
            scenario, store_dir=str(tmp_path / "store"), jobs=1,
            rate_limit_per_s=0.001, rate_limit_burst=1,
        )

    def test_status_exposes_http_and_rate_limiter_blocks(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(port, "GET", "/v1/status")
            assert status == 200
            http = payload["http"]
            assert http["max_connections"] == 256
            assert http["compute_connections"] == 224
            assert http["limits"]["max_body_bytes"] == 4 * 1024 * 1024
            assert payload["rate_limiter"]["enabled"] is False
            assert "shed" in payload["admission"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)


# -- the per-peer token bucket ----------------------------------------------------------


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestPeerRateLimiter:
    def test_burst_then_refusal_then_refill(self):
        clock = FakeClock()
        limiter = PeerRateLimiter(rate_per_s=1.0, burst=2, clock=clock)
        assert limiter.check("a") == (True, 0.0)
        assert limiter.check("a") == (True, 0.0)
        admitted, retry = limiter.check("a")
        assert not admitted and retry == pytest.approx(1.0)
        clock.now += 1.0
        assert limiter.check("a")[0] is True
        assert limiter.rejected_total == 1

    def test_peers_have_independent_buckets(self):
        limiter = PeerRateLimiter(rate_per_s=1.0, burst=1, clock=FakeClock())
        assert limiter.check("a")[0] is True
        assert limiter.check("b")[0] is True
        assert limiter.check("a")[0] is False

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        limiter = PeerRateLimiter(rate_per_s=100.0, burst=2, clock=clock)
        limiter.check("a")
        clock.now += 1000.0  # refill far past the cap
        assert limiter.check("a")[0] is True
        assert limiter.check("a")[0] is True
        assert limiter.check("a")[0] is False

    def test_lru_eviction_bounds_the_bucket_map(self):
        limiter = PeerRateLimiter(rate_per_s=1.0, burst=1, max_peers=2,
                                  clock=FakeClock())
        for peer in ("a", "b", "c", "d"):
            limiter.check(peer)
        assert limiter.status()["peers"] == 2
        assert limiter.evicted_total == 2

    def test_disabled_always_admits(self):
        limiter = PeerRateLimiter(rate_per_s=0.0, burst=1, clock=FakeClock())
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.check("a") == (True, 0.0)


# -- deadline-aware admission -----------------------------------------------------------


class TestAdmissionShedding:
    def test_ewma_tracks_service_times(self):
        controller = AdmissionController(limit=8)
        controller.note_service_time(10.0)
        assert controller.service_time_ewma_s == 10.0
        controller.note_service_time(20.0)
        assert controller.service_time_ewma_s == pytest.approx(11.5)
        controller.note_service_time(-1.0)  # ignored
        assert controller.service_time_ewma_s == pytest.approx(11.5)

    def test_no_shedding_before_first_sample(self):
        controller = AdmissionController(limit=8)
        controller.in_system = 6
        assert controller.projected_wait_s(1) == 0.0
        admitted, reason, _ = controller.admit(0.001, 1)
        assert admitted and reason == "ok"

    def test_projected_wait_math(self):
        controller = AdmissionController(limit=100)
        controller.note_service_time(10.0)
        controller.in_system = 5
        # 4 queued ahead of the single worker, 10s each.
        assert controller.projected_wait_s(1) == pytest.approx(40.0)
        # Two workers halve the wait: 3 queued ahead / (2 per 10s).
        assert controller.projected_wait_s(2) == pytest.approx(15.0)
        controller.in_system = 1
        assert controller.projected_wait_s(2) == 0.0

    def test_deadline_shed_is_early_and_counted(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(limit=100, metrics=metrics)
        controller.note_service_time(10.0)
        controller.in_system = 5
        admitted, reason, retry = controller.admit(5.0, 1)
        assert not admitted and reason == "deadline"
        assert retry == pytest.approx(35.0)  # projected 40 - deadline 5
        assert controller.shed == 1 and controller.rejected == 1
        assert controller.in_system == 5  # a shed request never held a slot
        counters = metrics.to_dict()["counters"]
        assert counters["svc.admission.shed"] == 1
        assert counters["svc.admission.rejected"] == 1

    def test_queue_full_still_wins_over_deadline(self):
        controller = AdmissionController(limit=3)
        controller.note_service_time(10.0)
        controller.in_system = 3
        admitted, reason, retry = controller.admit(5.0, 1)
        assert not admitted and reason == "queue_full"
        assert retry >= 1.0
        assert controller.shed == 0

    def test_generous_deadline_admits(self):
        controller = AdmissionController(limit=100)
        controller.note_service_time(0.01)
        controller.in_system = 3
        admitted, reason, _ = controller.admit(60.0, 1)
        assert admitted and reason == "ok"
        assert controller.in_system == 4

    def test_try_acquire_back_compat(self):
        controller = AdmissionController(limit=1)
        assert controller.try_acquire() is True
        assert controller.try_acquire() is False
        controller.release()
        assert controller.try_acquire() is True

    def test_deadline_shed_over_http_with_observability(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            # Prime the controller as if a long backlog of slow cells
            # were in the system: the next request projects a queue wait
            # far past its 2s deadline and must be shed *now*.
            service.admission.note_service_time(100.0)
            service.admission.in_system = 10
            try:
                status, headers, payload = await fetch(
                    port, "POST", "/v1/cells", INSTANT_SPEC
                )
            finally:
                service.admission.in_system = 0
            assert status == 429
            assert "shed early" in payload["error"]
            assert int(headers["retry-after"]) >= 1
            counters = service.metrics.to_dict()["counters"]
            assert counters.get('svc.overload.shed{reason="deadline"}') == 1
            # The shed decision carries the request's correlation ID in
            # both the event stream and (tracing on) a span.
            events = await service.events_since(0, timeout_s=0.1)
            shed_events = [e for e in events if e["type"] == "shed"]
            assert shed_events and shed_events[0]["reason"] == "deadline"
            assert shed_events[0]["corr_id"] == headers["x-correlation-id"]
            spans = service.tracer.chrome_trace()["traceEvents"]
            shed_spans = [s for s in spans
                          if s.get("name") == "overload.shed"]
            assert shed_spans
            assert shed_spans[0]["args"]["corr_id"] == \
                headers["x-correlation-id"]
            assert shed_spans[0]["args"]["reason"] == "deadline"

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1,
                  request_timeout_s=2.0, trace=True)


# -- /v1/events under a slow or resumed consumer ----------------------------------------


class RecordingTransport(asyncio.WriteTransport):
    def __init__(self):
        super().__init__()
        self.aborted = False
        self.buffer_limits = None

    def set_write_buffer_limits(self, high=None, low=None):
        self.buffer_limits = (high, low)

    def abort(self):
        self.aborted = True


class FakeStreamWriter:
    """Just enough of StreamWriter for ``_stream_events``: captures
    written bytes; ``drain`` either returns or stalls forever."""

    def __init__(self, stall=False):
        self.transport = RecordingTransport()
        self.chunks = []
        self.stall = stall

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        if self.stall:
            await asyncio.Event().wait()  # a consumer that never reads

    def payload(self):
        return b"".join(self.chunks)


def events_server(tmp_path, limits=None, event_buffer=1024):
    config = ServiceConfig(store_dir=str(tmp_path / "store"),
                           event_buffer=event_buffer)
    service = SimulationService(config)
    return service, ServiceServer(service, port=0, limits=limits)


class TestEventStreamBounds:
    def test_stalled_consumer_is_aborted_not_buffered(self, tmp_path):
        service, server = events_server(
            tmp_path,
            limits=ProtocolLimits(events_drain_timeout_s=0.2,
                                  events_buffer_bytes=2048),
        )
        service._publish({"type": "test"})
        writer = FakeStreamWriter(stall=True)

        async def main():
            await asyncio.wait_for(
                server._stream_events(writer, "/v1/events"), 10.0
            )

        asyncio.run(main())
        assert writer.transport.aborted
        # The write buffer was bounded before anything was streamed.
        assert writer.transport.buffer_limits == (2048, None)
        counters = service.metrics.to_dict()["counters"]
        assert counters["svc.events.stalled"] == 1

    def test_ring_overflow_surfaces_an_explicit_gap(self, tmp_path):
        service, server = events_server(tmp_path, event_buffer=4)
        for index in range(10):  # seqs 1..10; ring keeps 7..10
            service._publish({"type": "test", "index": index})
        service.draining = True  # let the stream end after one batch
        writer = FakeStreamWriter()

        async def main():
            await asyncio.wait_for(
                server._stream_events(writer, "/v1/events?since=2"), 10.0
            )

        asyncio.run(main())
        lines = [json.loads(chunk.split(b"\r\n", 1)[1][:-2])
                 for chunk in writer.chunks[1:] if chunk != b"0\r\n\r\n"]
        assert lines[0] == {"missed": 4, "type": "gap"}  # seqs 3..6 lost
        assert [line["seq"] for line in lines[1:]] == [7, 8, 9, 10]
        counters = service.metrics.to_dict()["counters"]
        assert counters["svc.events.gaps"] == 4

    def test_fresh_consumer_sees_no_spurious_gap(self, tmp_path):
        service, server = events_server(tmp_path, event_buffer=4)
        for index in range(10):
            service._publish({"type": "test", "index": index})
        service.draining = True
        writer = FakeStreamWriter()

        async def main():
            await server._stream_events(writer, "/v1/events")

        asyncio.run(main())
        payload = writer.payload()
        assert b'"gap"' not in payload  # since=0: nothing was promised
        counters = service.metrics.to_dict()["counters"]
        assert "svc.events.gaps" not in counters

"""repro.svc units: store, breaker, admission, single-flight, service.

The chaos suite (``tests/test_svc_chaos.py``) attacks the crash windows;
this file pins the normal-operation semantics each component promises:
store hits are bit-identical and O(1), the breaker's state machine
follows closed → open → half-open → closed, admission rejects above the
limit, single-flight computes once for N concurrent waiters, and the
service composes them in the documented order.
"""

import asyncio
import json
import os

import pytest

from repro.obs import MetricsRegistry
from repro.runner import Cell
from repro.runner.execute import CELL_KINDS
from repro.svc import (
    AdmissionController,
    CircuitBreaker,
    CLOSED,
    HALF_OPEN,
    OPEN,
    Overloaded,
    RequestTimedOut,
    ResultStore,
    ServiceConfig,
    SimulationService,
    SingleFlight,
    SpecError,
    cell_from_spec,
)

from tests.test_runner import (
    FakeClock,
    _kind_always_crash,
    _kind_always_fail,
    _kind_instant,
    _kind_sleep,
    kind_cell,
    test_kinds,  # noqa: F401 — fixture re-export
)


def ok_record(config_hash, digest="digest-1", **extra):
    record = {
        "kind": "cell", "hash": config_hash, "cell_id": "t/p/d1/cscan",
        "status": "ok", "digest": digest, "wall_s": 0.01,
        "result": {"elapsed_ms": 1.5},
    }
    record.update(extra)
    return record


# -- ResultStore ------------------------------------------------------------------------


class TestResultStore:
    def test_miss_then_put_then_bit_identical_hit(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert store.get("h1") is None
        record = ok_record("h1")
        assert store.put("h1", record) is True
        got = store.get("h1")
        assert got == record
        assert store.hits == 1 and store.misses == 1
        assert store.hit_ratio == 0.5
        # The result is the atomically written file, sharded by prefix.
        assert os.path.exists(str(tmp_path / "store" / "h1"[:2] / "h1.json"))

    def test_reopen_recovers_residency_from_log_and_files(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.put("aaaa", ok_record("aaaa", digest="d-a"))
        store.put("bbbb", ok_record("bbbb", digest="d-b"))
        store.close()
        reopened = ResultStore(root)
        assert len(reopened) == 2
        assert "aaaa" in reopened and "bbbb" in reopened
        assert reopened.get("aaaa") == ok_record("aaaa", digest="d-a")

    def test_put_is_idempotent_for_identical_digest(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        record = ok_record("h1")
        assert store.put("h1", record) is True
        assert store.put("h1", dict(record)) is False
        assert store.writes == 1 and store.put_dedup == 1
        # Only one put entry ever hits the log: no duplicate computation
        # is recorded.
        puts = [e for e in store.read_log() if e["op"] == "put"]
        assert len(puts) == 1

    def test_rejects_failure_records_and_hash_mismatch(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ValueError, match="storable"):
            store.put("h1", {"hash": "h1", "status": "failed"})
        with pytest.raises(ValueError, match="!="):
            store.put("h1", ok_record("other"))

    def test_torn_result_file_is_quarantined_into_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("h1", ok_record("h1"))
        path = store.path_for("h1")
        with open(path, "w") as handle:
            handle.write('{"hash": "h1", "status": "ok", "dig')
        assert store.get("h1") is None
        assert store.corrupt == 1
        assert not os.path.exists(path)  # quarantined, will recompute

    def test_wrong_hash_inside_file_is_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("h1", ok_record("h1"))
        with open(store.path_for("h1"), "w") as handle:
            json.dump(ok_record("h2"), handle)
        assert store.get("h1") is None
        assert store.corrupt == 1

    def test_lru_eviction_bounds_residency(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"), max_entries=2)
        store.put("h1", ok_record("h1"))
        store.put("h2", ok_record("h2"))
        store.get("h1")  # refresh h1: h2 becomes the LRU victim
        store.put("h3", ok_record("h3"))
        assert store.evictions == 1
        assert "h2" not in store
        assert store.get("h2") is None
        assert store.get("h1") is not None and store.get("h3") is not None
        assert not os.path.exists(store.path_for("h2"))
        evicts = [e for e in store.read_log() if e["op"] == "evict"]
        assert [e["hash"] for e in evicts] == ["h2"]

    def test_recency_survives_reopen_via_touch_entries(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root, max_entries=2)
        store.put("h1", ok_record("h1"))
        store.put("h2", ok_record("h2"))
        store.get("h1")
        store.close()
        reopened = ResultStore(root, max_entries=2)
        reopened.put("h3", ok_record("h3"))
        assert "h1" in reopened and "h2" not in reopened

    def test_malformed_log_lines_are_skipped_and_counted(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.put("h1", ok_record("h1"))
        store.close()
        with open(os.path.join(root, "store.log.jsonl"), "a") as handle:
            handle.write('{"op": "put", "hash": "h2", "dig\n')
        reopened = ResultStore(root)
        assert reopened.skipped_log_lines == 1
        assert len(reopened) == 1

    def test_stale_tmp_files_swept_from_root_and_shards(self, tmp_path):
        root = tmp_path / "store"
        shard = root / "ab"
        shard.mkdir(parents=True)
        (root / ".x.json.1.tmp").write_text("{")
        (shard / ".abcd.json.2.tmp").write_text("{")
        store = ResultStore(str(root))
        assert store.swept_tmp == 2
        assert not (root / ".x.json.1.tmp").exists()
        assert not (shard / ".abcd.json.2.tmp").exists()

    def test_counters_mirror_into_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(str(tmp_path / "store"), metrics=metrics)
        store.get("h1")
        store.put("h1", ok_record("h1"))
        store.get("h1")
        counters = metrics.to_dict()["counters"]
        assert counters["svc.store.misses"] == 1
        assert counters["svc.store.writes"] == 1
        assert counters["svc.store.hits"] == 1


# -- CircuitBreaker ---------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout_s", 30.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_trips_after_consecutive_failures_only(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_probe_after_cooldown_then_close_on_success(self):
        clock = FakeClock(now=0.0)
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(29.9)
        assert not breaker.allow()
        assert breaker.retry_after_s == pytest.approx(0.1)
        clock.advance(0.1)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # second request: probe slot taken
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_for_full_cooldown(self):
        clock = FakeClock(now=0.0)
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_stale_probe_unblocks_after_another_cooldown(self):
        clock = FakeClock(now=0.0)
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()  # probe claimed, outcome never reported
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()  # a new probe may go

    def test_metrics_record_transitions_and_state(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock, metrics=metrics)
        breaker.record_failure()
        assert metrics.to_dict()["gauges"]["svc.breaker.state"]["value"] == 2.0
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        counters = metrics.to_dict()["counters"]
        assert counters["svc.breaker.to_open"] == 1
        assert counters["svc.breaker.to_half_open"] == 1
        assert counters["svc.breaker.to_closed"] == 1


# -- AdmissionController ----------------------------------------------------------------


class TestAdmission:
    def test_rejects_above_limit_until_release(self):
        admission = AdmissionController(limit=2)
        assert admission.try_acquire() and admission.try_acquire()
        assert not admission.try_acquire()
        assert admission.rejected == 1
        admission.release()
        assert admission.try_acquire()
        assert admission.status()["in_system"] == 2

    def test_release_never_goes_negative(self):
        admission = AdmissionController(limit=1)
        admission.release()
        assert admission.in_system == 0
        assert admission.available == 1

    def test_limit_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            AdmissionController(limit=0)


# -- SingleFlight -----------------------------------------------------------------------


class TestSingleFlight:
    def test_one_leader_many_followers_one_result(self):
        async def scenario():
            flights = SingleFlight()
            f1, lead1 = flights.join("k")
            f2, lead2 = flights.join("k")
            assert lead1 and not lead2
            assert f1 is f2
            assert flights.resolve("k", {"answer": 42}) is True
            assert await f1 == {"answer": 42}
            assert "k" not in flights

        asyncio.run(scenario())

    def test_last_leaver_drops_the_flight(self):
        async def scenario():
            flights = SingleFlight()
            flights.join("k")
            flights.join("k")
            assert flights.leave("k") == 1  # one waiter remains
            assert "k" in flights
            assert flights.leave("k") == 0  # last leaver: flight dropped
            assert "k" not in flights
            # A late resolve is benign (the cancelled-then-completed race).
            assert flights.resolve("k", {}) is False

        asyncio.run(scenario())


# -- spec validation --------------------------------------------------------------------


class TestCellFromSpec:
    def test_minimal_spec_builds_a_cell(self):
        cell = cell_from_spec({"trace": "ld", "policy": "demand", "disks": 2})
        assert isinstance(cell, Cell)
        assert cell.cell_id == "ld/demand/d2/cscan"

    def test_int_scale_coerces_to_float(self):
        cell = cell_from_spec(
            {"trace": "ld", "policy": "demand", "disks": 1, "scale": 1}
        )
        assert cell.scale == 1.0

    @pytest.mark.parametrize("spec,message", [
        ("nope", "must be a JSON object"),
        ({"trace": "ld"}, "missing required"),
        ({"trace": "ld", "policy": "demand", "disks": 1, "bogus": 1},
         "unknown cell field"),
        ({"trace": "ld", "policy": "demand", "disks": "two"},
         "must be int"),
        ({"trace": "ld", "policy": "demand", "disks": True},
         "must be int"),
        ({"trace": "nope", "policy": "demand", "disks": 1},
         "unknown trace"),
        ({"trace": "ld", "policy": "nope", "disks": 1},
         "unknown policy"),
    ])
    def test_bad_specs_raise_spec_error(self, spec, message):
        with pytest.raises(SpecError, match=message):
            cell_from_spec(spec)


# -- SimulationService ------------------------------------------------------------------


def service_config(tmp_path, **kwargs):
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("request_timeout_s", 60.0)
    return ServiceConfig(**kwargs)


def run_service(tmp_path, scenario, **config_kwargs):
    """Start a service, run the async scenario, always drain."""
    async def main():
        service = SimulationService(service_config(tmp_path, **config_kwargs))
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.drain("signal")

    return asyncio.run(main())


class TestSimulationService:
    def test_compute_then_store_hit_bit_identical(self, test_kinds, tmp_path):
        async def scenario(service):
            cell = kind_cell("instant", n=7)
            first, served1 = await service.run_cell(cell)
            second, served2 = await service.run_cell(cell)
            assert served1 == "computed" and served2 == "store"
            assert first == second  # byte-for-byte the same record
            assert first["digest"] == "digest-7"
            assert service.store.writes == 1

        run_service(tmp_path, scenario)

    def test_concurrent_identical_requests_coalesce(self, test_kinds, tmp_path):
        async def scenario(service):
            cell = kind_cell("sleep", sleep_s=0.3)
            results = await asyncio.gather(
                service.run_cell(cell), service.run_cell(cell),
                service.run_cell(cell),
            )
            served = sorted(s for _, s in results)
            assert served == ["coalesced", "coalesced", "computed"]
            records = [r for r, _ in results]
            assert records[0] == records[1] == records[2]
            # One computation, one store write, one admission slot.
            assert service.pool.counters["dispatched"] == 1
            assert service.store.writes == 1
            assert service.admission.admitted == 1

        run_service(tmp_path, scenario)

    def test_deterministic_failure_served_not_stored_not_breaking(
            self, test_kinds, tmp_path):
        async def scenario(service):
            record, served = await service.run_cell(kind_cell("always-fail"))
            assert served == "computed"
            assert record["status"] == "failed"
            assert record["failure"] == "exception"
            # Not cached: a failure is not a result.
            assert len(service.store) == 0
            # And not a breaker strike: the worker executed correctly.
            assert service.breaker.state == CLOSED
            assert service.breaker.consecutive_failures == 0

        run_service(tmp_path, scenario)

    def test_crashes_trip_the_breaker_and_reject_503(self, test_kinds, tmp_path):
        async def scenario(service):
            for n in range(2):
                record, _ = await service.run_cell(
                    kind_cell("always-crash", n=n)
                )
                assert record["failure"] == "crash"
            assert service.breaker.state == OPEN
            with pytest.raises(Overloaded) as exc_info:
                await service.run_cell(kind_cell("instant", n=1))
            assert exc_info.value.status == 503
            assert exc_info.value.retry_after_s > 0
            # The rejected cell never reached the pool.
            assert service.pool.counters["dispatched"] == 2 * 2  # 1 + retry

        run_service(tmp_path, scenario, breaker_failures=2, max_retries=1,
                    retry_backoff_s=0.05)

    def test_admission_rejects_429_beyond_queue_limit(self, test_kinds, tmp_path):
        async def scenario(service):
            slow = [kind_cell("sleep", sleep_s=0.5, n=n) for n in range(2)]
            tasks = [asyncio.ensure_future(service.run_cell(c)) for c in slow]
            await asyncio.sleep(0.05)  # both admitted (limit 2, jobs 1)
            with pytest.raises(Overloaded) as exc_info:
                await service.run_cell(kind_cell("instant", n=9))
            assert exc_info.value.status == 429
            for record, _ in await asyncio.gather(*tasks):
                assert record["status"] == "ok"
            # Slots released on completion: the same request now admits.
            record, _ = await service.run_cell(kind_cell("instant", n=9))
            assert record["status"] == "ok"

        run_service(tmp_path, scenario, queue_limit=2)

    def test_request_timeout_cancels_pool_work(self, test_kinds, tmp_path):
        async def scenario(service):
            stuck = kind_cell("sleep", sleep_s=60.0)
            with pytest.raises(RequestTimedOut):
                await service.run_cell(stuck)
            # The flight is gone and the pool was told to cancel.
            assert stuck.config_hash not in service.flights
            deadline = asyncio.get_event_loop().time() + 30.0
            while service.admission.in_system > 0:
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert service.pool.counters["cancelled"] == 1
            # The worker was respawned: new work completes fine.
            record, _ = await service.run_cell(kind_cell("instant", n=3))
            assert record["status"] == "ok"

        run_service(tmp_path, scenario, request_timeout_s=0.3)

    def test_one_timed_out_waiter_does_not_sink_the_others(
            self, test_kinds, tmp_path):
        async def scenario(service):
            cell = kind_cell("sleep", sleep_s=0.5)

            async def impatient():
                return await service.run_cell(cell, timeout_s=0.1)

            async def patient():
                await asyncio.sleep(0.02)  # join as a follower
                return await service.run_cell(cell)

            results = await asyncio.gather(
                impatient(), patient(), return_exceptions=True
            )
            assert isinstance(results[0], RequestTimedOut)
            record, served = results[1]
            assert record["status"] == "ok"
            # The patient waiter kept the flight alive: no cancellation.
            assert service.pool.counters["cancelled"] == 0

        run_service(tmp_path, scenario)

    def test_draining_rejects_new_requests(self, test_kinds, tmp_path):
        async def scenario(service):
            service.draining = True
            with pytest.raises(Overloaded) as exc_info:
                await service.run_cell(kind_cell("instant", n=1))
            assert exc_info.value.status == 503

        run_service(tmp_path, scenario)

    def test_run_cells_bundle_mixes_hits_and_computes(self, test_kinds, tmp_path):
        async def scenario(service):
            warm = kind_cell("instant", n=1)
            await service.run_cell(warm)
            results = await service.run_cells(
                [warm, kind_cell("instant", n=2)]
            )
            assert [served for _, served in results] == ["store", "computed"]
            events = await service.events_since(0, timeout_s=0.1)
            assert any(e["type"] == "record" for e in events)

        run_service(tmp_path, scenario)

    def test_drain_returns_resumable_exit_codes(self, test_kinds, tmp_path):
        async def main():
            service = SimulationService(service_config(tmp_path))
            await service.start()
            assert await service.drain("deadline") == 76
            # Drain is idempotent.
            assert await service.drain("deadline") == 76

        asyncio.run(main())

    def test_status_surfaces_all_components(self, test_kinds, tmp_path):
        async def scenario(service):
            await service.run_cell(kind_cell("instant", n=1))
            status = service.status()
            assert status["breaker"]["state"] == CLOSED
            assert status["admission"]["limit"] == service.admission.limit
            assert status["store"]["writes"] == 1
            assert status["pool"]["counters"]["ok"] == 1
            assert status["requests"]["svc.served_computed"] == 1

        run_service(tmp_path, scenario)


class TestEventPublishTaskRefs:
    """Regression: `_publish` used to fire-and-forget its notify task.

    The event loop keeps only weak references to tasks, so an
    unreferenced `ensure_future(_notify(cond))` could be garbage
    collected before waking streaming readers (simlint SL012 caught
    this).  The service must hold a strong reference until the task
    completes, then drop it.
    """

    def test_publish_holds_strong_reference_until_notify_runs(self, tmp_path):
        async def scenario(service):
            before = len(service._events)
            service._publish({"type": "probe"})
            # The notify task is pinned while pending ...
            assert service._notify_tasks
            for _ in range(10):
                if not service._notify_tasks:
                    break
                await asyncio.sleep(0)
            # ... and released once done (no unbounded growth).
            assert not service._notify_tasks
            events = await service.events_since(before, timeout_s=0.1)
            assert any(e["type"] == "probe" for e in events)

        run_service(tmp_path, scenario)

    def test_waiter_is_woken_by_publish(self, tmp_path):
        async def scenario(service):
            seq = service._event_seq

            async def waiter():
                return await service.events_since(seq, timeout_s=5.0)

            task = asyncio.create_task(waiter())
            await asyncio.sleep(0)  # park the waiter on the condition
            service._publish({"type": "wake"})
            events = await asyncio.wait_for(task, 5.0)
            assert any(e["type"] == "wake" for e in events)

        run_service(tmp_path, scenario)

"""Simulation engine: timing, accounting, and decision-point plumbing."""

import pytest

from repro.core import PrefetchPolicy, SimConfig, Simulator
from repro.core.policy import PrefetchPolicy as BasePolicy
from tests.conftest import make_trace, run, simple_config


class TestAccountingIdentity:
    def test_demand_single_miss_exact_times(self):
        # miss: 0.5ms driver, fetch 10ms (starts at issue), stall 9.5ms,
        # then 1ms compute.
        result = run([0], policy="demand")
        assert result.driver_ms == pytest.approx(0.5)
        assert result.stall_ms == pytest.approx(9.5)
        assert result.compute_ms == pytest.approx(1.0)
        assert result.elapsed_ms == pytest.approx(11.0)

    def test_three_reference_demand_sequence(self):
        result = run([0, 1, 0])
        # two misses (block 0 cached by the third reference)
        assert result.fetches == 2
        assert result.elapsed_ms == pytest.approx(23.0)
        assert result.stall_ms == pytest.approx(19.0)

    def test_identity_holds_for_every_policy(self):
        blocks = [0, 1, 2, 3, 1, 2, 4, 5, 0, 1] * 5
        for policy in ("demand", "fixed-horizon", "aggressive",
                       "reverse-aggressive", "forestall"):
            result = run(blocks, policy=policy, cache_blocks=4, num_disks=2)
            # check_accounting already ran inside run(); re-verify here.
            total = result.compute_ms + result.driver_ms + result.stall_ms
            assert result.elapsed_ms == pytest.approx(total, abs=1e-6)

    def test_cache_hits_cost_only_compute(self):
        result = run([0, 0, 0, 0])
        assert result.fetches == 1
        assert result.compute_ms == pytest.approx(4.0)
        assert result.elapsed_ms == pytest.approx(0.5 + 10.0 - 0.5 + 4.0)


class TestDriverOverhead:
    def test_driver_time_is_fetches_times_overhead(self):
        """The appendix tables all satisfy driver = fetches x 0.5 ms."""
        result = run([0, 1, 2, 3, 4], cache_blocks=8)
        assert result.driver_ms == pytest.approx(result.fetches * 0.5)

    def test_custom_overhead(self):
        config = simple_config(cache_blocks=8).with_(driver_overhead_ms=2.0)
        result = run([0, 1, 2], config=config)
        assert result.driver_ms == pytest.approx(result.fetches * 2.0)

    def test_zero_overhead(self):
        config = simple_config(cache_blocks=8).with_(driver_overhead_ms=0.0)
        result = run([0, 1], config=config)
        assert result.driver_ms == 0.0


class TestParallelism:
    def test_two_disks_overlap_demand_fetches_do_not(self):
        # Demand fetching is serial regardless of disks.
        one = run([0, 1, 2, 3], num_disks=1, cache_blocks=8)
        two = run([0, 1, 2, 3], num_disks=2, cache_blocks=8)
        assert two.elapsed_ms == pytest.approx(one.elapsed_ms)

    def test_prefetching_exploits_second_disk(self):
        # Blocks alternate disks under striping; aggressive overlaps fetches.
        blocks = list(range(12))
        one = run(blocks, policy="aggressive", num_disks=1, cache_blocks=6)
        two = run(blocks, policy="aggressive", num_disks=2, cache_blocks=6)
        assert two.elapsed_ms < one.elapsed_ms

    def test_same_disk_fetches_serialize(self):
        # All blocks on disk 0 of a 2-disk array: no overlap possible.
        blocks = [0, 2, 4, 6, 8, 10]
        result = run(blocks, policy="aggressive", num_disks=2, cache_blocks=8)
        # First fetch stalls ~10ms; later ones partially overlap compute only.
        assert result.stall_ms > 8.0 * len(blocks) - 10.0 - 6.0


class TestEngineRobustness:
    def test_broken_policy_detected(self):
        class Broken(BasePolicy):
            name = "broken"

            def on_miss(self, cursor, now):
                pass  # refuses to fetch

        trace = make_trace([0, 1])
        sim = Simulator(trace, Broken(), 1, simple_config())
        with pytest.raises(RuntimeError, match="left block"):
            sim.run()

    def test_unknown_disk_model_rejected(self):
        trace = make_trace([0])
        with pytest.raises(ValueError, match="unknown disk model"):
            Simulator(
                trace, BasePolicy(), 1, SimConfig(disk_model="quantum")
            ).run()

    def test_empty_trace_completes_instantly(self):
        result = run([])
        assert result.elapsed_ms == 0.0
        assert result.fetches == 0

    def test_references_counted(self):
        result = run([0, 1, 0, 1])
        assert result.references == 4


class TestCpuSpeedup:
    def test_double_speed_halves_compute(self):
        base = run([0, 0, 0, 0])
        config = simple_config().with_(cpu_speedup=2.0)
        fast = run([0, 0, 0, 0], config=config)
        assert fast.compute_ms == pytest.approx(base.compute_ms / 2)

    def test_double_speed_cpu_increases_io_dependence(self):
        """Section 4.4: faster processors are more dependent on I/O."""
        blocks = list(range(40))
        base = run(blocks, policy="fixed-horizon", cache_blocks=50,
                   compute_ms=12.0)
        config = simple_config(cache_blocks=50).with_(cpu_speedup=2.0)
        fast = run(blocks, policy="fixed-horizon", cache_blocks=50,
                   compute_ms=12.0, config=config)
        assert fast.stall_ms >= base.stall_ms
        assert fast.elapsed_ms < base.elapsed_ms


class TestUtilization:
    def test_idle_array_zero_utilization(self):
        result = run([0, 0, 0, 0, 0])
        assert 0.0 < result.disk_utilization < 1.0

    def test_per_disk_busy_recorded(self):
        result = run([0, 1, 2, 3], num_disks=2, cache_blocks=8)
        assert len(result.per_disk_busy_ms) == 2
        assert sum(result.per_disk_busy_ms) > 0

    def test_io_bound_single_disk_near_saturation(self):
        blocks = list(range(50))
        result = run(blocks, policy="aggressive", num_disks=1,
                     cache_blocks=10, compute_ms=0.5)
        assert result.disk_utilization > 0.9

"""Parameter recommendation and search."""

import pytest

from repro.analysis.tuning import (
    RANDOM_ACCESS_MS,
    SEQUENTIAL_ACCESS_MS,
    expected_access_ms,
    missing_run_length,
    recommend_batch_size,
    recommend_horizon,
    search_parameter,
)
from repro.trace import Trace, build as build_workload


class TestExpectedAccess:
    def test_sequential_trace_fast(self):
        assert expected_access_ms(list(range(200))) == pytest.approx(
            SEQUENTIAL_ACCESS_MS
        )

    def test_random_trace_slow(self):
        import random

        rng = random.Random(0)
        blocks = [rng.randrange(10_000) for _ in range(200)]
        assert expected_access_ms(blocks) == pytest.approx(
            RANDOM_ACCESS_MS, rel=0.05
        )

    def test_interpolates(self):
        half = list(range(100)) + [7] * 100
        value = expected_access_ms(half)
        assert SEQUENTIAL_ACCESS_MS < value < RANDOM_ACCESS_MS


class TestRecommendHorizon:
    def test_paper_constants_recover_62ish(self):
        """A random-access trace with the paper's 243 µs cache-read time
        should recommend a horizon near the paper's 62."""
        import random

        rng = random.Random(1)
        blocks = [rng.randrange(5000) for _ in range(2000)]
        trace = Trace("r", blocks, [2.0] * len(blocks))
        horizon = recommend_horizon(trace)
        assert 50 <= horizon <= 70

    def test_capped_below_working_set(self):
        trace = Trace("tiny", [0, 1, 2, 0, 1, 2], [1.0] * 6)
        assert recommend_horizon(trace) < trace.distinct_blocks

    def test_at_least_two(self):
        trace = Trace("one", [0, 0], [100.0, 100.0])
        assert recommend_horizon(trace) >= 2


class TestMissingRunLength:
    def test_fully_cacheable_no_runs_after_cold(self):
        blocks = [0, 1, 2] * 5
        # cache 3: only the 3 cold misses, one run of 3
        assert missing_run_length(blocks, 3) == 3.0

    def test_loop_one_over_cache_runs_forever(self):
        blocks = [0, 1, 2] * 5
        # cache 2: everything misses -> one run of 15
        assert missing_run_length(blocks, 2) == 15.0

    def test_alternating_hits_and_misses(self):
        # hot block 9 interleaved with cold singles: runs of length 1
        blocks = []
        for i in range(10):
            blocks.extend([9, 100 + i])
        value = missing_run_length(blocks, 4)
        assert 1.0 <= value <= 2.0

    def test_empty(self):
        assert missing_run_length([], 4) == 0.0


class TestRecommendBatch:
    def test_single_disk_gets_bigger_batches_than_big_array(self):
        trace = build_workload("cscope2", scale=0.15)
        one = recommend_batch_size(trace, 1, cache_blocks=192)
        eight = recommend_batch_size(trace, 8, cache_blocks=192)
        assert one >= eight

    def test_bounds_respected(self):
        trace = build_workload("ld", scale=0.1)
        value = recommend_batch_size(trace, 1, cache_blocks=128,
                                     floor=4, ceiling=32)
        assert 4 <= value <= 32

    def test_fully_cached_trace_gets_floor(self):
        trace = Trace("hot", [0, 1] * 20, [1.0] * 40)
        assert recommend_batch_size(trace, 2, cache_blocks=8) == 4


class TestSearchParameter:
    def test_finds_minimum_on_ladder(self):
        best, score, scores = search_parameter(
            lambda x: (x - 40) ** 2, [4, 16, 40, 80], refine=False
        )
        assert best == 40
        assert score == 0

    def test_refinement_probes_midpoints(self):
        # true optimum 28 sits between rungs 16 and 40
        best, _score, scores = search_parameter(
            lambda x: (x - 28) ** 2, [4, 16, 40, 80]
        )
        assert best == 28  # (16+40)//2
        assert 28 in scores

    def test_monotone_function_picks_edge(self):
        best, _s, _all = search_parameter(lambda x: x, [2, 8, 32])
        assert best == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            search_parameter(lambda x: x, [])

    def test_evaluation_count_bounded(self):
        calls = []

        def evaluate(x):
            calls.append(x)
            return abs(x - 10)

        search_parameter(evaluate, [4, 8, 16, 32])
        assert len(calls) <= 6  # ladder + two probes

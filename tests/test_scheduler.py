"""FCFS and CSCAN request queues."""

import random

import pytest

from repro.disk.scheduler import (
    CSCANQueue,
    FCFSQueue,
    Request,
    SSTFQueue,
    make_queue,
)


def req(lbn, seq):
    return Request(lbn=lbn, block=lbn, seq=seq)


class TestFCFS:
    def test_pops_in_arrival_order(self):
        q = FCFSQueue()
        for i, lbn in enumerate([30, 10, 20]):
            q.push(req(lbn, i))
        assert [q.pop(0).lbn for _ in range(3)] == [30, 10, 20]

    def test_empty_pop_returns_none(self):
        assert FCFSQueue().pop(0) is None

    def test_len(self):
        q = FCFSQueue()
        q.push(req(1, 1))
        q.push(req(2, 2))
        assert len(q) == 2
        q.pop(0)
        assert len(q) == 1

    def test_head_position_ignored(self):
        q = FCFSQueue()
        q.push(req(100, 1))
        q.push(req(1, 2))
        assert q.pop(50).lbn == 100

    def test_deep_burst_preserves_arrival_order(self):
        """Regression for the list-backed ``pop(0)`` queue: a deep demand
        burst must drain in exact arrival order, interleaved pushes and
        pops included — the deque rewrite changed complexity, not order."""
        rng = random.Random(7)
        q = FCFSQueue()
        expected, popped, seq = [], [], 0
        for _ in range(2000):
            if q and rng.random() < 0.4:
                popped.append(q.pop(rng.randrange(100)).seq)
            else:
                q.push(req(rng.randrange(1000), seq))
                expected.append(seq)
                seq += 1
        while q:
            popped.append(q.pop(0).seq)
        assert popped == expected

    def test_iteration_matches_arrival_order(self):
        q = FCFSQueue()
        for i, lbn in enumerate([7, 3, 9]):
            q.push(req(lbn, i))
        assert [r.lbn for r in q] == [7, 3, 9]


class TestCSCAN:
    def test_serves_ascending_from_head(self):
        q = CSCANQueue()
        for i, lbn in enumerate([50, 10, 30, 70]):
            q.push(req(lbn, i))
        assert q.pop(25).lbn == 30
        assert q.pop(30).lbn == 50
        assert q.pop(50).lbn == 70

    def test_wraps_to_lowest(self):
        q = CSCANQueue()
        q.push(req(10, 1))
        q.push(req(20, 2))
        assert q.pop(90).lbn == 10  # nothing past 90: wrap
        assert q.pop(10).lbn == 20

    def test_single_direction_sweep(self):
        """CSCAN never reverses: from the head position it always picks the
        next request in the upward direction (unlike SCAN/elevator)."""
        q = CSCANQueue()
        for i, lbn in enumerate([40, 60]):
            q.push(req(lbn, i))
        assert q.pop(50).lbn == 60  # up first...
        assert q.pop(60).lbn == 40  # ...then wrap, not reverse

    def test_equal_cylinder_ties_broken_by_arrival(self):
        q = CSCANQueue(cylinder_of=lambda lbn: 0)
        q.push(req(5, 1))
        q.push(req(3, 2))
        # same cylinder: falls back to (lbn, seq) ordering
        assert q.pop(0).lbn == 3

    def test_custom_cylinder_mapping(self):
        # Map LBN to cylinder by hundreds.
        q = CSCANQueue(cylinder_of=lambda lbn: lbn // 100)
        for i, lbn in enumerate([250, 150, 350]):
            q.push(req(lbn, i))
        assert q.pop(2).lbn == 250
        assert q.pop(2).lbn == 350
        assert q.pop(3).lbn == 150

    def test_iteration_is_sorted(self):
        q = CSCANQueue()
        for i, lbn in enumerate([9, 1, 5]):
            q.push(req(lbn, i))
        assert [r.lbn for r in q] == [1, 5, 9]

    def test_empty_pop_returns_none(self):
        assert CSCANQueue().pop(0) is None


class TestFactory:
    def test_make_fcfs(self):
        assert isinstance(make_queue("fcfs"), FCFSQueue)

    def test_make_cscan(self):
        assert isinstance(make_queue("CSCAN"), CSCANQueue)

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="unknown disk scheduling"):
            make_queue("elevator")


class TestSchedulingBenefit:
    def test_cscan_reduces_travel_versus_fcfs(self):
        """The reason batching matters (section 2.6): CSCAN order covers a
        scattered batch with monotone head movement."""
        lbns = [90, 10, 80, 20, 70, 30]
        fcfs, cscan = FCFSQueue(), CSCANQueue()
        for i, lbn in enumerate(lbns):
            fcfs.push(req(lbn, i))
            cscan.push(req(lbn, i))

        def travel(queue):
            head, total = 0, 0
            while True:
                r = queue.pop(head)
                if r is None:
                    return total
                total += abs(r.lbn - head)
                head = r.lbn

        assert travel(cscan) < travel(fcfs)


class TestSSTF:
    def _queue(self):
        from repro.disk.scheduler import SSTFQueue

        return SSTFQueue()

    def test_picks_nearest_to_head(self):
        q = self._queue()
        for i, lbn in enumerate([10, 55, 90]):
            q.push(req(lbn, i))
        assert q.pop(60).lbn == 55
        assert q.pop(55).lbn == 90
        assert q.pop(90).lbn == 10

    def test_tie_broken_by_arrival(self):
        q = self._queue()
        q.push(req(40, 1))
        q.push(req(60, 2))
        assert q.pop(50).lbn == 40  # equidistant: earlier arrival wins

    def test_factory(self):
        from repro.disk.scheduler import SSTFQueue, make_queue

        assert isinstance(make_queue("sstf"), SSTFQueue)

    def test_empty(self):
        assert self._queue().pop(0) is None

    def test_sim_accepts_sstf(self):
        from tests.conftest import make_trace, simple_config
        from repro.core import Simulator, make_policy

        trace = make_trace(list(range(12)))
        config = simple_config(cache_blocks=16).with_(discipline="sstf")
        result = Simulator(trace, make_policy("aggressive"), 1, config).run()
        assert result.fetches == 12

    def test_sstf_reduces_travel_vs_fcfs(self):
        lbns = [90, 10, 80, 20, 70, 30]
        from repro.disk.scheduler import SSTFQueue

        fcfs, sstf = FCFSQueue(), SSTFQueue()
        for i, lbn in enumerate(lbns):
            fcfs.push(req(lbn, i))
            sstf.push(req(lbn, i))

        def travel(queue):
            head, total = 0, 0
            while True:
                r = queue.pop(head)
                if r is None:
                    return total
                total += abs(r.lbn - head)
                head = r.lbn

        assert travel(sstf) < travel(fcfs)

    def test_randomized_equivalence_with_linear_scan(self):
        """The two-bisect pop must match the definitional argmin over
        (|cylinder - head|, seq) — checked against a naive linear-scan
        reference on randomized interleaved push/pop traffic."""

        class NaiveSSTF:
            def __init__(self, cylinder_of):
                self._cylinder_of = cylinder_of
                self._requests = []

            def push(self, request):
                self._requests.append(request)

            def pop(self, head_cylinder):
                if not self._requests:
                    return None
                best = min(
                    self._requests,
                    key=lambda r: (
                        abs(self._cylinder_of(r.lbn) - head_cylinder), r.seq
                    ),
                )
                self._requests.remove(best)
                return best

            def __len__(self):
                return len(self._requests)

        cylinder_of = lambda lbn: lbn // 16
        rng = random.Random(1234)
        fast = SSTFQueue(cylinder_of)
        naive = NaiveSSTF(cylinder_of)
        seq = 0
        for _ in range(3000):
            if fast and rng.random() < 0.45:
                head = rng.randrange(200)
                got = fast.pop(head)
                want = naive.pop(head)
                assert (got.lbn, got.seq) == (want.lbn, want.seq)
            else:
                # Duplicate cylinders are common under real striping; bias
                # the LBN range so collisions actually occur.
                request = req(rng.randrange(400), seq)
                seq += 1
                fast.push(request)
                naive.push(request)
        assert len(fast) == len(naive)

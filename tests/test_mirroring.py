"""RAID-1 mirroring: pair placement and read dispatch."""

import pytest

from repro.core import SimConfig, Simulator, make_policy
from tests.conftest import make_trace


def mirrored_config(cache_blocks=16, **kw):
    return SimConfig(
        cache_blocks=cache_blocks, mirrored=True, disk_model="simple",
        simple_access_ms=10.0, simple_sequential_ms=None, **kw,
    )


class TestConfiguration:
    def test_requires_even_disks(self):
        trace = make_trace([0, 1])
        with pytest.raises(ValueError, match="even number"):
            Simulator(trace, make_policy("demand"), 3, mirrored_config())

    def test_requires_at_least_two(self):
        trace = make_trace([0])
        with pytest.raises(ValueError, match="even number"):
            Simulator(trace, make_policy("demand"), 1, mirrored_config())


class TestDispatch:
    def test_block_home_is_within_pair(self):
        trace = make_trace(list(range(8)))
        sim = Simulator(trace, make_policy("demand"), 4, mirrored_config())
        pairs = 2
        for block in range(8):
            home = sim._disk[block]
            assert 0 <= home < pairs
            spindle = sim.disk_of(block)
            assert spindle in (home, home + pairs)

    def test_busy_home_dispatches_to_mirror(self):
        trace = make_trace([0, 2, 4])  # same pair (0) under 2 pairs
        sim = Simulator(trace, make_policy("demand"), 4, mirrored_config())
        block = 0
        home = sim._disk[block]
        # Occupy the home spindle...
        sim.array.submit(home, 99, 0)
        sim.array.start_next(home, 0.0)
        # ...now the dispatcher must pick the mirror.
        assert sim.disk_of(block) == home + 2

    def test_lbns_identical_across_copies(self):
        # Both spindles of a pair hold the block at the same per-disk LBN.
        trace = make_trace(list(range(6)))
        sim = Simulator(trace, make_policy("demand"), 2, mirrored_config())
        # 2 disks = 1 pair: lbn addresses must fit one disk's space.
        for block in range(6):
            assert sim.lbn_of(block) < sim.array.geometry.total_blocks


class TestPerformance:
    def _run(self, mirrored, disks, blocks=None, policy="aggressive"):
        blocks = blocks if blocks is not None else list(range(40))
        trace = make_trace(blocks, compute_ms=1.0)
        config = (
            mirrored_config(cache_blocks=50)
            if mirrored
            else SimConfig(
                cache_blocks=50, disk_model="simple",
                simple_access_ms=10.0, simple_sequential_ms=None,
            )
        )
        return Simulator(trace, make_policy(policy), disks, config).run()

    def test_mirroring_parallelizes_one_pairs_reads(self):
        """All blocks of one pair: two spindles serve them concurrently,
        beating a single striped disk holding the same data."""
        blocks = [b * 2 for b in range(20)]  # all on pair 0 of 2 pairs
        mirrored = self._run(True, 4, blocks)
        single = self._run(False, 1, [b for b in range(20)])
        assert mirrored.stall_ms < single.stall_ms

    def test_mirrored_pairs_beat_same_pair_count_striped(self):
        """d spindles as d/2 mirrored pairs at least match d/2 striped
        disks (extra spindles can only help reads)."""
        mirrored = self._run(True, 4)
        striped_half = self._run(False, 2)
        assert mirrored.elapsed_ms <= striped_half.elapsed_ms * 1.02

    def test_accounting_identity_under_mirroring(self):
        result = self._run(True, 4)
        total = result.compute_ms + result.driver_ms + result.stall_ms
        assert result.elapsed_ms == pytest.approx(total, abs=1e-6)

    @pytest.mark.parametrize(
        "policy", ["demand", "fixed-horizon", "aggressive", "forestall"]
    )
    def test_all_policies_run_mirrored(self, policy):
        result = self._run(True, 4, policy=policy)
        assert result.references == 40

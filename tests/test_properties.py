"""Property-based tests (hypothesis): invariants that must hold for every
trace, policy, and configuration."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import POLICIES, Simulator, make_policy
from repro.core.nextref import NextRefIndex
from repro.theory.model import run_aggressive_model, run_demand_model
from tests.conftest import make_trace, simple_config

# Small random traces: up to 40 references over up to 12 distinct blocks.
traces = st.lists(
    st.integers(min_value=0, max_value=11), min_size=1, max_size=40
)
policies = st.sampled_from(sorted(POLICIES))
disk_counts = st.integers(min_value=1, max_value=3)
cache_sizes = st.integers(min_value=2, max_value=8)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSimulationInvariants:
    @given(blocks=traces, policy=policies, disks=disk_counts, K=cache_sizes)
    @RELAXED
    def test_every_run_completes_with_exact_accounting(
        self, blocks, policy, disks, K
    ):
        trace = make_trace(blocks, compute_ms=1.0)
        sim = Simulator(
            trace, make_policy(policy), disks, simple_config(cache_blocks=K)
        )
        result = sim.run()  # check_accounting runs internally
        assert result.references == len(blocks)
        assert result.fetches >= len(set(blocks)) if K >= len(set(blocks)) else True

    @given(blocks=traces, policy=policies, disks=disk_counts, K=cache_sizes)
    @RELAXED
    def test_cache_occupancy_never_exceeds_capacity(
        self, blocks, policy, disks, K
    ):
        trace = make_trace(blocks)
        sim = Simulator(
            trace, make_policy(policy), disks, simple_config(cache_blocks=K)
        )
        cache = sim.cache
        original = cache.begin_fetch
        max_seen = [0]

        def watched(block, victim):
            original(block, victim)
            max_seen[0] = max(
                max_seen[0], len(cache.resident) + len(cache.in_flight)
            )

        cache.begin_fetch = watched
        sim.run()
        assert max_seen[0] <= K

    @given(blocks=traces, policy=policies, K=cache_sizes)
    @RELAXED
    def test_fetch_count_at_least_distinct_blocks(self, blocks, policy, K):
        # Cold cache: every distinct block must be fetched at least once.
        trace = make_trace(blocks)
        sim = Simulator(
            trace, make_policy(policy), 1, simple_config(cache_blocks=K)
        )
        result = sim.run()
        assert result.fetches >= len(set(blocks))

    @given(blocks=traces, policy=policies)
    @RELAXED
    def test_elapsed_at_least_compute_plus_driver(self, blocks, policy):
        trace = make_trace(blocks, compute_ms=2.0)
        sim = Simulator(trace, make_policy(policy), 2, simple_config(8))
        result = sim.run()
        assert result.elapsed_ms >= result.compute_ms + result.driver_ms - 1e-9

    @given(blocks=traces, policy=policies, K=cache_sizes)
    @RELAXED
    def test_demand_fetches_most_prefetchers_never_fetch_less_than_distinct(
        self, blocks, policy, K
    ):
        """Demand with Belady achieves the minimum possible fetch count;
        no policy can fetch fewer (it would miss a block)."""
        trace = make_trace(blocks)
        demand = Simulator(
            trace, make_policy("demand"), 1, simple_config(cache_blocks=K)
        ).run()
        other = Simulator(
            make_trace(blocks), make_policy(policy), 1,
            simple_config(cache_blocks=K),
        ).run()
        assert other.fetches >= demand.fetches


class TestTheoryModelInvariants:
    @given(
        blocks=traces,
        K=cache_sizes,
        F=st.integers(min_value=1, max_value=4),
        d=disk_counts,
    )
    @RELAXED
    def test_model_elapsed_is_references_plus_stall(self, blocks, K, F, d):
        run = run_aggressive_model(
            blocks, K, F, d, disk_of=lambda b: b % d, batch_size=2
        )
        assert run.elapsed == pytest.approx(len(blocks) + run.stall)

    @given(blocks=traces, K=cache_sizes, F=st.integers(1, 4))
    @RELAXED
    def test_aggressive_model_within_theorem_bound_of_demand(
        self, blocks, K, F
    ):
        """Aggressive can lose to demand outright ("early replacement":
        an early fetch evicts a block whose refetch costs more than the
        stall saved — e.g. [1, 0, 2, 1] with K=2, F=4), but Cao et al.'s
        single-disk bound, elapsed <= (1 + F/K) x optimal, holds with
        demand's elapsed standing in for (an upper bound on) optimal."""
        demand = run_demand_model(blocks, K, F, 1, lambda b: 0)
        agg = run_aggressive_model(blocks, K, F, 1, lambda b: 0, batch_size=1)
        assert agg.elapsed <= (1 + F / K) * demand.elapsed + F

    @given(blocks=traces, K=cache_sizes, F=st.integers(1, 4), d=disk_counts)
    @RELAXED
    def test_model_final_cache_within_capacity(self, blocks, K, F, d):
        run = run_aggressive_model(blocks, K, F, d, lambda b: b % d)
        assert len(run.final_cache) <= K


class TestNextRefProperties:
    @given(blocks=traces)
    @RELAXED
    def test_next_use_monotone_and_correct(self, blocks):
        index = NextRefIndex(blocks)
        for cursor in range(len(blocks)):
            block = blocks[cursor]
            assert index.next_use_cold(block, cursor) == cursor

    @given(blocks=traces, cursor=st.integers(0, 40))
    @RELAXED
    def test_cold_matches_linear_scan(self, blocks, cursor):
        index = NextRefIndex(blocks)
        for block in set(blocks):
            expected = index.never
            for position in range(cursor, len(blocks)):
                if blocks[position] == block:
                    expected = position
                    break
            assert index.next_use_cold(block, cursor) == expected

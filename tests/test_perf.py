"""The phase profiler: self-time accounting and behavioural transparency."""

import dataclasses

import pytest

from repro.cli import main
from repro.core import SimConfig, Simulator, make_policy
from repro.perf import PHASES, PhaseProfiler, ProfiledPolicy
from repro.trace import build as build_workload
from repro.trace import cache_blocks_for


class FakeClock:
    """Deterministic nanosecond clock advanced by the test."""

    def __init__(self):
        self.now = 0

    def advance(self, ns: int) -> None:
        self.now += ns

    def __call__(self) -> int:
        return self.now


class TestPhaseProfiler:
    def test_flat_phase_accumulates(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        profiler.start("disk")
        clock.advance(5_000_000)
        profiler.stop()
        profiler.start("disk")
        clock.advance(3_000_000)
        profiler.stop()
        assert profiler.ms("disk") == pytest.approx(8.0)
        assert profiler.counts["disk"] == 2

    def test_nested_phase_charges_self_time_only(self):
        # dispatch runs 10ms total, but 6ms of it is inside a nested
        # policy bracket: self times must partition, not double count.
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        profiler.start("dispatch")
        clock.advance(1_000_000)
        profiler.start("policy")
        clock.advance(6_000_000)
        profiler.stop()
        clock.advance(3_000_000)
        profiler.stop()
        assert profiler.ms("dispatch") == pytest.approx(4.0)
        assert profiler.ms("policy") == pytest.approx(6.0)
        assert profiler.total_ms == pytest.approx(10.0)

    def test_deep_nesting_resumes_each_parent(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        profiler.start("dispatch")
        clock.advance(1_000_000)
        profiler.start("cache")
        clock.advance(2_000_000)
        profiler.start("policy")
        clock.advance(4_000_000)
        profiler.stop()
        clock.advance(8_000_000)
        profiler.stop()
        clock.advance(16_000_000)
        profiler.stop()
        assert profiler.ms("dispatch") == pytest.approx(17.0)
        assert profiler.ms("cache") == pytest.approx(10.0)
        assert profiler.ms("policy") == pytest.approx(4.0)

    def test_zero_duration_phases_report_cleanly(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.start("policy")
        profiler.stop()
        summary = profiler.to_dict()
        assert summary["total_ms"] == 0.0
        assert summary["phases"]["policy"]["share"] == 0.0
        assert "policy" in profiler.report()

    def test_to_dict_shares_sum_to_one(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        for phase, ns in (("policy", 2), ("disk", 3), ("dispatch", 5)):
            profiler.start(phase)
            clock.advance(ns * 1_000_000)
            profiler.stop()
        summary = profiler.to_dict()
        shares = [entry["share"] for entry in summary["phases"].values()]
        assert sum(shares) == pytest.approx(1.0, abs=1e-3)
        # Phases are reported hottest-first (self time descending).
        assert list(summary["phases"]) == ["dispatch", "disk", "policy"]

    def test_reset_clears_everything(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        profiler.start("disk")
        clock.advance(1_000_000)
        profiler.stop()
        profiler.reset()
        assert profiler.total_ms == 0.0
        assert profiler.counts == {}

    def test_phase_vocabulary_is_stable(self):
        assert PHASES == ("policy", "disk", "cache", "dispatch")


def _run(trace_name, policy, disks, profiler=None):
    trace = build_workload(trace_name, scale=0.2)
    config = SimConfig(cache_blocks=cache_blocks_for(trace_name, 0.2))
    sim = Simulator(
        trace, make_policy(policy), disks, config, profiler=profiler
    )
    return sim.run()


class TestProfiledRuns:
    @pytest.mark.parametrize("policy", ["demand", "aggressive", "forestall"])
    def test_profiled_run_is_bit_identical(self, policy):
        plain = _run("ld", policy, 2)
        profiled = _run("ld", policy, 2, profiler=PhaseProfiler())
        assert dataclasses.asdict(plain) == dataclasses.asdict(profiled)

    def test_profiler_sees_all_engine_phases(self):
        profiler = PhaseProfiler()
        _run("ld", "forestall", 2, profiler=profiler)
        for phase in PHASES:
            assert profiler.ms(phase) > 0.0, phase
            assert profiler.counts[phase] > 0

    def test_unprofiled_simulator_has_no_wrapper(self):
        trace = build_workload("ld", scale=0.1)
        config = SimConfig(cache_blocks=cache_blocks_for("ld", 0.1))
        sim = Simulator(trace, make_policy("forestall"), 2, config)
        assert not isinstance(sim.policy, ProfiledPolicy)
        assert sim.profiler is None

    def test_wrapper_delegates_attributes(self):
        policy = make_policy("forestall")
        wrapped = ProfiledPolicy(policy, PhaseProfiler())
        assert wrapped.name == policy.name
        assert wrapped.horizon == policy.horizon


class TestProfileFlag:
    def test_run_profile_prints_breakdown(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "forestall", "-d", "2",
            "--scale", "0.1", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out
        for phase in PHASES:
            assert phase in out

    def test_run_without_profile_stays_quiet(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "1", "--scale", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" not in out

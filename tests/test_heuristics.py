"""Unhinted heuristic policies: LRU demand, readahead, stride prefetch."""

import pytest

import repro
from repro.core import Simulator, make_policy
from repro.core.heuristics import (
    LRUDemand,
    SequentialReadahead,
    StridePrefetcher,
)
from tests.conftest import make_trace, run, simple_config


class TestLRUDemand:
    def test_registered(self):
        assert isinstance(make_policy("lru-demand"), LRUDemand)

    def test_never_prefetches(self):
        result = run([0, 1, 2, 0, 1, 2], policy="lru-demand", cache_blocks=4)
        assert result.fetches == 3

    def test_lru_evicts_least_recent(self):
        # Cache 2: after touching 0 then 1, fetching 2 must evict 0.
        # Sequence then re-reads 1 (hit) and 0 (miss) -> 4 fetches.
        result = run([0, 1, 2, 1, 0], policy="lru-demand", cache_blocks=2)
        assert result.fetches == 4

    def test_lru_worse_than_belady_on_cyclic_trace(self):
        blocks = [0, 1, 2] * 6
        lru = run(blocks, policy="lru-demand", cache_blocks=2)
        belady = run(blocks, policy="demand", cache_blocks=2)
        assert lru.fetches >= belady.fetches
        # LRU on a loop one-over-cache is the pathological case.
        assert lru.fetches == 18

    def test_uses_no_future_knowledge(self):
        """The policy must behave identically if the future is scrambled
        (same prefix): decisions depend only on the past."""
        a = run([0, 1, 2, 0, 9, 9, 9], policy="lru-demand", cache_blocks=2)
        b = run([0, 1, 2, 0, 5, 6, 7], policy="lru-demand", cache_blocks=2)
        # identical first four decisions -> identical fetch counts there;
        # compare stall of the shared prefix via elapsed of first 4 refs
        assert a.fetches >= 4 and b.fetches >= 4


class TestSequentialReadahead:
    def test_depth_validated(self):
        with pytest.raises(ValueError):
            SequentialReadahead(depth=0)

    def test_prefetches_adjacent_blocks(self):
        trace = make_trace(list(range(12)), compute_ms=20.0)
        policy = SequentialReadahead(depth=4)
        sim = Simulator(trace, policy, 1, simple_config(cache_blocks=16))
        result = sim.run()
        # After the first miss the next 4 blocks ride in on readahead:
        # far fewer stalls than demand.
        demand = run(list(range(12)), policy="lru-demand", cache_blocks=16,
                     compute_ms=20.0)
        assert result.stall_ms < demand.stall_ms

    def test_helps_sequential_trace(self):
        t = repro.build_workload("dinero", scale=0.2)
        ra = repro.run_simulation(t, policy="seq-readahead", num_disks=1,
                                  cache_blocks=102)
        lru = repro.run_simulation(t, policy="lru-demand", num_disks=1,
                                   cache_blocks=102)
        assert ra.elapsed_ms < lru.elapsed_ms

    def test_useless_on_random_index_trace(self):
        t = repro.build_workload("postgres-select", scale=0.2)
        ra = repro.run_simulation(t, policy="seq-readahead", num_disks=1,
                                  cache_blocks=256)
        fh = repro.run_simulation(t, policy="fixed-horizon", num_disks=1,
                                  cache_blocks=256, horizon=12)
        assert fh.elapsed_ms < ra.elapsed_ms  # hints win

    def test_respects_file_boundaries(self):
        from repro.trace import Trace
        from repro.trace.synthetic import BlockSpace

        space = BlockSpace()
        a = space.new_file(4)
        b = space.new_file(4)
        trace = Trace("two-files", [a[3], b[0]], [20.0, 20.0],
                      files=space.files)
        issued = []

        class Spy(SequentialReadahead):
            def issue(self, block, victim):
                issued.append(block)
                super().issue(block, victim)

        sim = Simulator(trace, Spy(depth=4), 1, simple_config(cache_blocks=8))
        sim.run()
        # Readahead from a[3] must not run into file b.
        assert b[1] not in issued or b[0] in issued


class TestStridePrefetcher:
    def test_depth_validated(self):
        with pytest.raises(ValueError):
            StridePrefetcher(depth=0)

    def test_detects_constant_stride(self):
        blocks = list(range(0, 60, 5))  # stride 5
        strided = run(blocks, policy="stride-prefetch", cache_blocks=20,
                      compute_ms=20.0)
        lru = run(blocks, policy="lru-demand", cache_blocks=20,
                  compute_ms=20.0)
        assert strided.stall_ms < lru.stall_ms

    def test_no_prefetch_without_confirmation(self):
        issued = []

        class Spy(StridePrefetcher):
            def issue(self, block, victim):
                issued.append(block)
                super().issue(block, victim)

        # Strides never repeat: 0, 1, 3, 7 (deltas 1, 2, 4).
        trace = make_trace([0, 1, 3, 7], compute_ms=20.0)
        sim = Simulator(trace, Spy(confirm=2), 1,
                        simple_config(cache_blocks=8))
        sim.run()
        assert set(issued) == {0, 1, 3, 7}  # demand only

    def test_all_heuristics_complete_all_workloads(self):
        t = repro.build_workload("ld", scale=0.1)
        for policy in ("lru-demand", "seq-readahead", "stride-prefetch"):
            result = repro.run_simulation(t, policy=policy, num_disks=2,
                                          cache_blocks=128)
            assert result.references == t.references

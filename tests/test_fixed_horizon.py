"""Fixed horizon: bounded lookahead, late replacement."""

import pytest

from repro.core import FixedHorizon, Simulator
from repro.core.fixed_horizon import DEFAULT_HORIZON
from tests.conftest import make_trace, run, simple_config


class TestConstruction:
    def test_default_horizon_is_62(self):
        """Section 2.6: 15 ms / 243 us yields H = 62."""
        assert DEFAULT_HORIZON == 62
        assert FixedHorizon().horizon == 62

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedHorizon(horizon=0)

    def test_name_reflects_nondefault_horizon(self):
        assert FixedHorizon().name == "fixed-horizon"
        assert "128" in FixedHorizon(horizon=128).name


class TestLookaheadBound:
    def test_never_fetches_beyond_horizon(self):
        """A block exactly H+1 ahead must not be fetched until the cursor
        advances; we detect this by interposing on issue order."""
        issued_at = {}

        class Spy(FixedHorizon):
            def issue(self, block, victim):
                issued_at.setdefault(block, self.sim.cursor)
                super().issue(block, victim)

        horizon = 5
        blocks = list(range(20))
        trace = make_trace(blocks, compute_ms=1.0)
        sim = Simulator(trace, Spy(horizon=horizon), 1,
                        simple_config(cache_blocks=30))
        sim.run()
        for block, cursor in issued_at.items():
            assert block - cursor <= horizon

    def test_horizon_one_fetches_only_current(self):
        issued_at = {}

        class Spy(FixedHorizon):
            def issue(self, block, victim):
                issued_at.setdefault(block, self.sim.cursor)
                super().issue(block, victim)

        trace = make_trace(list(range(6)))
        Simulator(trace, Spy(horizon=1), 1, simple_config(cache_blocks=8)).run()
        assert all(block == cursor for block, cursor in issued_at.items())

    def test_prefetches_eliminate_stall_when_bandwidth_allows(self):
        # Long compute (20 ms) vs 10 ms fetches: fetching ahead hides all
        # latency after the cold start (whose stall is the 10 ms fetch less
        # the 3 x 0.5 ms of driver work done before blocking).
        blocks = list(range(10))
        result = run(blocks, policy="fixed-horizon", cache_blocks=20,
                     compute_ms=20.0, horizon=3)
        assert result.stall_ms == pytest.approx(8.5)


class TestReplacementDiscipline:
    def test_victims_needed_beyond_horizon(self):
        """FH only evicts blocks whose next use is beyond H; with everything
        needed sooner it refuses to prefetch (and falls back to demand at
        the reference itself)."""
        evictions = []

        class Spy(FixedHorizon):
            def issue(self, block, victim):
                if victim is not None:
                    evictions.append(
                        (victim, self.sim.index.next_use(victim, self.sim.cursor),
                         self.sim.cursor)
                    )
                super().issue(block, victim)

        blocks = [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
        trace = make_trace(blocks)
        sim = Simulator(trace, Spy(horizon=2), 1, simple_config(cache_blocks=3))
        sim.run()
        for victim, next_use, cursor in evictions:
            # never-again victims (next_use == index.never) pass trivially
            assert next_use > cursor  # never evict the immediate need

    def test_fewest_fetches_of_prefetchers_on_loop(self):
        """Section 4: fixed horizon consistently places the least I/O load
        (its late decisions match optimal replacement)."""
        blocks = list(range(12)) * 6
        fh = run(blocks, policy="fixed-horizon", cache_blocks=8,
                 horizon=4, compute_ms=3.0)
        agg = run(blocks, policy="aggressive", cache_blocks=8,
                  compute_ms=3.0, batch_size=8)
        assert fh.fetches <= agg.fetches


class TestStallBehaviour:
    def test_stalls_when_io_bound_single_disk(self):
        """FH leaves the disk idle beyond H and pays for it when bandwidth
        is scarce (section 2.3): on a loop whose missing blocks cluster,
        aggressive prefetches through the cached run while FH idles."""
        blocks = list(range(16)) * 6
        fh = run(blocks, policy="fixed-horizon", cache_blocks=12,
                 compute_ms=5.0, horizon=2)
        agg = run(blocks, policy="aggressive", cache_blocks=12,
                  compute_ms=5.0, batch_size=8)
        assert fh.stall_ms > agg.stall_ms

    def test_larger_horizon_reduces_io_bound_stall(self):
        # H must stay below the loop period so victims exist beyond it.
        blocks = list(range(30)) * 4
        small = run(blocks, policy="fixed-horizon", cache_blocks=24,
                    compute_ms=5.0, horizon=2)
        large = run(blocks, policy="fixed-horizon", cache_blocks=24,
                    compute_ms=5.0, horizon=8)
        assert large.stall_ms < small.stall_ms

    def test_horizon_at_or_above_cache_degrades_to_demand(self):
        # With H >= K no victim's next use clears the horizon, so no
        # prefetch is ever allowed (the paper's H < K proviso).
        blocks = list(range(16)) * 3
        result = run(blocks, policy="fixed-horizon", cache_blocks=12,
                     compute_ms=1.0, horizon=20)
        demand = run(blocks, policy="demand", cache_blocks=12,
                     compute_ms=1.0)
        assert result.fetches == demand.fetches

    def test_multiple_outstanding_requests_allowed(self):
        """FH may have up to H outstanding fetches queued at once."""
        max_queue = [0]

        class Spy(FixedHorizon):
            def issue(self, block, victim):
                super().issue(block, victim)
                array = self.sim.array
                depth = array.queue_length(0) + (0 if array.is_idle(0) else 1)
                max_queue[0] = max(max_queue[0], depth)

        blocks = list(range(30))
        trace = make_trace(blocks, compute_ms=0.1)
        sim = Simulator(trace, Spy(horizon=10), 1,
                        simple_config(cache_blocks=40))
        sim.run()
        assert max_queue[0] > 1

"""Synthesis primitives: the access-pattern vocabulary."""

import random

import pytest

from repro.trace.synthetic import (
    BlockSpace,
    bursty_gaps,
    exponential_gaps,
    fit_length,
    index_data_scan,
    interleave_rounds,
    sequential_passes,
    strided_slice,
)


class TestBlockSpace:
    def test_files_get_disjoint_ranges(self):
        space = BlockSpace()
        a = space.new_file(10)
        b = space.new_file(5)
        assert set(a) & set(b) == set()
        assert len(a) == 10 and len(b) == 5

    def test_file_metadata_recorded(self):
        space = BlockSpace()
        blocks = space.new_file(3)
        assert space.files[blocks[0]] == (0, 0)
        assert space.files[blocks[2]] == (0, 2)
        more = space.new_file(2)
        assert space.files[more[0]] == (1, 0)

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            BlockSpace().new_file(0)


class TestSequentialPasses:
    def test_whole_passes(self):
        assert sequential_passes([1, 2, 3], 2) == [1, 2, 3, 1, 2, 3]

    def test_fractional_tail(self):
        assert sequential_passes([1, 2, 3, 4], 1.5) == [1, 2, 3, 4, 1, 2]

    def test_zero_passes(self):
        assert sequential_passes([1, 2], 0.0) == []


class TestInterleave:
    def test_round_robin(self):
        assert interleave_rounds([[1, 2], [10, 20]]) == [1, 10, 2, 20]

    def test_uneven_streams(self):
        assert interleave_rounds([[1, 2, 3], [10]]) == [1, 10, 2, 3]


class TestIndexDataScan:
    def test_covers_all_data_blocks(self):
        rng = random.Random(1)
        refs = index_data_scan([100, 101], list(range(20)), 4, rng)
        assert set(range(20)) <= set(refs)

    def test_index_blocks_hot(self):
        rng = random.Random(1)
        refs = index_data_scan([100], list(range(40)), 2, rng)
        index_hits = sum(1 for r in refs if r == 100)
        assert index_hits >= 40 // (2 * 1)  # revisited repeatedly

    def test_sequential_order_option(self):
        rng = random.Random(1)
        refs = index_data_scan([9], [0, 1, 2, 3], 10, rng, data_order="seq")
        data_refs = [r for r in refs if r != 9]
        assert data_refs == [0, 1, 2, 3]


class TestStridedSlice:
    def test_stride_one_is_sequential(self):
        volume = list(range(100, 110))
        assert strided_slice(volume, 2, 1, 3) == [102, 103, 104]

    def test_stride_wraps_modulo_volume(self):
        volume = list(range(100, 104))
        assert strided_slice(volume, 2, 3, 3) == [102, 101, 100]

    def test_count_respected(self):
        assert len(strided_slice(list(range(50)), 0, 7, 12)) == 12


class TestGapDistributions:
    def test_exponential_count_and_positivity(self):
        gaps = exponential_gaps(500, 2.0, random.Random(7))
        assert len(gaps) == 500
        assert all(g >= 0 for g in gaps)
        mean = sum(gaps) / len(gaps)
        assert 1.5 < mean < 2.5

    def test_bursty_alternates_regimes(self):
        gaps = bursty_gaps(2000, 1.0, 7.0, 40, random.Random(7))
        assert len(gaps) == 2000
        low = sum(1 for g in gaps if g < 3.0)
        high = sum(1 for g in gaps if g >= 3.0)
        assert low > 200 and high > 200  # both regimes present

    def test_bursty_has_runs(self):
        gaps = bursty_gaps(1000, 1.0, 7.0, 50, random.Random(3))
        # count regime switches; with mean run 50 there should be few
        switches = sum(
            1 for a, b in zip(gaps, gaps[1:]) if (a < 3) != (b < 3)
        )
        assert switches < 100


class TestFitLength:
    def test_trims(self):
        assert fit_length([1, 2, 3, 4], 2, random.Random(0)) == [1, 2]

    def test_extends_cyclically(self):
        assert fit_length([1, 2, 3], 7, random.Random(0)) == [
            1, 2, 3, 1, 2, 3, 1
        ]

    def test_exact_length_untouched(self):
        refs = [5, 6]
        assert fit_length(refs, 2, random.Random(0)) == [5, 6]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_length([], 3, random.Random(0))

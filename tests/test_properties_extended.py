"""Property-based tests for the disk layer, writes, hints, and the
multi-process simulator."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SimConfig, Simulator, make_policy
from repro.core.hints import HintQuality, degrade_hints, resolve_hint_view
from repro.core.multiprocess import MultiProcessSimulator, StaticAllocator
from repro.disk.drive import DiskDrive
from repro.disk.geometry import HP97560
from repro.disk.scheduler import CSCANQueue, FCFSQueue, Request
from tests.conftest import make_trace, simple_config

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_traces = st.lists(st.integers(0, 9), min_size=1, max_size=30)


class TestDriveProperties:
    @given(
        lbns=st.lists(
            st.integers(0, HP97560.total_blocks - 1), min_size=1, max_size=40
        )
    )
    @RELAXED
    def test_service_times_positive_and_bounded(self, lbns):
        drive = DiskDrive()
        t = 0.0
        worst = (
            HP97560.controller_overhead_ms
            + 8.0 + 0.008 * HP97560.cylinders  # longest seek
            + HP97560.rotation_ms
            + HP97560.block_media_transfer_ms
            + HP97560.rotation_ms  # readahead cache_wait slack
        )
        for lbn in lbns:
            breakdown = drive.service(lbn, t)
            assert breakdown.total > 0
            assert breakdown.total <= worst
            t += breakdown.total

    @given(
        lbns=st.lists(
            st.integers(0, HP97560.total_blocks - 1), min_size=2, max_size=30
        )
    )
    @RELAXED
    def test_cache_hit_never_slower_than_fresh_mechanical(self, lbns):
        """The cache-vs-mechanical arbitration guarantees a hit is taken
        only when it wins."""
        drive = DiskDrive()
        t = 0.0
        for lbn in lbns:
            before_cyl = drive._cylinder
            before_track = drive._track
            breakdown = drive.service(lbn, t)
            if breakdown.cache_hit:
                shadow = DiskDrive()
                shadow._cylinder = before_cyl
                shadow._track = before_track
                mech = shadow.service(lbn, t)
                assert breakdown.total <= mech.total + 1e-9
            t += breakdown.total


class TestSchedulerProperties:
    requests = st.lists(st.integers(0, 500), min_size=1, max_size=25)

    @given(lbns=requests)
    @RELAXED
    def test_every_request_served_exactly_once(self, lbns):
        for queue_type in (FCFSQueue, CSCANQueue):
            queue = queue_type(lambda lbn: lbn // 10)
            for seq, lbn in enumerate(lbns):
                queue.push(Request(lbn=lbn, block=lbn, seq=seq))
            served = []
            head = 0
            while True:
                request = queue.pop(head)
                if request is None:
                    break
                served.append((request.lbn, request.seq))
                head = request.lbn // 10
            assert sorted(served) == sorted(
                (lbn, seq) for seq, lbn in enumerate(lbns)
            )

    @given(lbns=requests)
    @RELAXED
    def test_cscan_travel_never_exceeds_fcfs(self, lbns):
        def travel(queue_type):
            queue = queue_type(lambda lbn: lbn)
            for seq, lbn in enumerate(lbns):
                queue.push(Request(lbn=lbn, block=lbn, seq=seq))
            head, total = 0, 0
            while True:
                request = queue.pop(head)
                if request is None:
                    return total
                # circular distance: CSCAN wraps in one direction
                total += abs(request.lbn - head)
                head = request.lbn
            return total

        assert travel(CSCANQueue) <= travel(FCFSQueue) + 501  # one wrap slack


class TestWriteProperties:
    @given(
        blocks=small_traces,
        mask_seed=st.integers(0, 10),
        policy=st.sampled_from(["demand", "fixed-horizon", "forestall"]),
    )
    @RELAXED
    def test_any_write_mix_completes_with_exact_accounting(
        self, blocks, mask_seed, policy
    ):
        import random

        rng = random.Random(mask_seed)
        writes = [rng.random() < 0.4 for _ in blocks]
        from repro.trace import Trace

        trace = Trace("p", list(blocks), [1.0] * len(blocks), writes=writes)
        sim = Simulator(
            trace, make_policy(policy), 2, simple_config(cache_blocks=4)
        )
        result = sim.run()
        assert result.references == len(blocks)
        total = result.compute_ms + result.driver_ms + result.stall_ms
        assert result.elapsed_ms == pytest.approx(total, abs=1e-6)
        assert result.extras["flushes"] <= result.extras["writes"]

    @given(blocks=small_traces)
    @RELAXED
    def test_pure_write_stream_never_stalls(self, blocks):
        from repro.trace import Trace

        trace = Trace(
            "w", list(blocks), [1.0] * len(blocks), writes=[True] * len(blocks)
        )
        sim = Simulator(
            trace, make_policy("demand"), 1, simple_config(cache_blocks=4)
        )
        result = sim.run()
        assert result.stall_ms == 0.0
        assert result.fetches == 0


class TestHintProperties:
    @given(
        blocks=small_traces,
        missing=st.floats(0.0, 0.5),
        wrong=st.floats(0.0, 0.5),
        seed=st.integers(0, 5),
        policy=st.sampled_from(["fixed-horizon", "aggressive", "forestall"]),
    )
    @RELAXED
    def test_degraded_hints_never_break_correctness(
        self, blocks, missing, wrong, seed, policy
    ):
        trace = make_trace(blocks)
        quality = HintQuality(
            missing_fraction=missing, wrong_fraction=wrong, seed=seed
        )
        hints = degrade_hints(trace, quality)
        sim = Simulator(
            trace, make_policy(policy), 2,
            simple_config(cache_blocks=4), hints=hints,
        )
        result = sim.run()
        assert result.references == len(blocks)

    @given(blocks=small_traces, seed=st.integers(0, 5))
    @RELAXED
    def test_resolved_view_always_names_real_blocks(self, blocks, seed):
        trace = make_trace(blocks)
        hints = degrade_hints(
            trace, HintQuality(missing_fraction=0.4, seed=seed)
        )
        view = resolve_hint_view(trace.blocks, hints)
        assert len(view) == len(blocks)
        universe = set(blocks)
        assert all(block in universe for block in view)


class TestMultiProcessProperties:
    @given(
        a=small_traces,
        b=small_traces,
        disks=st.integers(1, 3),
        policy=st.sampled_from(["demand", "fixed-horizon", "aggressive"]),
    )
    @RELAXED
    def test_two_arbitrary_processes_complete(self, a, b, disks, policy):
        sim = MultiProcessSimulator(
            [
                (make_trace(a, name="A"), make_policy(policy)),
                (make_trace(b, name="B"), make_policy("demand")),
            ],
            num_disks=disks,
            config=SimConfig(
                cache_blocks=8, disk_model="simple",
                simple_access_ms=5.0, simple_sequential_ms=None,
            ),
            allocator=StaticAllocator(),
        )
        results = sim.run()
        assert results[0].references == len(a)
        assert results[1].references == len(b)
        for r in results:
            total = r.compute_ms + r.driver_ms + r.stall_ms
            assert r.elapsed_ms == pytest.approx(total, abs=1e-6)

"""Demand fetching with Belady (MIN) replacement."""

import pytest

from tests.conftest import run


class TestDemandBasics:
    def test_fetches_equal_cold_misses(self):
        result = run([0, 1, 2, 0, 1, 2], cache_blocks=4)
        assert result.fetches == 3

    def test_never_prefetches(self):
        """Fetch count equals the number of references that actually missed
        — demand never speculates, so a fully cacheable trace fetches each
        distinct block exactly once."""
        blocks = [0, 1, 2, 3] * 10
        result = run(blocks, cache_blocks=4)
        assert result.fetches == 4

    def test_every_miss_stalls_full_fetch(self):
        result = run([0, 1, 2], cache_blocks=4, access_ms=10.0)
        # each of 3 misses stalls fetch-time minus driver overlap
        assert result.stall_ms == pytest.approx(3 * 9.5)


class TestBeladyReplacement:
    def test_optimal_replacement_beats_lru_pattern(self):
        """Cache of 2, sequence 0,1,2,0,1,2...: LRU would miss every time;
        Belady keeps the sooner-needed block and misses less."""
        blocks = [0, 1, 2] * 6
        result = run(blocks, cache_blocks=2)
        # LRU/FIFO would fetch 18 times. MIN does much better.
        assert result.fetches < 14

    def test_keeps_block_needed_soonest(self):
        # 0,1 cached; fetch 2 must evict the block whose next use is
        # furthest: block 1 (used at position 4), keeping 0 (position 3).
        blocks = [0, 1, 2, 0, 1]
        result = run(blocks, cache_blocks=2)
        # Optimal: fetch 0,1,2 (evict 1), hit 0, fetch 1 (4 fetches).
        assert result.fetches == 4

    def test_single_block_trace(self):
        result = run([7] * 20, cache_blocks=1)
        assert result.fetches == 1

    def test_working_set_exactly_cache_size(self):
        blocks = [0, 1, 2, 3] * 5
        result = run(blocks, cache_blocks=4)
        assert result.fetches == 4

    def test_working_set_one_over_cache_size(self):
        blocks = [0, 1, 2, 3, 4] * 4
        over = run(blocks, cache_blocks=4)
        exact = run(blocks, cache_blocks=5)
        assert exact.fetches == 5
        assert over.fetches > 5


class TestDemandAsBaseline:
    def test_prefetchers_beat_demand_when_io_bound(self):
        """Section 4.1: all prefetching algorithms significantly outperform
        optimal demand fetching."""
        blocks = list(range(30)) * 2
        demand = run(blocks, policy="demand", cache_blocks=8, compute_ms=2.0)
        for policy in ("fixed-horizon", "aggressive", "forestall"):
            prefetcher = run(blocks, policy=policy, cache_blocks=8,
                             compute_ms=2.0)
            assert prefetcher.elapsed_ms < demand.elapsed_ms

    def test_demand_insensitive_to_disk_count(self):
        blocks = list(range(20))
        results = [
            run(blocks, num_disks=d, cache_blocks=30).elapsed_ms
            for d in (1, 2, 4)
        ]
        assert max(results) - min(results) < 1e-6

"""Forestall: stall-inevitability triggering and adaptive estimation."""

import pytest

from repro.core import Forestall, Simulator
from repro.core.forestall import APPENDIX_H_FETCH_TIMES, _MissingTracker
from repro.core.nextref import INFINITE
from tests.conftest import make_trace, run, simple_config


class TestMissingTracker:
    def _tracker(self, blocks, cache_blocks=4, window=100):
        trace = make_trace(blocks)
        policy = Forestall()
        sim = Simulator(trace, policy, 1, simple_config(cache_blocks))
        return _MissingTracker(sim, window), sim

    def test_extend_discovers_missing_blocks(self):
        tracker, _sim = self._tracker([5, 6, 7])
        tracker.extend(0)
        assert tracker.positions == [0, 1, 2]

    def test_extend_deduplicates_blocks(self):
        tracker, _sim = self._tracker([5, 5, 6, 5])
        tracker.extend(0)
        assert tracker.positions == [0, 2]

    def test_extend_never_rescans(self):
        tracker, _sim = self._tracker([5, 6, 7, 8])
        tracker.extend(0)
        assert tracker.scanned_to == 4
        before = list(tracker.positions)
        tracker.extend(0)
        assert tracker.positions == before

    def test_remove_on_fetch(self):
        tracker, _sim = self._tracker([5, 6, 7])
        tracker.extend(0)
        tracker.remove(6)
        assert tracker.positions == [0, 2]
        tracker.remove(6)  # idempotent
        assert tracker.positions == [0, 2]

    def test_evict_reinserts_at_next_use(self):
        tracker, _sim = self._tracker([5, 6, 5, 7])
        tracker.extend(0)
        tracker.remove(5)
        tracker.on_evict(5, 2)
        assert 2 in tracker.positions

    def test_evict_beyond_window_ignored(self):
        tracker, _sim = self._tracker([5, 6, 7])
        tracker.extend(0)
        tracker.on_evict(9, INFINITE)
        tracker.on_evict(9, 50)  # past scanned_to
        assert all(p <= 2 for p in tracker.positions)

    def test_walk_yields_in_position_order(self):
        tracker, _sim = self._tracker([9, 8, 7, 6])
        tracker.extend(0)
        walked = [p for p, _b in tracker.walk(0)]
        assert walked == sorted(walked)

    def test_walk_skips_behind_cursor(self):
        tracker, _sim = self._tracker([5, 6, 7])
        tracker.extend(0)
        walked = [b for _p, b in tracker.walk(2)]
        assert walked == [7]


class TestEstimation:
    def test_fixed_estimate_respected(self):
        trace = make_trace([0, 1, 2])
        policy = Forestall(fixed_estimate=30)
        Simulator(trace, policy, 2, simple_config())
        assert policy.estimate(0) == 30
        assert policy.estimate(1) == 30
        assert "30" in policy.name

    def test_dynamic_estimate_tracks_ratio(self):
        trace = make_trace([0, 1, 2], compute_ms=2.0)
        policy = Forestall()
        Simulator(trace, policy, 1, simple_config())
        for _ in range(100):
            policy.on_fetch_complete(0, 4.0)   # fast disk: < 5 ms
            policy.on_reference_served(0, 2.0)
        assert policy.estimate(0) == pytest.approx(2.0, rel=0.05)

    def test_slow_disk_overestimates_4x(self):
        """Section 5: F' = 4F when average access time exceeds 5 ms."""
        trace = make_trace([0, 1, 2], compute_ms=2.0)
        policy = Forestall()
        Simulator(trace, policy, 1, simple_config())
        for _ in range(100):
            policy.on_fetch_complete(0, 16.0)
            policy.on_reference_served(0, 2.0)
        assert policy.estimate(0) == pytest.approx(4 * 8.0, rel=0.05)

    def test_appendix_h_values(self):
        assert APPENDIX_H_FETCH_TIMES == (1, 2, 4, 8, 15, 30, 60)


class TestTriggering:
    def test_compute_bound_behaves_like_fixed_horizon(self):
        """With ample compute time between misses, forestall must not
        prefetch much deeper than its backstop (the cold start, where every
        block is missing, legitimately fires the trigger): fetch counts and
        elapsed time stay close to FH's."""
        blocks = list(range(10)) * 8
        forestall = run(blocks, policy="forestall", num_disks=4,
                        cache_blocks=6, compute_ms=40.0, horizon=3)
        fh = run(blocks, policy="fixed-horizon", num_disks=4,
                 cache_blocks=6, compute_ms=40.0, horizon=3)
        assert forestall.fetches <= fh.fetches * 1.2
        assert forestall.elapsed_ms <= fh.elapsed_ms * 1.01

    def test_io_bound_prefetches_like_aggressive(self):
        blocks = list(range(16)) * 6
        forestall = run(blocks, policy="forestall", cache_blocks=12,
                        compute_ms=5.0, horizon=2, batch_size=8)
        fh = run(blocks, policy="fixed-horizon", cache_blocks=12,
                 compute_ms=5.0, horizon=2)
        assert forestall.stall_ms < fh.stall_ms

    def test_trigger_fires_before_inevitable_stall(self):
        """Five missing blocks at distance ~40 with F'=10: 5*10 > 40 means a
        stall is coming; forestall must start fetching well before the
        cursor reaches them."""
        issued_at = []

        class Spy(Forestall):
            def issue(self, block, victim):
                issued_at.append((block, self.sim.cursor))
                super().issue(block, victim)

        # 40 cached refs then 5 missing blocks
        blocks = [0] * 40 + [1, 2, 3, 4, 5]
        trace = make_trace(blocks, compute_ms=1.0)
        sim = Simulator(
            trace,
            Spy(fixed_estimate=10.0, horizon=3, batch_size=8),
            1,
            simple_config(cache_blocks=8, access_ms=10.0),
        )
        sim.run()
        first_prefetch_cursor = min(c for b, c in issued_at if b != 0)
        assert first_prefetch_cursor < 37  # earlier than the backstop alone

    def test_no_trigger_when_slack_is_ample(self):
        """One missing block far ahead with small F': forestall waits for
        the backstop instead of fetching early (late replacement)."""
        issued_at = []

        class Spy(Forestall):
            def issue(self, block, victim):
                issued_at.append((block, self.sim.cursor))
                super().issue(block, victim)

        blocks = [0] * 50 + [1]
        trace = make_trace(blocks, compute_ms=5.0)
        sim = Simulator(
            trace,
            Spy(fixed_estimate=2.0, horizon=4),
            1,
            simple_config(cache_blocks=8),
        )
        sim.run()
        cursor_when_1_issued = [c for b, c in issued_at if b == 1][0]
        assert cursor_when_1_issued >= 46  # backstop, not early fire


class TestEndToEnd:
    def test_tracks_best_of_both_worlds(self):
        """Section 5.1: forestall is close to the best of FH/aggressive in
        both regimes."""
        blocks = list(range(16)) * 6
        for compute, horizon in ((5.0, 2), (40.0, 2)):
            fh = run(blocks, policy="fixed-horizon", cache_blocks=12,
                     compute_ms=compute, horizon=horizon)
            agg = run(blocks, policy="aggressive", cache_blocks=12,
                      compute_ms=compute, batch_size=8)
            forestall = run(blocks, policy="forestall", cache_blocks=12,
                            compute_ms=compute, horizon=horizon, batch_size=8)
            assert forestall.elapsed_ms <= min(fh.elapsed_ms,
                                               agg.elapsed_ms) * 1.10

    def test_accounting_on_multi_disk(self):
        blocks = [0, 3, 6, 1, 4, 7, 2, 5, 8] * 4
        result = run(blocks, policy="forestall", num_disks=3, cache_blocks=6)
        total = result.compute_ms + result.driver_ms + result.stall_ms
        assert result.elapsed_ms == pytest.approx(total)

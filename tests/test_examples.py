"""Examples: every script compiles; the fast ones run end to end."""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples").glob("*.py")
)


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_all_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart", "crossover_study", "custom_workload",
            "custom_policy", "shared_system", "write_behind",
            "observability", "cache_sizing",
        } <= names


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self, monkeypatch, capsys):
        path = next(p for p in EXAMPLES if p.stem == "quickstart")
        monkeypatch.setattr(sys, "argv", [str(path), "ld", "2"])
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert "demand" in out
        assert "forestall" in out
        assert "elapsed" in out

"""Randomized agreement tests for the array-backed hot core.

The rewrite's safety argument has two legs: the 14 golden digests (end to
end) and these direct structural checks — the successor-array index, both
of its construction paths, and the batched missing-block scans must agree
with the retained pure-Python reference implementations on hundreds of
random traces, including the backwards-cursor queries the old index
answered wrongly.
"""

import random

import pytest

from repro.core.nextref import (
    HAVE_NUMPY,
    EvictionHeap,
    NextRefIndex,
    ReferenceNextRefIndex,
    ScanSupport,
    first_missing_positions,
    first_missing_positions_batched,
)

#: (trace count, max length, max distinct blocks) per shape family.
TRACE_SHAPES = [
    (120, 40, 8),  # short, dense reuse
    (60, 200, 30),  # medium
    (30, 400, 300),  # long, mostly cold
]


def random_traces():
    """Yield 210 seeded random traces across the shape families."""
    seed = 0
    for count, max_len, max_blocks in TRACE_SHAPES:
        for _ in range(count):
            seed += 1
            rng = random.Random(seed)
            n = rng.randrange(0, max_len + 1)
            universe = rng.randrange(1, max_blocks + 1)
            yield seed, [rng.randrange(universe) for _ in range(n)]


class TestIndexAgreesWithReference:
    def test_monotone_and_backwards_queries(self):
        total = 0
        for seed, blocks in random_traces():
            total += 1
            rng = random.Random(10_000 + seed)
            index = NextRefIndex(blocks)
            reference = ReferenceNextRefIndex(blocks)
            assert index.never == reference.never == len(blocks)
            universe = (set(blocks) or {0}) | {max(blocks, default=0) + 7}
            queries = [
                (rng.choice(sorted(universe)), rng.randrange(len(blocks) + 1))
                for _ in range(min(60, 4 * (len(blocks) + 1)))
            ]
            # Deliberately unsorted cursors: half the point is that the
            # rewritten index answers backwards queries exactly.
            for block, cursor in queries:
                expected = reference.next_use(block, cursor)
                assert index.next_use(block, cursor) == expected, (
                    seed,
                    block,
                    cursor,
                )
                assert index.next_use_cold(block, cursor) == expected
        assert total >= 200  # the satellite's contract: 200+ random traces

    def test_distinct_blocks_and_first_occurrence_order(self):
        for seed, blocks in random_traces():
            index = NextRefIndex(blocks)
            firsts = list(dict.fromkeys(blocks))
            assert list(index.unique_blocks()) == firsts, seed
            assert index.distinct_blocks == len(set(blocks))

    def test_positions_compat_view(self):
        for _seed, blocks in random_traces():
            index = NextRefIndex(blocks)
            reference = ReferenceNextRefIndex(blocks)
            assert index.positions == reference.positions


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy to compare paths")
class TestConstructionPathsAgree:
    def test_numpy_and_python_builds_identical(self):
        for seed, blocks in random_traces():
            n = len(blocks)
            succ_np, first_np = NextRefIndex._build_numpy(blocks, n)
            succ_py, first_py = NextRefIndex._build_python(blocks, n)
            assert succ_np == succ_py, seed
            assert first_np == first_py, seed
            # dict equality ignores order; first-occurrence order is part
            # of the contract (multiprocess placement iterates it).
            assert list(first_np) == list(first_py), seed


class TestBatchedScanAgreesWithGenerator:
    def test_random_present_sets(self):
        for seed, blocks in random_traces():
            rng = random.Random(20_000 + seed)
            present = {b for b in set(blocks) if rng.random() < 0.4}
            is_present = lambda b: b in present
            scan = ScanSupport.build(blocks)
            if scan is not None:
                for block in sorted(present):
                    if 0 <= block < len(scan.mask):
                        scan.mask[block] = 1
            for _ in range(6):
                cursor = rng.randrange(len(blocks) + 2)
                limit = rng.choice([0, 1, 3, 10, len(blocks) + 5])
                max_count = rng.choice([None, 0, 1, 2, 10])
                expected = list(
                    first_missing_positions(
                        blocks, cursor, is_present, limit, max_count
                    )
                )
                plain = first_missing_positions_batched(
                    blocks, cursor, is_present, limit, max_count
                )
                assert plain == expected, (seed, cursor, limit, max_count)
                if scan is not None:
                    probed = first_missing_positions_batched(
                        blocks, cursor, is_present, limit, max_count, scan=scan
                    )
                    assert probed == expected, (seed, cursor, limit, max_count)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="ScanSupport needs numpy")
    def test_missing_candidates_matches_naive_probe(self):
        for seed, blocks in random_traces():
            if not blocks:
                continue
            rng = random.Random(30_000 + seed)
            scan = ScanSupport.build(blocks)
            assert scan is not None
            present = {b for b in set(blocks) if rng.random() < 0.5}
            for block in sorted(present):
                scan.mask[block] = 1
            for _ in range(4):
                start = rng.randrange(len(blocks) + 1)
                end = rng.randrange(len(blocks) + 2)
                expected = [
                    p
                    for p in range(start, min(end, len(blocks)))
                    if blocks[p] not in present
                ]
                assert scan.missing_candidates(start, end) == expected, seed


class TestIntegerHeapKeys:
    def test_heap_orders_like_reference_next_use(self):
        for seed, blocks in random_traces():
            if not blocks:
                continue
            rng = random.Random(40_000 + seed)
            index = NextRefIndex(blocks)
            reference = ReferenceNextRefIndex(blocks)
            resident = {b for b in set(blocks) if rng.random() < 0.5}
            heap = EvictionHeap(index, resident)
            cursor = rng.randrange(len(blocks) + 1)
            for block in sorted(resident):
                heap.push(block, cursor)
            victim = heap.best_victim(cursor)
            if resident:
                # max next-use, ties broken toward the smaller block id
                # (heap tuples compare (-next_use, block)).
                expected = min(
                    sorted(resident),
                    key=lambda b: (-reference.next_use(b, cursor), b),
                )
                assert victim == expected, seed
            else:
                assert victim is None

"""Imperfect hints: degradation machinery and end-to-end behaviour."""

import pytest

import repro
from repro.core.hints import HintQuality, degrade_hints, resolve_hint_view
from repro.trace import Trace
from tests.conftest import make_trace


class TestHintQuality:
    def test_perfect_by_default(self):
        assert HintQuality().perfect

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            HintQuality(missing_fraction=-0.1)
        with pytest.raises(ValueError):
            HintQuality(wrong_fraction=1.5)
        with pytest.raises(ValueError):
            HintQuality(missing_fraction=0.6, wrong_fraction=0.6)


class TestDegradeHints:
    def _trace(self, n=400):
        return make_trace(list(range(20)) * (n // 20))

    def test_perfect_quality_is_identity(self):
        trace = self._trace()
        hints = degrade_hints(trace, HintQuality())
        assert hints == trace.blocks

    def test_missing_fraction_approximate(self):
        trace = self._trace()
        hints = degrade_hints(trace, HintQuality(missing_fraction=0.3, seed=1))
        missing = sum(1 for h in hints if h is None)
        assert 0.2 < missing / len(hints) < 0.4

    def test_wrong_hints_name_other_blocks(self):
        trace = self._trace()
        hints = degrade_hints(trace, HintQuality(wrong_fraction=0.5, seed=2))
        wrong = [
            (h, b) for h, b in zip(hints, trace.blocks)
            if h is not None and h != b
        ]
        assert wrong, "some hints must be wrong"
        universe = set(trace.blocks)
        assert all(h in universe for h, _b in wrong)

    def test_deterministic_per_seed(self):
        trace = self._trace()
        quality = HintQuality(missing_fraction=0.2, wrong_fraction=0.2, seed=7)
        assert degrade_hints(trace, quality) == degrade_hints(trace, quality)

    def test_wrong_hints_never_silently_truthful(self):
        # A "wrong" hint that happens to equal the true block would be no
        # degradation at all; every wrong draw must name a different block.
        trace = self._trace()
        for seed in range(10):
            hints = degrade_hints(trace, HintQuality(wrong_fraction=1.0,
                                                     seed=seed))
            assert all(h != b for h, b in zip(hints, trace.blocks))

    def test_single_block_universe_degrades_wrong_to_missing(self):
        # With one distinct block there is no other block to lie about:
        # the hint must drop out entirely, not silently stay correct.
        trace = make_trace([5] * 50)
        hints = degrade_hints(trace, HintQuality(wrong_fraction=1.0, seed=3))
        assert hints == [None] * 50


class TestResolveHintView:
    def test_passthrough(self):
        assert resolve_hint_view([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    def test_missing_hint_repeats_previous(self):
        assert resolve_hint_view([1, 2, 3], [1, None, 3]) == [1, 1, 3]

    def test_leading_missing_borrows_future(self):
        assert resolve_hint_view([5, 6, 7], [None, None, 7]) == [7, 7, 7]

    def test_all_missing_falls_back_to_actual(self):
        assert resolve_hint_view([5], [None]) == [5]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            resolve_hint_view([1, 2], [1])


class TestEndToEnd:
    def _run(self, quality=None, policy="fixed-horizon"):
        trace = make_trace(list(range(24)) * 4, compute_ms=3.0)
        from repro.core import Simulator, make_policy
        from repro.core.hints import degrade_hints
        from tests.conftest import simple_config

        hints = None
        if quality is not None:
            hints = degrade_hints(trace, quality)
        sim = Simulator(
            trace, make_policy(policy, horizon=6), 2,
            simple_config(cache_blocks=16), hints=hints,
        )
        return sim.run()

    def test_perfect_hints_unchanged(self):
        explicit = self._run(HintQuality())
        implicit = self._run(None)
        assert explicit.elapsed_ms == implicit.elapsed_ms

    def test_every_reference_still_served(self):
        result = self._run(HintQuality(missing_fraction=0.4, seed=3))
        assert result.references == 96

    def test_accounting_holds_under_degraded_hints(self):
        result = self._run(
            HintQuality(missing_fraction=0.2, wrong_fraction=0.2, seed=4)
        )
        total = result.compute_ms + result.driver_ms + result.stall_ms
        assert result.elapsed_ms == pytest.approx(total, abs=1e-6)

    def test_missing_hints_cost_stall(self):
        perfect = self._run(None)
        degraded = self._run(HintQuality(missing_fraction=0.5, seed=5))
        assert degraded.stall_ms > perfect.stall_ms

    def test_wrong_hints_cost_time(self):
        perfect = self._run(None)
        degraded = self._run(HintQuality(wrong_fraction=0.4, seed=6))
        assert degraded.elapsed_ms >= perfect.elapsed_ms

    def test_public_api_hint_quality(self):
        trace = repro.build_workload("ld", scale=0.1)
        perfect = repro.run_simulation(
            trace, policy="fixed-horizon", num_disks=2, cache_blocks=128
        )
        degraded = repro.run_simulation(
            trace, policy="fixed-horizon", num_disks=2, cache_blocks=128,
            hint_quality=repro.HintQuality(missing_fraction=0.3, seed=9),
        )
        assert degraded.elapsed_ms >= perfect.elapsed_ms

    @pytest.mark.parametrize(
        "policy", ["demand", "fixed-horizon", "aggressive", "forestall"]
    )
    def test_all_policies_survive_degradation(self, policy):
        trace = make_trace(list(range(24)) * 4, compute_ms=3.0)
        from repro.core import Simulator, make_policy
        from repro.core.hints import degrade_hints
        from tests.conftest import simple_config

        hints = degrade_hints(
            trace, HintQuality(missing_fraction=0.25, wrong_fraction=0.25,
                               seed=8)
        )
        sim = Simulator(
            trace, make_policy(policy), 2,
            simple_config(cache_blocks=16), hints=hints,
        )
        result = sim.run()
        assert result.references == 96

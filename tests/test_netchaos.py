"""Deterministic network chaos: seeded plans, the fault-injecting TCP
proxy, and the shared pacing primitive (src/repro/svc/netchaos.py).

The determinism contract is the load-bearing part: a soak run that
fails must replay exactly from its seed, so ``plan_for`` has to be a
pure function of ``(schedule fields, index)`` — across instances,
regardless of call order, with the documented exclusive fault classes.
"""

import asyncio
import json

import pytest

from repro.svc.netchaos import (
    ChaosProxy,
    ConnPlan,
    NetChaosSchedule,
    load_schedule,
    paced_write,
)
from repro.svc.netchaos import describe


# -- schedule determinism ---------------------------------------------------------------


class TestScheduleDeterminism:
    def test_plans_identical_across_instances(self):
        a = NetChaosSchedule(seed=7, drop_fraction=0.2, reset_fraction=0.2,
                             slowloris_fraction=0.2, throttle_fraction=0.2,
                             latency_ms=5.0, jitter_ms=3.0)
        b = NetChaosSchedule(seed=7, drop_fraction=0.2, reset_fraction=0.2,
                             slowloris_fraction=0.2, throttle_fraction=0.2,
                             latency_ms=5.0, jitter_ms=3.0)
        assert [a.plan_for(i) for i in range(200)] == \
               [b.plan_for(i) for i in range(200)]

    def test_plan_is_pure_in_index_not_call_order(self):
        schedule = NetChaosSchedule(seed=3, drop_fraction=0.3,
                                    reset_fraction=0.3)
        forward = [schedule.plan_for(i) for i in range(50)]
        backward = [schedule.plan_for(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        kinds = lambda seed: [  # noqa: E731
            NetChaosSchedule(seed=seed, drop_fraction=0.5).plan_for(i).kind
            for i in range(64)
        ]
        assert kinds(1) != kinds(2)

    def test_plan_counts_is_the_reproducibility_fingerprint(self):
        schedule = NetChaosSchedule(seed=11, drop_fraction=0.1,
                                    reset_fraction=0.2,
                                    slowloris_fraction=0.2,
                                    throttle_fraction=0.2)
        counts = schedule.plan_counts(500)
        assert sum(counts.values()) == 500
        again = NetChaosSchedule(seed=11, drop_fraction=0.1,
                                 reset_fraction=0.2,
                                 slowloris_fraction=0.2,
                                 throttle_fraction=0.2).plan_counts(500)
        assert counts == again
        # All four fault classes plus clean must appear at these rates.
        assert set(counts) >= {"drop", "reset", "slowloris", "throttle"}

    def test_fault_classes_are_exclusive(self):
        schedule = NetChaosSchedule(seed=0, drop_fraction=0.25,
                                    reset_fraction=0.25,
                                    slowloris_fraction=0.25,
                                    throttle_fraction=0.25)
        for index in range(200):
            plan = schedule.plan_for(index)
            active = [plan.drop, plan.reset_after_bytes is not None,
                      plan.drip_chunk_bytes > 0,
                      plan.throttle_bytes_per_s is not None]
            assert sum(active) <= 1

    def test_all_drop_when_fraction_is_one(self):
        schedule = NetChaosSchedule(seed=5, drop_fraction=1.0)
        assert all(schedule.plan_for(i).drop for i in range(50))
        assert schedule.plan_counts(50) == {"drop": 50}

    def test_latency_applies_to_non_dropped_plans(self):
        schedule = NetChaosSchedule(seed=9, latency_ms=10.0, jitter_ms=5.0)
        for index in range(32):
            plan = schedule.plan_for(index)
            assert 10.0 <= plan.latency_ms <= 15.0
            assert plan.kind == "latency"

    def test_describe_lists_index_and_kind(self):
        schedule = NetChaosSchedule(seed=0, drop_fraction=1.0)
        assert describe(schedule, 3) == [(0, "drop"), (1, "drop"),
                                         (2, "drop")]


class TestConnPlan:
    def test_null_plan(self):
        plan = ConnPlan(index=0)
        assert plan.is_null and plan.kind == "clean"

    def test_kind_priority(self):
        assert ConnPlan(index=0, drop=True, reset_after_bytes=1).kind == "drop"
        assert ConnPlan(index=0, reset_after_bytes=1,
                        drip_chunk_bytes=4).kind == "reset"
        assert ConnPlan(index=0, drip_chunk_bytes=4,
                        throttle_bytes_per_s=1.0).kind == "slowloris"
        assert ConnPlan(index=0, throttle_bytes_per_s=1.0).kind == "throttle"


# -- validation and (de)serialization ---------------------------------------------------


class TestScheduleValidation:
    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="drop_fraction"):
            NetChaosSchedule(drop_fraction=1.5)
        with pytest.raises(ValueError, match="reset_fraction"):
            NetChaosSchedule(reset_fraction=-0.1)

    def test_fractions_summing_past_one_rejected(self):
        with pytest.raises(ValueError, match="exclusive"):
            NetChaosSchedule(drop_fraction=0.5, reset_fraction=0.6)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency_ms"):
            NetChaosSchedule(latency_ms=-1.0)

    def test_nonpositive_throttle_rejected(self):
        with pytest.raises(ValueError, match="throttle_bytes_per_s"):
            NetChaosSchedule(throttle_bytes_per_s=0.0)

    def test_round_trip_dict(self):
        schedule = NetChaosSchedule(seed=42, reset_fraction=0.25,
                                    latency_ms=2.0)
        assert NetChaosSchedule.from_dict(schedule.to_dict()) == schedule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown netchaos field"):
            NetChaosSchedule.from_dict({"seed": 1, "drop_rate": 0.5})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            NetChaosSchedule.from_dict([1, 2, 3])

    def test_load_schedule_from_file(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({"seed": 9, "slowloris_fraction": 0.5,
                                    "drip_chunk_bytes": 8}))
        schedule = load_schedule(str(path))
        assert schedule.seed == 9
        assert schedule.slowloris_fraction == 0.5
        assert schedule.drip_chunk_bytes == 8

    def test_is_null(self):
        assert NetChaosSchedule().is_null
        assert not NetChaosSchedule(drop_fraction=0.1).is_null


# -- paced_write ------------------------------------------------------------------------


class TestPacedWrite:
    def test_delivers_all_bytes_in_chunks(self):
        async def main():
            received = bytearray()
            done = asyncio.Event()

            async def handler(reader, writer):
                while True:
                    chunk = await reader.read(4096)
                    if not chunk:
                        break
                    received.extend(chunk)
                writer.close()
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = bytes(range(256)) * 8
            await paced_write(writer, payload, chunk_bytes=64, delay_s=0.0)
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), 5.0)
            server.close()
            await server.wait_closed()
            return bytes(received), payload

        received, payload = asyncio.run(main())
        assert received == payload

    def test_rejects_bad_chunk_size(self):
        async def main():
            # Validation fires before the writer is touched.
            with pytest.raises(ValueError):
                await paced_write(None, b"x", chunk_bytes=0, delay_s=0.0)

        asyncio.run(main())


# -- the proxy --------------------------------------------------------------------------


async def start_upstream(response: bytes):
    """A one-shot upstream: read until blank line, write ``response``."""

    async def handler(reader, writer):
        try:
            await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 10.0)
            writer.write(response)
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def proxy_test(schedule, scenario, response=b"HTTP/1.0 200 OK\r\n\r\nhello"):
    """Run ``scenario(proxy)`` with a live upstream+proxy pair."""

    async def main():
        upstream, upstream_port = await start_upstream(response)
        proxy = ChaosProxy("127.0.0.1", upstream_port, schedule)
        await proxy.start()
        try:
            return await scenario(proxy)
        finally:
            await proxy.stop()
            upstream.close()
            await upstream.wait_closed()

    return asyncio.run(main())


class TestChaosProxy:
    REQUEST = b"GET / HTTP/1.0\r\nHost: t\r\n\r\n"

    def test_clean_connection_passes_through(self):
        async def scenario(proxy):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.bound_port
            )
            writer.write(self.REQUEST)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            writer.close()
            await writer.wait_closed()
            return raw

        raw = proxy_test(NetChaosSchedule(), scenario)
        assert raw.endswith(b"hello")

    def test_dropped_connection_yields_no_bytes(self):
        async def scenario(proxy):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.bound_port
            )
            writer.write(self.REQUEST)
            try:
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), 10.0)
            except (ConnectionError, OSError):
                raw = b""
            writer.close()
            # An aborted socket may refuse the FIN handshake; that is
            # the point of the drop.
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            # Give the proxy's finally block a tick to run.
            await asyncio.sleep(0.05)
            return raw, dict(proxy.counters), proxy.open_connections

        raw, counters, open_connections = proxy_test(
            NetChaosSchedule(drop_fraction=1.0), scenario
        )
        assert raw == b""
        assert counters["dropped"] == 1
        assert counters["server_bytes"] == 0
        assert open_connections == 0

    def test_reset_truncates_the_response(self):
        async def scenario(proxy):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.bound_port
            )
            writer.write(self.REQUEST)
            await writer.drain()
            received = b""
            try:
                while True:
                    chunk = await asyncio.wait_for(reader.read(4096), 10.0)
                    if not chunk:
                        break
                    received += chunk
            except (ConnectionError, OSError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await asyncio.sleep(0.05)
            return received, dict(proxy.counters), proxy.open_connections

        body = b"x" * 4096
        response = b"HTTP/1.0 200 OK\r\n\r\n" + body
        received, counters, open_connections = proxy_test(
            NetChaosSchedule(reset_fraction=1.0, reset_after_bytes=64),
            scenario, response=response,
        )
        # At most the reset budget crossed the wire; never the full body.
        assert len(received) <= 64
        assert counters["reset"] == 1
        assert open_connections == 0

    def test_counters_match_plan_counts(self):
        schedule = NetChaosSchedule(seed=2, drop_fraction=0.3,
                                    reset_fraction=0.3)
        connections = 12
        expected = schedule.plan_counts(connections)

        async def scenario(proxy):
            for _ in range(connections):
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.bound_port
                    )
                    writer.write(self.REQUEST)
                    await writer.drain()
                    await asyncio.wait_for(reader.read(), 10.0)
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await asyncio.sleep(0.1)
            return dict(proxy.counters), proxy.open_connections

        counters, open_connections = proxy_test(schedule, scenario)
        assert counters["connections"] == connections
        assert counters["dropped"] == expected.get("drop", 0)
        assert counters["reset"] == expected.get("reset", 0)
        assert counters["clean"] == expected.get("clean", 0)
        assert counters["closed"] == connections
        assert open_connections == 0

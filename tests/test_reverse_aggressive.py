"""Reverse aggressive: offline schedule construction and forward execution."""

import pytest

from repro.core import ReverseAggressive, Simulator
from repro.core.reverse_aggressive import (
    APPENDIX_F_BATCH_SIZES,
    APPENDIX_F_FETCH_TIMES,
)
from tests.conftest import make_trace, run, simple_config


class TestScheduleConstruction:
    def _bound_policy(self, blocks, cache_blocks=4, num_disks=1, **kw):
        trace = make_trace(blocks)
        policy = ReverseAggressive(**kw)
        Simulator(trace, policy, num_disks, simple_config(cache_blocks))
        return policy

    def test_releases_are_nondecreasing(self):
        policy = self._bound_policy(
            [0, 1, 2, 3, 0, 1, 2, 3, 4, 5], cache_blocks=3,
            fetch_time_estimate=2,
        )
        releases = [release for release, _block in policy._evictions]
        assert releases == sorted(releases)

    def test_no_eviction_released_before_blocks_last_prior_use(self):
        """An eviction's release index must be after the block's final use
        before it gets refetched — otherwise the forward pass would evict a
        block that is still needed."""
        blocks = [0, 1, 2, 0, 1, 2, 3, 4]
        policy = self._bound_policy(blocks, cache_blocks=3,
                                    fetch_time_estimate=2)
        for release, block in policy._evictions:
            uses_before = [i for i in range(release) if blocks[i] == block]
            uses_after = [i for i in range(release, len(blocks))
                          if blocks[i] == block]
            if uses_before and uses_after:
                assert release > max(uses_before)

    def test_fully_cacheable_trace_needs_no_evictions(self):
        policy = self._bound_policy([0, 1, 2, 0, 1, 2], cache_blocks=4,
                                    fetch_time_estimate=2)
        assert policy._evictions == []

    def test_auto_estimate_sequential_vs_random(self):
        sequential = self._bound_policy(list(range(40)), cache_blocks=8)
        import random
        rng = random.Random(0)
        scattered = [rng.randrange(1000) * 7 for _ in range(40)]
        random_policy = self._bound_policy(scattered, cache_blocks=8)
        # both auto; the estimate itself is internal, but the policy must
        # bind without error and build a schedule either way
        assert sequential.sim is not None
        assert random_policy.sim is not None

    def test_appendix_f_grids_exported(self):
        assert APPENDIX_F_FETCH_TIMES == (4, 8, 16, 32, 64, 128)
        assert 160 in APPENDIX_F_BATCH_SIZES


class TestForwardExecution:
    def test_completes_any_trace(self):
        blocks = [0, 1, 2, 3, 4, 1, 0, 5, 6, 2] * 3
        result = run(blocks, policy="reverse-aggressive", cache_blocks=4,
                     fetch_time_estimate=4)
        assert result.references == len(blocks)

    def test_beats_demand_when_io_bound(self):
        blocks = list(range(16)) * 4
        demand = run(blocks, policy="demand", cache_blocks=12, compute_ms=5.0)
        reverse = run(blocks, policy="reverse-aggressive", cache_blocks=12,
                      compute_ms=5.0, fetch_time_estimate=2)
        assert reverse.elapsed_ms < demand.elapsed_ms

    def test_close_to_best_of_fh_and_aggressive(self):
        """The paper's headline: reverse aggressive tracks the better of
        the two practical algorithms in any configuration (here, loosely)."""
        blocks = list(range(16)) * 6
        best = min(
            run(blocks, policy="fixed-horizon", cache_blocks=12,
                compute_ms=5.0, horizon=2).elapsed_ms,
            run(blocks, policy="aggressive", cache_blocks=12,
                compute_ms=5.0, batch_size=8).elapsed_ms,
        )
        reverse = min(
            run(blocks, policy="reverse-aggressive", cache_blocks=12,
                compute_ms=5.0, fetch_time_estimate=f,
                reverse_batch_size=8).elapsed_ms
            for f in (2, 4, 8)
        )
        assert reverse <= best * 1.15

    def test_larger_estimate_is_more_conservative(self):
        """Section 4.3: a larger F makes reverse aggressive delay fetches
        (fewer wasted prefetches), a smaller F makes it aggressive."""
        blocks = list(range(20)) * 4
        eager = run(blocks, policy="reverse-aggressive", cache_blocks=10,
                    compute_ms=8.0, fetch_time_estimate=1)
        cautious = run(blocks, policy="reverse-aggressive", cache_blocks=10,
                       compute_ms=8.0, fetch_time_estimate=64)
        assert eager.fetches >= cautious.fetches

    def test_do_no_harm_still_enforced(self):
        log = []

        class Spy(ReverseAggressive):
            def issue(self, block, victim):
                cursor = self.sim.cursor
                log.append(
                    (
                        self.sim.index.next_use(block, cursor),
                        None if victim is None
                        else self.sim.index.next_use(victim, cursor),
                    )
                )
                super().issue(block, victim)

        blocks = [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
        trace = make_trace(blocks)
        sim = Simulator(trace, Spy(fetch_time_estimate=2), 1,
                        simple_config(cache_blocks=4))
        sim.run()
        for fetch_pos, victim_next in log:
            if victim_next is not None:
                # never-again victims satisfy this too: never > any position
                assert victim_next > fetch_pos

    def test_single_pass_trace_equivalent_to_aggressive_shape(self):
        blocks = list(range(30))
        reverse = run(blocks, policy="reverse-aggressive", cache_blocks=40,
                      compute_ms=2.0, fetch_time_estimate=5)
        agg = run(blocks, policy="aggressive", cache_blocks=40,
                  compute_ms=2.0)
        # All-cold single-pass: both fetch each block exactly once.
        assert reverse.fetches == agg.fetches == 30

    def test_name_reflects_parameters(self):
        assert ReverseAggressive().name == "reverse-aggressive"
        assert "F=8" in ReverseAggressive(fetch_time_estimate=8).name

"""Locality analysis: Mattson distances, miss-ratio curves, metrics."""

import random

import pytest

from repro.analysis.locality import (
    characterize,
    hot_block_share,
    miss_ratio_curve,
    reuse_distances,
    sequentiality,
    working_set_curve,
)
from repro.core.nextref import INFINITE
from repro.trace import build as build_workload


class TestReuseDistances:
    def test_first_access_infinite(self):
        assert reuse_distances([1, 2, 3]) == [INFINITE, INFINITE, INFINITE]

    def test_immediate_reuse_distance_zero(self):
        assert reuse_distances([1, 1])[1] == 0.0

    def test_distance_counts_distinct_intervening(self):
        # 1, 2, 2, 3, 1: the second 1 saw {2, 3} in between -> distance 2.
        distances = reuse_distances([1, 2, 2, 3, 1])
        assert distances[4] == 2.0
        assert distances[2] == 0.0

    def test_matches_naive_stack_simulation(self):
        rng = random.Random(5)
        blocks = [rng.randrange(12) for _ in range(300)]

        def naive(blocks):
            out, stack = [], []
            for b in blocks:
                if b in stack:
                    depth = len(stack) - 1 - stack.index(b)
                    out.append(float(depth))
                    stack.remove(b)
                else:
                    out.append(INFINITE)
                stack.append(b)
            return out

        assert reuse_distances(blocks) == naive(blocks)

    def test_empty(self):
        assert reuse_distances([]) == []


class TestMissRatioCurve:
    def test_loop_one_over_cache_is_all_misses(self):
        blocks = [0, 1, 2] * 10
        curve = miss_ratio_curve(blocks, [2, 3])
        assert curve[2] == 1.0  # LRU pathological loop
        assert curve[3] == pytest.approx(3 / 30)  # only cold misses

    def test_monotone_nonincreasing_in_size(self):
        rng = random.Random(6)
        blocks = [rng.randrange(40) for _ in range(500)]
        sizes = [1, 2, 4, 8, 16, 32, 64]
        curve = miss_ratio_curve(blocks, sizes)
        ratios = [curve[s] for s in sizes]
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_cache_of_distinct_size_only_cold_misses(self):
        blocks = [0, 1, 2, 0, 1, 2, 0]
        curve = miss_ratio_curve(blocks, [3])
        assert curve[3] == pytest.approx(3 / 7)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            miss_ratio_curve([1], [0])

    def test_empty_trace(self):
        assert miss_ratio_curve([], [4]) == {4: 0.0}


class TestSequentiality:
    def test_pure_sequential(self):
        assert sequentiality(list(range(50))) == 1.0

    def test_pure_random_near_zero(self):
        rng = random.Random(7)
        blocks = [rng.randrange(10_000) for _ in range(500)]
        assert sequentiality(blocks) < 0.05

    def test_short_traces(self):
        assert sequentiality([]) == 0.0
        assert sequentiality([5]) == 0.0

    def test_paper_traces_ordering(self):
        """dinero (single sequential file) must be far more sequential than
        postgres-select (index-driven random)."""
        dinero = build_workload("dinero", scale=0.2)
        postgres = build_workload("postgres-select", scale=0.2)
        assert sequentiality(dinero.blocks) > 0.9
        assert sequentiality(postgres.blocks) < 0.3


class TestWorkingSetAndHotness:
    def test_working_set_bounded_by_window(self):
        blocks = [0, 1] * 50
        curve = working_set_curve(blocks, [4, 10])
        assert curve[4] == 2.0
        assert curve[10] == 2.0

    def test_working_set_grows_with_window_on_scan(self):
        blocks = list(range(100))
        curve = working_set_curve(blocks, [5, 20])
        assert curve[20] > curve[5]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            working_set_curve([1], [0])

    def test_hot_share_uniform(self):
        blocks = list(range(10)) * 10
        assert hot_block_share(blocks, 0.1) == pytest.approx(0.1)

    def test_hot_share_skewed(self):
        blocks = [0] * 90 + list(range(1, 11))
        assert hot_block_share(blocks, 0.1) == pytest.approx(0.9)

    def test_glimpse_is_hot_block_dominated(self):
        glimpse = build_workload("glimpse", scale=0.2)
        uniform_share = 0.1
        assert hot_block_share(glimpse.blocks, 0.1) > uniform_share * 3


class TestCharacterize:
    def test_fingerprint_keys(self):
        trace = build_workload("ld", scale=0.1)
        fp = characterize(trace)
        assert fp["references"] == trace.references
        assert fp["distinct_blocks"] == trace.distinct_blocks
        assert 0 <= fp["sequentiality"] <= 1
        assert fp["miss_ratio_full_cache"] <= fp["miss_ratio_small_cache"]

    def test_full_cache_leaves_only_cold_misses(self):
        trace = build_workload("dinero", scale=0.1)
        fp = characterize(trace)
        expected = trace.distinct_blocks / trace.references
        assert fp["miss_ratio_full_cache"] == pytest.approx(expected, abs=1e-3)


class TestMattsonMatchesSimulator:
    """The analytic miss-ratio curve and the simulated LRU-demand policy are
    independent implementations of the same mathematics: predicted misses
    must equal simulated fetches exactly, at every cache size."""

    @pytest.mark.parametrize("name", ["glimpse", "cscope1", "ld"])
    def test_predicted_misses_equal_lru_fetches(self, name):
        import repro

        trace = build_workload(name, scale=0.15)
        distinct = trace.distinct_blocks
        sizes = [max(4, distinct // 8), max(4, distinct // 2), distinct]
        curve = miss_ratio_curve(trace.blocks, sizes)
        for size in sizes:
            predicted = round(curve[size] * trace.references)
            simulated = repro.run_simulation(
                trace, policy="lru-demand", num_disks=1, cache_blocks=size
            ).fetches
            assert predicted == simulated, (
                f"{name} K={size}: Mattson {predicted} vs LRU sim {simulated}"
            )

    def test_hypothesis_random_traces(self):
        import random

        import repro
        from repro.trace import Trace

        rng = random.Random(11)
        for _ in range(5):
            blocks = [rng.randrange(15) for _ in range(120)]
            trace = Trace("rand", blocks, [1.0] * len(blocks))
            for size in (2, 5, 15):
                predicted = round(
                    miss_ratio_curve(blocks, [size])[size] * len(blocks)
                )
                simulated = repro.run_simulation(
                    trace, policy="lru-demand", num_disks=1, cache_blocks=size
                ).fetches
                assert predicted == simulated

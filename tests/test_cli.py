"""Command-line interface."""

import pytest

from repro.cli import main


class TestTraces:
    def test_traces_lists_all_ten(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        for name in ("dinero", "cscope3", "glimpse", "synth"):
            assert name in out
        assert "paper_reads" in out


class TestRun:
    def test_run_prints_breakdown(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "2",
            "--scale", "0.1", "--cache", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "demand" in out
        assert "elapsed_s" in out

    def test_run_rejects_unknown_trace(self):
        with pytest.raises(SystemExit):
            main(["run", "-t", "nonesuch"])

    def test_run_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["run", "-t", "ld", "-p", "lru"])


class TestObservability:
    def test_trace_out_writes_perfetto_json(self, capsys, tmp_path):
        out_path = tmp_path / "run.trace.json"
        code = main([
            "run", "-t", "ld", "-p", "forestall", "-d", "2",
            "--scale", "0.1", "--cache", "128",
            "--trace-out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stall attribution:" in out
        assert "ui.perfetto.dev" in out
        import json

        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["trace"] == "ld"

    def test_metrics_writes_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.1", "--cache", "128", "--metrics", str(out_path),
        ])
        assert code == 0
        import json

        first = json.loads(out_path.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_run_without_obs_flags_prints_no_attribution(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.1", "--cache", "128",
        ])
        assert code == 0
        assert "stall attribution:" not in capsys.readouterr().out

    def test_profile_json_to_stdout(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.1", "--cache", "128", "--profile-json", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert '"phases"' in out
        assert '"total_ms"' in out

    def test_profile_json_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "profile.json"
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.1", "--cache", "128",
            "--profile-json", str(out_path),
        ])
        assert code == 0
        import json

        payload = json.loads(out_path.read_text())
        assert set(payload) == {"phases", "total_ms"}


class TestReport:
    def test_report_prints_all_sections(self, capsys):
        code = main([
            "report", "-t", "ld", "-p", "forestall", "-d", "2",
            "--scale", "0.1", "--cache", "128", "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for needle in (
            "stall attribution:", "disk utilization:",
            "counters (non-zero):", "stall episodes:",
        ):
            assert needle in out

    def test_report_accepts_fault_flags(self, capsys):
        code = main([
            "report", "-t", "ld", "-p", "forestall", "-d", "2",
            "--scale", "0.1", "--cache", "128",
            "--fault-error-rate", "0.05",
        ])
        assert code == 0
        assert "fault" in capsys.readouterr().out

    def test_report_exports_too(self, capsys, tmp_path):
        out_path = tmp_path / "report.trace.json"
        code = main([
            "report", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.1", "--cache", "128",
            "--trace-out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()


class TestSweep:
    def test_sweep_runs_selected_policies(self, capsys):
        code = main([
            "sweep", "-t", "ld", "-p", "demand,fixed-horizon",
            "-d", "1,2", "--scale", "0.1", "--cache", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fixed-horizon" in out
        assert out.count("demand") >= 2  # one row per disk count

    def test_fcfs_discipline_accepted(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "--scale", "0.1",
            "--cache", "128", "--discipline", "fcfs",
        ])
        assert code == 0


class TestParsing:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestFigure:
    def test_figure_renders_bars(self, capsys):
        code = main([
            "figure", "-t", "ld", "-d", "1,2", "--scale", "0.1",
            "--cache", "128", "-p", "fixed-horizon,aggressive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "|" in out
        assert "1 disk" in out and "2 disks" in out


class TestCharacterize:
    def test_fingerprint_table(self, capsys):
        code = main(["characterize", "--traces", "ld", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sequentiality" in out
        assert "ld" in out


class TestHints:
    def test_hint_sensitivity_table(self, capsys):
        code = main([
            "hints", "-t", "ld", "-d", "2", "--scale", "0.1",
            "--cache", "128", "-p", "fixed-horizon",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perfect" in out
        assert "25% missing" in out


class TestFaultFlags:
    def test_run_with_error_rate_reports_faults(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "2", "--scale", "0.1",
            "--cache", "128", "--fault-error-rate", "0.1",
            "--fault-seed", "3", "--fault-max-retries", "50",
        ])
        assert code == 0
        assert "faults=" in capsys.readouterr().out

    def test_run_with_kill_reports_degraded(self, capsys):
        code = main([
            "run", "-t", "ld", "-p", "demand", "-d", "2", "--scale", "0.1",
            "--cache", "128", "--fault-kill", "1@0",
        ])
        assert code == 0
        assert "DEGRADED" in capsys.readouterr().out

    def test_sweep_with_slow_window(self, capsys):
        code = main([
            "sweep", "-t", "ld", "-p", "demand,fixed-horizon", "-d", "2",
            "--scale", "0.1", "--cache", "128", "--fault-slow", "0:3",
        ])
        assert code == 0
        assert "fixed-horizon" in capsys.readouterr().out

    def test_malformed_slow_spec_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "run", "-t", "ld", "--scale", "0.1",
                "--fault-slow", "nonsense",
            ])

    def test_malformed_kill_spec_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "run", "-t", "ld", "--scale", "0.1",
                "--fault-kill", "0:5",
            ])


class TestFaultsCommand:
    def test_fault_sensitivity_table(self, capsys):
        code = main([
            "faults", "-t", "ld", "-d", "2", "--scale", "0.1",
            "--cache", "128", "-p", "demand,fixed-horizon",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "healthy" in out
        assert "10% errors" in out
        assert "disk 0 3x slow" in out


class TestExport:
    def test_export_text_round_trips(self, capsys, tmp_path):
        out = str(tmp_path / "ld.trace")
        code = main(["export", "-t", "ld", "--scale", "0.05", "-o", out])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        from repro.trace.io import load

        trace = load(out)
        assert trace.references > 0

    def test_export_json(self, tmp_path):
        out = str(tmp_path / "ld.json")
        assert main(["export", "-t", "ld", "--scale", "0.05", "-o", out]) == 0
        from repro.trace import Trace

        assert Trace.load(out).references > 0


class TestSplitList:
    def _split(self, *args, **kwargs):
        from repro.cli import _split_list

        return _split_list(*args, **kwargs)

    def test_strips_tokens_and_drops_empties(self):
        assert self._split("a, b,,c ,", "policies") == ["a", "b", "c"]

    def test_all_empty_rejected_with_option_name(self):
        with pytest.raises(SystemExit, match="--disks"):
            self._split(" , ,", "disks")

    def test_unknown_token_named_in_error(self):
        with pytest.raises(SystemExit, match="bogus"):
            self._split("demand,bogus", "policies",
                        allowed={"demand", "forestall"})

    def test_integer_variant_rejects_non_numbers(self):
        from repro.cli import _split_ints

        assert _split_ints("1, 2,4", "disks") == [1, 2, 4]
        with pytest.raises(SystemExit, match="'two'"):
            _split_ints("1,two", "disks")

    def test_sweep_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit, match="nope"):
            main(["sweep", "-t", "ld", "-p", "nope",
                  "-d", "1", "--scale", "0.05"])

    def test_sweep_tolerates_spaces_and_trailing_comma(self, capsys):
        code = main(["sweep", "-t", "ld", "-p", " demand , forestall ,",
                     "-d", " 1, 2 ", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "demand" in out and "forestall" in out

    def test_characterize_rejects_unknown_trace(self):
        with pytest.raises(SystemExit, match="nosuch"):
            main(["characterize", "--traces", "ld,nosuch"])

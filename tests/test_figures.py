"""Terminal figure rendering."""

import pytest

from repro.analysis.figures import (
    COMPUTE_GLYPH,
    DRIVER_GLYPH,
    LEGEND,
    STALL_GLYPH,
    render_figure,
    render_sweep_curve,
)
from repro.core.results import SimulationResult


def result(policy, disks, compute=1000.0, driver=100.0, stall=400.0):
    return SimulationResult(
        trace_name="t", policy_name=policy, num_disks=disks, cache_blocks=64,
        fetches=10, compute_ms=compute, driver_ms=driver, stall_ms=stall,
        elapsed_ms=compute + driver + stall, average_fetch_ms=10.0,
        disk_utilization=0.5,
    )


class TestRenderFigure:
    def test_contains_title_and_legend(self):
        out = render_figure("My Figure", [result("a", 1)])
        assert out.startswith("My Figure")
        assert LEGEND in out

    def test_groups_by_disks(self):
        out = render_figure("f", [result("a", 1), result("a", 2)])
        assert "1 disk " in out
        assert "2 disks" in out

    def test_bar_components_proportional(self):
        out = render_figure(
            "f", [result("a", 1, compute=500, driver=0, stall=500)], width=40
        )
        bar_line = [l for l in out.splitlines() if "|" in l][0]
        bar = bar_line.split("|")[1]
        assert bar.count(COMPUTE_GLYPH) == pytest.approx(20, abs=1)
        assert bar.count(STALL_GLYPH) == pytest.approx(20, abs=1)
        assert bar.count(DRIVER_GLYPH) == 0

    def test_common_scale_longest_bar_fills(self):
        fast = result("fast", 1, compute=100, driver=0, stall=0)
        slow = result("slow", 1, compute=1000, driver=0, stall=0)
        out = render_figure("f", [fast, slow], width=40)
        lines = [l for l in out.splitlines() if "|" in l]
        fast_bar = lines[0].split("|")[1]
        slow_bar = lines[1].split("|")[1]
        assert slow_bar.count(COMPUTE_GLYPH) == 40
        assert fast_bar.count(COMPUTE_GLYPH) == 4

    def test_policy_order_stable_across_parameter_suffixes(self):
        out = render_figure(
            "f",
            [
                result("fh(H=9)", 1), result("agg(batch=12)", 1),
                result("fh(H=9)", 2), result("agg(batch=6)", 2),
            ],
        )
        lines = [l for l in out.splitlines() if "|" in l]
        assert "fh" in lines[0] and "agg" in lines[1]
        assert "fh" in lines[2] and "agg" in lines[3]

    def test_elapsed_annotated(self):
        out = render_figure("f", [result("a", 1)])
        assert "1.50s" in out

    def test_empty(self):
        assert "no results" in render_figure("f", [])


class TestRenderSweepCurve:
    def test_series_glyphs_and_names(self):
        out = render_sweep_curve(
            "sweep", {"alpha": {1: 5.0, 2: 3.0}, "beta": {1: 4.0, 2: 6.0}}
        )
        assert "a = alpha" in out
        assert "b = beta" in out
        assert "sweep" in out

    def test_extremes_on_grid_edges(self):
        out = render_sweep_curve("s", {"only": {1: 1.0, 2: 9.0}}, height=6)
        lines = out.splitlines()
        body = [l for l in lines if "|" in l]
        assert "a" in body[0]   # max value on the top row
        assert "a" in body[-1]  # min value on the bottom row

    def test_flat_series_does_not_crash(self):
        out = render_sweep_curve("s", {"flat": {1: 2.0, 2: 2.0}})
        assert "flat" in out

    def test_empty(self):
        assert "no data" in render_sweep_curve("s", {})

"""Theorem 2: reverse aggressive is near-optimal in the theoretical model.

The paper's theoretical anchor (Kimbrel & Karlin): for any request sequence
and any layout, reverse aggressive's elapsed time is at most
``(1 + F d / K)`` times optimal.  We execute reverse aggressive entirely in
the theoretical model and compare against the brute-force optimum on tiny
instances — including the Figure 1 example, where reverse aggressive's
load-balancing eviction must beat greedy aggressive.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.theory import (
    optimal_elapsed,
    run_aggressive_model,
    run_reverse_aggressive_model,
)
from tests.test_theory_model import FIG1_CACHE, FIG1_DISK, FIG1_SEQUENCE


class TestFigure1:
    def test_reverse_aggressive_achieves_the_optimal_six(self):
        """Reverse aggressive's whole reason to exist: on the Figure 1
        layout it makes the load-balancing eviction (d, not F) and matches
        the optimal schedule that greedy aggressive misses."""
        run = run_reverse_aggressive_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, batch_size=1, initial_cache=FIG1_CACHE,
        )
        greedy = run_aggressive_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, batch_size=1, initial_cache=FIG1_CACHE,
        )
        assert greedy.elapsed == 7
        assert run.elapsed <= greedy.elapsed


class TestTheorem2Bound:
    CASES = [
        ([1, 2, 3, 1, 2, 3], 2, 2, 1),
        ([1, 2, 3, 4, 1, 2], 3, 2, 2),
        ([5, 1, 5, 2, 5, 3], 2, 2, 2),
        ([1, 2, 1, 3, 1, 2], 2, 3, 1),
        ([4, 3, 2, 1, 4, 3], 3, 2, 2),
        ([1, 2, 3, 4, 5, 1], 3, 2, 3),
    ]

    @pytest.mark.parametrize("blocks,K,F,d", CASES)
    def test_within_theorem_bound(self, blocks, K, F, d):
        disk_of = lambda b: b % d
        run = run_reverse_aggressive_model(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        opt = optimal_elapsed(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        bound = (1 + F * d / K) * opt + d * F  # additive cold-start slack
        assert run.elapsed <= bound

    @given(
        blocks=st.lists(st.integers(0, 5), min_size=2, max_size=8),
        K=st.integers(2, 4),
        F=st.integers(1, 3),
        d=st.integers(1, 2),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_instances_within_bound(self, blocks, K, F, d):
        disk_of = lambda b: b % d
        run = run_reverse_aggressive_model(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        opt = optimal_elapsed(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        bound = (1 + F * d / K) * opt + d * F
        assert run.elapsed <= bound

    @pytest.mark.parametrize("blocks,K,F,d", CASES)
    def test_serves_every_reference(self, blocks, K, F, d):
        run = run_reverse_aggressive_model(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d,
            disk_of=lambda b: b % d,
        )
        assert run.references == len(blocks)

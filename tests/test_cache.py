"""Buffer cache invariants: capacity, reservations, eviction timing."""

import pytest

from repro.core.cache import BufferCache, CacheFullError


class TestBasics:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            BufferCache(0)

    def test_starts_empty(self):
        cache = BufferCache(4)
        assert len(cache) == 0
        assert cache.free_buffers == 4

    def test_fetch_lifecycle(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, victim=None)
        assert cache.is_in_flight(1)
        assert 1 not in cache  # not referenceable while in flight
        cache.complete_fetch(1)
        assert 1 in cache
        assert not cache.is_in_flight(1)


class TestReservationAccounting:
    def test_in_flight_consumes_buffer(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, None)
        assert cache.free_buffers == 1
        cache.begin_fetch(2, None)
        assert cache.free_buffers == 0

    def test_full_cache_requires_victim(self):
        cache = BufferCache(1)
        cache.begin_fetch(1, None)
        cache.complete_fetch(1)
        with pytest.raises(CacheFullError):
            cache.begin_fetch(2, victim=None)

    def test_eviction_frees_at_issue_not_completion(self):
        """Section 2.1: 'the evicted block becomes unavailable at the moment
        the fetch starts.'"""
        cache = BufferCache(1)
        cache.begin_fetch(1, None)
        cache.complete_fetch(1)
        cache.begin_fetch(2, victim=1)
        assert 1 not in cache       # gone immediately
        assert 2 not in cache       # not yet arrived
        cache.complete_fetch(2)
        assert 2 in cache

    def test_victim_must_be_resident(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, None)
        with pytest.raises(ValueError):
            cache.begin_fetch(2, victim=1)  # 1 is in flight, not resident

    def test_cannot_fetch_resident_block(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, None)
        cache.complete_fetch(1)
        with pytest.raises(ValueError):
            cache.begin_fetch(1, None)

    def test_cannot_double_fetch(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, None)
        with pytest.raises(ValueError):
            cache.begin_fetch(1, None)

    def test_complete_unknown_fetch_raises(self):
        cache = BufferCache(2)
        with pytest.raises(ValueError):
            cache.complete_fetch(9)


class TestCounters:
    def test_eviction_and_fill_counts(self):
        cache = BufferCache(1)
        cache.begin_fetch(1, None)
        cache.complete_fetch(1)
        cache.begin_fetch(2, victim=1)
        cache.complete_fetch(2)
        assert cache.evictions == 1
        assert cache.fills == 2

    def test_present_or_coming(self):
        cache = BufferCache(2)
        cache.begin_fetch(1, None)
        assert cache.present_or_coming(1)
        cache.complete_fetch(1)
        assert cache.present_or_coming(1)
        assert not cache.present_or_coming(2)


class TestInvariantUnderChurn:
    def test_occupancy_never_exceeds_capacity(self):
        cache = BufferCache(3)
        import random

        rng = random.Random(0)
        resident_rotation = []
        next_block = 0
        for _ in range(200):
            if cache.free_buffers > 0:
                cache.begin_fetch(next_block, None)
            else:
                victim = rng.choice(sorted(cache.resident))
                cache.begin_fetch(next_block, victim)
            cache.complete_fetch(next_block)
            next_block += 1
            assert len(cache.resident) + len(cache.in_flight) <= 3

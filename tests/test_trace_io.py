"""Text trace format: parsing, serialization, round-trips."""

import pytest

from repro.trace import Trace
from repro.trace.io import TraceFormatError, dump, dumps, load, loads


SAMPLE = """\
# name: sample-app
# description: a tiny capture

R 10 0.5
W 10 1.25
R 11
"""


class TestLoads:
    def test_parses_references(self):
        trace = loads(SAMPLE)
        assert trace.blocks == [10, 10, 11]
        assert trace.compute_ms == [0.5, 1.25, 1.0]
        assert trace.writes == [False, True, False]

    def test_header_directives(self):
        trace = loads(SAMPLE)
        assert trace.name == "sample-app"
        assert trace.description == "a tiny capture"

    def test_read_only_trace_has_no_write_mask(self):
        trace = loads("R 1 1.0\nR 2 1.0\n")
        assert trace.writes is None

    def test_lowercase_ops_accepted(self):
        trace = loads("r 5\nw 6\n")
        assert trace.writes == [False, True]

    def test_default_compute_is_1ms(self):
        assert loads("R 1\n").compute_ms == [1.0]

    def test_bad_operation(self):
        with pytest.raises(TraceFormatError, match="unknown operation"):
            loads("X 1 1.0\n")

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError, match="expected"):
            loads("R 1 1.0 extra\n")

    def test_bad_number(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            loads("R banana\n")

    def test_negative_compute(self):
        with pytest.raises(TraceFormatError, match="negative"):
            loads("R 1 -2\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError, match="no references"):
            loads("# nothing here\n")


class TestRoundTrip:
    def test_dumps_loads_identity(self):
        original = loads(SAMPLE)
        again = loads(dumps(original))
        assert again.blocks == original.blocks
        assert again.compute_ms == original.compute_ms
        assert again.writes == original.writes
        assert again.name == original.name

    def test_file_round_trip(self, tmp_path):
        trace = Trace("disk-file", [1, 2, 3], [1.0, 2.0, 3.0])
        path = str(tmp_path / "trace.txt")
        dump(trace, path)
        loaded = load(path)
        assert loaded.blocks == trace.blocks
        assert loaded.name == "disk-file"

    def test_imported_trace_simulates(self):
        import repro

        trace = loads(SAMPLE)
        result = repro.run_simulation(trace, policy="demand", num_disks=1,
                                      cache_blocks=8)
        assert result.references == 3

"""simlint rule-engine tests: per-rule fixtures, suppressions, baseline,
and the JSON report schema."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, lint_paths, lint_source
from repro.lint.engine import render_json, render_text
from repro.lint.rules import all_rules
from repro.lint.sarif import render_sarif, sarif_dict


def rules_hit(source, module="repro.core.snippet", select=None):
    """Rule ids triggered by a source snippet, as a set."""
    source = textwrap.dedent(source)
    findings = lint_source(source, module=module)
    hits = {f.rule for f in findings}
    if select is not None:
        hits &= {select}
    return hits


# -- SL001: unseeded/global random ------------------------------------------------------


class TestUnseededRandom:
    def test_global_call_flagged(self):
        src = """
        import random

        def jitter():
            return random.random()
        """
        assert rules_hit(src) == {"SL001"}

    def test_aliased_import_flagged(self):
        src = """
        import random as rnd

        def pick(items):
            return rnd.choice(items)
        """
        assert rules_hit(src) == {"SL001"}

    def test_from_import_flagged(self):
        src = """
        from random import shuffle
        """
        assert rules_hit(src) == {"SL001"}

    def test_unseeded_random_instance_flagged(self):
        src = """
        import random

        rng = random.Random()
        """
        assert rules_hit(src) == {"SL001"}

    def test_system_random_flagged(self):
        src = """
        import random

        rng = random.SystemRandom()
        """
        assert rules_hit(src) == {"SL001"}

    def test_seeded_random_instance_clean(self):
        src = """
        import random

        def build(seed: int):
            rng = random.Random(seed)
            return rng.random()
        """
        assert rules_hit(src) == set()

    def test_annotation_use_clean(self):
        src = """
        import random

        def scan(rng: random.Random) -> float:
            return rng.random()
        """
        assert rules_hit(src) == set()


# -- SL002: wall-clock reads ------------------------------------------------------------


class TestWallClock:
    def test_time_time_flagged(self):
        src = """
        import time

        def now_ms():
            return time.time() * 1000.0
        """
        assert rules_hit(src) == {"SL002"}

    def test_perf_counter_flagged(self):
        src = """
        import time

        start = time.perf_counter()
        """
        assert rules_hit(src) == {"SL002"}

    def test_datetime_now_flagged(self):
        src = """
        import datetime

        stamp = datetime.datetime.now()
        """
        assert rules_hit(src) == {"SL002"}

    def test_from_time_import_flagged(self):
        src = """
        from time import perf_counter_ns
        """
        assert rules_hit(src) == {"SL002"}

    def test_repro_perf_exempt(self):
        src = """
        import time

        start = time.perf_counter_ns()
        """
        assert rules_hit(src, module="repro.perf.profiler") == set()

    def test_sleep_clean(self):
        src = """
        import time

        def pause():
            time.sleep(0.1)
        """
        assert rules_hit(src) == set()

    def test_obs_export_exempt(self):
        # repro.obs.export may stamp trace files with their generation
        # time; simulated timestamps still come only from the event loop.
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert rules_hit(src, module="repro.obs.export") == set()

    def test_runner_pool_exempt(self):
        # repro.runner is orchestration, not simulation: timeouts, retry
        # backoff, and deadlines are wall-clock by nature.  The golden
        # digest tests prove no host time leaks into results.
        src = """
        import time

        deadline = time.monotonic() + 60.0
        """
        assert rules_hit(src, module="repro.runner.pool") == set()

    def test_runner_prefix_not_exempt(self):
        # The allowlist is prefix-per-package, not substring: a module
        # merely named like the runner is still checked.
        src = """
        import time

        start = time.monotonic()
        """
        assert rules_hit(src, module="repro.runners") == {"SL002"}

    def test_svc_exempt(self):
        # repro.svc is orchestration one layer above the runner: request
        # timeouts, breaker cooldowns, and latency histograms are
        # host-clock by nature; the chaos bit-identity tests prove none
        # of it leaks into results.
        src = """
        import time

        opened_at = time.monotonic()
        """
        assert rules_hit(src, module="repro.svc.breaker") == set()

    def test_svc_prefix_not_exempt(self):
        # Package-boundary matching again: "repro.svcx" is not the
        # service package.
        src = """
        import time

        start = time.monotonic()
        """
        assert rules_hit(src, module="repro.svcx.breaker") == {"SL002"}

    def test_obs_observer_not_exempt(self):
        # The allowlist covers only the exporter — the observer itself
        # records simulated time and must never touch the host clock.
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert rules_hit(src, module="repro.obs.observer") == {"SL002"}


# -- SL003: unsorted set iteration in core/disk -----------------------------------------


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        src = """
        def scan():
            for disk in {2, 0, 1}:
                print(disk)
        """
        assert "SL003" in rules_hit(src)

    def test_for_over_set_call_flagged(self):
        src = """
        def scan(items):
            for item in set(items):
                print(item)
        """
        assert "SL003" in rules_hit(src)

    def test_dict_comp_over_set_local_flagged(self):
        src = """
        def budgets(size):
            free = {d for d in range(4) if d % 2}
            return {d: size for d in free}
        """
        assert "SL003" in rules_hit(src)

    def test_set_returning_method_flagged(self):
        src = """
        class Policy:
            def _free_disks(self):
                return {d for d in range(4)}

            def fill(self):
                for disk in self._free_disks():
                    print(disk)
        """
        assert "SL003" in rules_hit(src)

    def test_dict_keys_flagged(self):
        src = """
        def walk(table):
            for key in table.keys():
                print(key)
        """
        assert "SL003" in rules_hit(src)

    def test_known_set_attribute_flagged(self):
        src = """
        def walk(cache):
            return [b for b in cache.resident]
        """
        assert "SL003" in rules_hit(src)

    def test_sorted_iteration_clean(self):
        src = """
        def scan(items):
            out = []
            for item in sorted(set(items)):
                out.append(item)
            return out
        """
        assert rules_hit(src) == set()

    def test_order_free_reduction_clean(self):
        src = """
        def low(cache, protected):
            return min(b for b in cache.resident if b not in protected)
        """
        assert rules_hit(src) == set()

    def test_outside_core_disk_not_checked(self):
        src = """
        def scan(items):
            for item in set(items):
                print(item)
        """
        assert rules_hit(src, module="repro.analysis.snippet") == set()

    def test_list_over_set_still_flagged(self):
        src = """
        def scan(items):
            for item in list(set(items)):
                print(item)
        """
        assert "SL003" in rules_hit(src)


# -- SL004: float equality on simulated time --------------------------------------------


class TestTimeEquality:
    def test_time_equality_flagged(self):
        src = """
        def check(service_ms, expected_ms):
            return service_ms == expected_ms
        """
        assert "SL004" in rules_hit(src)

    def test_attribute_time_flagged(self):
        src = """
        def stalled(episode):
            return episode.start_ms != episode.end_ms
        """
        assert "SL004" in rules_hit(src)

    def test_ordering_clean(self):
        src = """
        def positive(compute_ms):
            return compute_ms > 0
        """
        assert rules_hit(src) == set()

    def test_non_time_name_clean(self):
        src = """
        def same(speedup, factor):
            return speedup == factor
        """
        assert rules_hit(src) == set()

    def test_integrality_check_clean(self):
        src = """
        def integral(fetch_time):
            return fetch_time != int(fetch_time)
        """
        assert rules_hit(src) == set()


# -- SL005: list head operations --------------------------------------------------------


class TestListHead:
    def test_pop_zero_flagged(self):
        src = """
        def drain(queue):
            return queue.pop(0)
        """
        assert rules_hit(src) == {"SL005"}

    def test_insert_zero_flagged(self):
        src = """
        def push(queue, item):
            queue.insert(0, item)
        """
        assert rules_hit(src) == {"SL005"}

    def test_pop_last_clean(self):
        src = """
        def drain(queue):
            return queue.pop()
        """
        assert rules_hit(src) == set()

    def test_insert_middle_clean(self):
        src = """
        def place(queue, index, item):
            queue.insert(index, item)
        """
        assert rules_hit(src) == set()

    def test_outside_hot_paths_not_checked(self):
        src = """
        def drain(queue):
            return queue.pop(0)
        """
        assert rules_hit(src, module="repro.analysis.snippet") == set()


# -- SL006: policy contract -------------------------------------------------------------


class TestPolicyContract:
    def test_unknown_hook_flagged(self):
        src = """
        from repro.core.policy import PrefetchPolicy

        class Typo(PrefetchPolicy):
            def on_disk_ready(self, disk, now):
                pass
        """
        assert "SL006" in rules_hit(src)

    def test_wrong_arity_flagged(self):
        src = """
        from repro.core.policy import PrefetchPolicy

        class Wrong(PrefetchPolicy):
            def on_miss(self, cursor):
                pass
        """
        assert "SL006" in rules_hit(src)

    def test_trace_mutation_flagged(self):
        src = """
        from repro.core.policy import PrefetchPolicy

        class Mutator(PrefetchPolicy):
            def before_reference(self, cursor, now):
                self.sim.blocks.append(0)
        """
        assert "SL006" in rules_hit(src)

    def test_trace_item_assignment_flagged(self):
        src = """
        from repro.core.policy import PrefetchPolicy

        class Mutator(PrefetchPolicy):
            def before_reference(self, cursor, now):
                self.sim.compute_ms[cursor] = 0.0
        """
        assert "SL006" in rules_hit(src)

    def test_conforming_policy_clean(self):
        src = """
        from repro.core.policy import PrefetchPolicy

        class Fine(PrefetchPolicy):
            def before_reference(self, cursor, now):
                head = self.sim.compute_ms[:10]
                return sum(head)

            def on_disk_idle(self, disk, now):
                pass
        """
        assert rules_hit(src) == set()

    def test_observer_hook_wrappers_clean(self):
        # The repro.obs instrumentation pattern: hook wrappers are local
        # closures installed on the *instance*, not methods of a Policy
        # class — SL006's contract checks must not fire on them.
        src = """
        class Observer:
            def attach(self, sim):
                policy = sim.policy
                inner = policy.before_reference

                def before_reference(cursor, now):
                    self.counter += 1
                    return inner(cursor, now)

                policy.before_reference = before_reference
        """
        assert rules_hit(src, module="repro.obs.snippet", select="SL006") == set()

    def test_observer_style_policy_class_still_checked(self):
        # The exemption is structural (closures, not classes): a *Policy*
        # class with a malformed hook still fires even if it claims to be
        # tracing instrumentation.
        src = """
        from repro.core.policy import PrefetchPolicy

        class TracingPolicy(PrefetchPolicy):
            def before_reference(self, cursor):
                pass
        """
        assert "SL006" in rules_hit(src, module="repro.obs.snippet")

    def test_registry_checked_across_modules(self):
        registry = textwrap.dedent(
            """
            from nowhere import NotAPolicy

            POLICIES = {
                "bogus": NotAPolicy,
            }
            """
        )
        findings = lint_source(
            registry, module="repro.core", path="core/__init__.py"
        )
        assert {f.rule for f in findings} == {"SL006"}
        assert "bogus" in findings[0].message


# -- SL007: mutable defaults ------------------------------------------------------------


class TestMutableDefault:
    def test_list_default_flagged(self):
        src = """
        def record(value, seen=[]):
            seen.append(value)
            return seen
        """
        assert rules_hit(src) == {"SL007"}

    def test_dict_call_default_flagged(self):
        src = """
        def config(options=dict()):
            return options
        """
        assert rules_hit(src) == {"SL007"}

    def test_kwonly_set_default_flagged(self):
        src = """
        def gather(*, acc={1}):
            return acc
        """
        assert rules_hit(src) == {"SL007"}

    def test_none_default_clean(self):
        src = """
        def record(value, seen=None):
            if seen is None:
                seen = []
            seen.append(value)
            return seen
        """
        assert rules_hit(src) == set()

    def test_tuple_default_clean(self):
        src = """
        def choose(cursor, exclude=()):
            return exclude
        """
        assert rules_hit(src) == set()


# -- SL008: bare except -----------------------------------------------------------------


class TestBareExcept:
    def test_bare_except_flagged(self):
        src = """
        def fetch(disk):
            try:
                disk.read()
            except:
                pass
        """
        assert rules_hit(src) == {"SL008"}

    def test_base_exception_flagged(self):
        src = """
        def fetch(disk):
            try:
                disk.read()
            except BaseException:
                pass
        """
        assert rules_hit(src) == {"SL008"}

    def test_specific_exception_clean(self):
        src = """
        def fetch(disk):
            try:
                disk.read()
            except KeyError:
                return None
        """
        assert rules_hit(src) == set()


# -- SL009: float-sentinel identity comparison ------------------------------------------


class TestFloatSentinelIdentity:
    def test_is_infinite_flagged(self):
        src = """
        INFINITE = float("inf")

        def drop(next_use, fetch_pos):
            if next_use is not INFINITE and next_use <= fetch_pos:
                return True
            return False
        """
        assert rules_hit(src) == {"SL009"}

    def test_is_float_inf_call_flagged(self):
        src = """
        def cold(next_use):
            return next_use is float("inf")
        """
        assert rules_hit(src) == {"SL009"}

    def test_attribute_sentinel_flagged(self):
        src = """
        def cold(next_use, nextref):
            return next_use is nextref.INFINITE
        """
        assert rules_hit(src) == {"SL009"}

    def test_equality_against_sentinel_clean(self):
        src = """
        INFINITE = float("inf")

        def cold(next_use):
            return next_use == INFINITE
        """
        assert rules_hit(src) == set()

    def test_integer_sentinel_comparison_clean(self):
        src = """
        def drop(index, victim, cursor, fetch_pos):
            return index.next_use(victim, cursor) <= fetch_pos
        """
        assert rules_hit(src) == set()

    def test_is_none_clean(self):
        src = """
        def pick(victim):
            return victim is not None
        """
        assert rules_hit(src) == set()

    def test_old_nextref_pattern_fires(self):
        """The exact pattern the batched core removed from repro.core."""
        src = """
        from repro.core.nextref import INFINITE

        def victim_ok(sim, victim, cursor, fetch_position):
            next_use = sim.index.next_use(victim, cursor)
            if next_use is not INFINITE and next_use <= fetch_position:
                return False
            return True
        """
        assert rules_hit(src) == {"SL009"}


# -- suppression comments ---------------------------------------------------------------


class TestSuppressions:
    def test_targeted_suppression(self):
        src = """
        def drain(queue):
            return queue.pop(0)  # simlint: disable=SL005
        """
        assert rules_hit(src) == set()

    def test_blanket_suppression(self):
        src = """
        def drain(queue):
            return queue.pop(0)  # simlint: disable
        """
        assert rules_hit(src) == set()

    def test_wrong_rule_does_not_suppress(self):
        src = """
        def drain(queue):
            return queue.pop(0)  # simlint: disable=SL001
        """
        assert rules_hit(src) == {"SL005"}

    def test_suppression_is_line_scoped(self):
        src = """
        def drain(queue):
            queue.pop(0)  # simlint: disable=SL005
            return queue.pop(0)
        """
        assert rules_hit(src) == {"SL005"}


# -- baseline ---------------------------------------------------------------------------


def _finding(message="m", rule="SL005", path="a.py", line=3):
    return Finding(
        rule=rule, severity="warning", path=path, line=line, col=1, message=message
    )


class TestBaseline:
    def test_round_trip_and_partition(self, tmp_path):
        grandfathered = _finding("old finding")
        path = tmp_path / "baseline.json"
        Baseline.save(path, [grandfathered])
        baseline = Baseline.load(path)
        # Same finding on a different line still matches (line-number free).
        moved = _finding("old finding", line=99)
        fresh = _finding("new finding")
        new, matched, stale = baseline.partition([moved, fresh])
        assert new == [fresh]
        assert matched == [moved]
        assert stale == []

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, [_finding("fixed since")])
        baseline = Baseline.load(path)
        new, matched, stale = baseline.partition([])
        assert new == [] and matched == []
        assert len(stale) == 1 and "fixed since" in stale[0]

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_duplicate_findings_need_duplicate_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, [_finding("dup")])
        baseline = Baseline.load(path)
        new, matched, _ = baseline.partition([_finding("dup"), _finding("dup")])
        assert len(matched) == 1 and len(new) == 1


# -- end-to-end over files + JSON schema ------------------------------------------------


BAD_SOURCE = textwrap.dedent(
    """
    import random

    def jitter(queue):
        queue.pop(0)
        return random.random()
    """
)


class TestLintPaths:
    def _write_package(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        target = package / "bad.py"
        target.write_text(BAD_SOURCE)
        return target

    def test_exit_code_and_findings(self, tmp_path):
        target = self._write_package(tmp_path)
        report = lint_paths([target], all_rules())
        assert report.exit_code == 1
        assert {f.rule for f in report.findings} == {"SL001", "SL005"}

    def test_baseline_silences_known_findings(self, tmp_path):
        target = self._write_package(tmp_path)
        first = lint_paths([target], all_rules())
        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, first.findings)
        second = lint_paths(
            [target], all_rules(), baseline=Baseline.load(baseline_path)
        )
        assert second.exit_code == 0
        assert second.findings == []
        assert len(second.baselined) == 2

    def test_directory_discovery(self, tmp_path):
        self._write_package(tmp_path)
        report = lint_paths([tmp_path], all_rules())
        assert report.files == 3  # two __init__.py + bad.py
        assert report.exit_code == 1

    def test_json_schema(self, tmp_path):
        target = self._write_package(tmp_path)
        report = lint_paths([target], all_rules())
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["exit_code"] == 1
        assert payload["baselined"] == 0
        assert payload["suppressed"] == 0
        assert payload["stale_baseline"] == []
        for entry in payload["findings"]:
            assert set(entry) == {
                "rule", "severity", "path", "line", "col", "message"
            }
            assert isinstance(entry["line"], int)
            assert entry["severity"] in ("error", "warning")

    def test_text_render_mentions_rule_and_location(self, tmp_path):
        target = self._write_package(tmp_path)
        report = lint_paths([target], all_rules())
        text = render_text(report)
        assert "SL001" in text and "SL005" in text
        assert "bad.py" in text
        assert "2 findings" in text

    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        report = lint_paths([broken], all_rules())
        assert report.exit_code == 1
        assert report.parse_errors and report.parse_errors[0].rule == "SL000"


# -- the repo itself must be clean ------------------------------------------------------


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        package = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = lint_paths([package], all_rules())
        assert report.exit_code == 0, render_text(report)
        assert report.findings == []

    def test_module_entry_point(self):
        package = Path(__file__).resolve().parent.parent / "src" / "repro"
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(package), "--format", "json"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []


def findings_for(source, module="repro.core.snippet"):
    """All findings for a snippet (when the message matters, not just the id)."""
    return lint_source(textwrap.dedent(source), module=module)


# -- SL010: blocking call reachable from async code -------------------------------------


class TestBlockingInAsync:
    def test_direct_blocking_call_flagged(self):
        src = """
        import time

        async def handler():
            time.sleep(0.5)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL010"}
        assert "time.sleep" in findings[0].message

    def test_catches_seeded_indirect_blocking_two_hops_deep(self):
        # The seeded-bug shape: an async handler calls a helper that
        # calls a helper that blocks — no `time.sleep` visible anywhere
        # in the async function itself.
        src = """
        import time

        def low():
            time.sleep(0.1)

        def mid():
            low()

        async def handler():
            mid()
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL010"}
        # The finding carries the full call-chain witness.
        assert "mid -> low" in findings[0].message
        assert "time.sleep" in findings[0].message

    def test_blocking_file_open_in_async_flagged(self):
        src = """
        async def load(path):
            with open(path) as handle:
                return handle.read()
        """
        assert rules_hit(src) == {"SL010"}

    def test_blocking_queue_get_method_flagged(self):
        src = """
        class Worker:
            async def pump(self):
                return self._queue.get()
        """
        assert rules_hit(src) == {"SL010"}

    def test_to_thread_wrapped_call_clean(self):
        src = """
        import asyncio

        def work():
            import time

            time.sleep(1.0)

        async def handler():
            await asyncio.to_thread(work)
        """
        assert rules_hit(src) == set()

    def test_awaited_wait_for_on_condition_clean(self):
        src = """
        import asyncio

        class Stream:
            async def wait_news(self):
                async with self._event_cond:
                    await asyncio.wait_for(self._event_cond.wait(), 1.0)
        """
        assert rules_hit(src) == set()

    def test_blocking_only_from_sync_code_clean(self):
        src = """
        import time

        def pause():
            time.sleep(0.1)

        def caller():
            pause()
        """
        assert rules_hit(src) == set()


# -- SL011: sync lock held across an await ----------------------------------------------


class TestLockAcrossAwait:
    def test_await_under_sync_lock_flagged(self):
        src = """
        import asyncio

        class Box:
            async def update(self):
                with self._lock:
                    await asyncio.sleep(0)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL011"}
        assert "lock" in findings[0].message

    def test_lock_released_before_await_clean(self):
        src = """
        import asyncio

        class Box:
            async def update(self):
                with self._lock:
                    self.value = 1
                await asyncio.sleep(0)
        """
        assert rules_hit(src) == set()

    def test_async_lock_clean(self):
        src = """
        import asyncio

        class Box:
            async def update(self):
                async with self._lock:
                    await asyncio.sleep(0)
        """
        assert rules_hit(src) == set()

    def test_sync_function_with_lock_clean(self):
        src = """
        class Box:
            def update(self):
                with self._lock:
                    self.value = 1
        """
        assert rules_hit(src) == set()


# -- SL012: fire-and-forget tasks / un-awaited coroutines -------------------------------


class TestFireAndForget:
    def test_bare_ensure_future_flagged(self):
        src = """
        import asyncio

        def kick(coro):
            asyncio.ensure_future(coro)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL012"}
        assert "weak" in findings[0].message

    def test_bare_create_task_flagged(self):
        src = """
        import asyncio

        def kick(coro):
            asyncio.create_task(coro)
        """
        assert rules_hit(src) == {"SL012"}

    def test_task_kept_with_strong_reference_clean(self):
        # The pattern the service's `_publish` fix uses.
        src = """
        import asyncio

        def kick(tasks, coro):
            task = asyncio.create_task(coro)
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        """
        assert rules_hit(src) == set()

    def test_task_group_create_task_clean(self):
        src = """
        async def fan_out(tg, coro):
            tg.create_task(coro)
        """
        assert rules_hit(src) == set()

    def test_unawaited_project_coroutine_flagged(self):
        src = """
        async def notify():
            return None

        def publish():
            notify()
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL012"}
        assert "without" in findings[0].message

    def test_awaited_project_coroutine_clean(self):
        src = """
        async def notify():
            return None

        async def publish():
            await notify()
        """
        assert rules_hit(src) == set()


# -- SL013: crash-consistency protocol --------------------------------------------------


class TestCrashConsistency:
    def test_catches_seeded_rename_without_fsync(self):
        # The seeded-bug shape: a "tmp file + rename" writer that skips
        # the fsync — durable rename, possibly lost data.
        src = """
        import json
        import os

        def save(path, payload):
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL013"}
        assert "flushed but never fsynced" in findings[0].message

    def test_rename_of_unflushed_handle_flagged(self):
        src = """
        import os

        def save(path, payload):
            tmp = path + ".tmp"
            handle = open(tmp, "w")
            handle.write(payload)
            os.replace(tmp, path)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL013"}
        assert "written but never flushed" in findings[0].message

    def test_fsync_on_wrong_fd_flagged(self):
        src = """
        import os

        def save(path, payload, other):
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(other.fileno())
            os.replace(tmp, path)
        """
        assert rules_hit(src) == {"SL013"}

    def test_canonical_atomic_write_clean(self):
        # The write_json_atomic protocol: write, flush, fsync *this*
        # handle's fd, then rename.
        src = """
        import json
        import os

        def save(path, payload):
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        """
        assert rules_hit(src) == set()

    def test_fsync_via_fd_alias_clean(self):
        src = """
        import os

        def save(path, payload):
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                fd = handle.fileno()
                os.fsync(fd)
            os.replace(tmp, path)
        """
        assert rules_hit(src) == set()

    def test_write_after_rename_flagged(self):
        src = """
        import os

        def save(path, payload):
            tmp = path + ".tmp"
            handle = open(tmp, "w")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
            os.replace(tmp, path)
            handle.write(payload)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL013"}
        assert "already renamed" in findings[0].message

    def test_truncating_open_of_append_only_log_flagged(self):
        src = """
        def reset(journal_path):
            return open(journal_path, "w")
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL013"}
        assert "append-only" in findings[0].message

    def test_append_open_of_log_clean(self):
        src = """
        def reopen(journal_path):
            return open(journal_path, "a")
        """
        assert rules_hit(src) == set()


# -- SL014: shared state across the fork boundary ---------------------------------------


class TestForkSharedState:
    def test_catches_worker_mutating_module_global(self):
        src = """
        import multiprocessing

        _CACHE = {}

        def worker():
            _CACHE["x"] = 1

        def spawn():
            proc = multiprocessing.Process(target=worker)
            proc.start()
            return proc
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL014"}
        assert "_CACHE" in findings[0].message

    def test_mutation_reached_transitively_flagged(self):
        src = """
        import multiprocessing

        _RESULTS = []

        def helper(value):
            _RESULTS.append(value)

        def entry():
            helper(1)

        def spawn(ctx):
            return ctx.Process(target=entry)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL014"}
        assert "_RESULTS" in findings[0].message

    def test_module_global_handle_read_flagged(self):
        src = """
        import multiprocessing

        _LOG = open("events.out", "a")

        def worker():
            _LOG.write("hi")

        def spawn():
            return multiprocessing.Process(target=worker)
        """
        findings = findings_for(src)
        assert {f.rule for f in findings} == {"SL014"}
        assert "handle" in findings[0].message

    def test_worker_with_locals_only_clean(self):
        src = """
        import multiprocessing

        def worker(conn):
            cache = {}
            cache["x"] = 1
            conn.send(cache)

        def spawn(conn):
            return multiprocessing.Process(target=worker, args=(conn,))
        """
        assert rules_hit(src) == set()

    def test_reading_immutable_global_clean(self):
        src = """
        import multiprocessing

        _LIMIT = 3

        def worker(conn):
            conn.send(_LIMIT)

        def spawn(conn):
            return multiprocessing.Process(target=worker, args=(conn,))
        """
        assert rules_hit(src) == set()


# -- SL015: import layering -------------------------------------------------------------


class TestImportLayering:
    def test_core_importing_runner_at_module_scope_flagged(self):
        findings = findings_for(
            "import repro.runner\n", module="repro.core.snippet"
        )
        assert {f.rule for f in findings} == {"SL015"}
        assert "at module scope" in findings[0].message

    def test_disk_from_importing_svc_flagged(self):
        src = """
        from repro.svc.store import ResultStore
        """
        assert rules_hit(src, module="repro.disk.snippet") == {"SL015"}

    def test_type_checking_import_clean(self):
        src = """
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.runner.plan import Cell
        """
        assert rules_hit(src) == set()

    def test_allowlisted_lazy_import_clean(self):
        # (repro.core.engine, repro.perf) is on the lazy-import
        # allowlist: the profiler is optional instrumentation.
        src = """
        def run(profile=None):
            if profile:
                from repro.perf import PhaseProfiler

                return PhaseProfiler()
            return None
        """
        assert rules_hit(src, module="repro.core.engine") == set()

    def test_non_allowlisted_lazy_import_flagged(self):
        src = """
        def run():
            from repro.svc.service import SimulationService

            return SimulationService
        """
        findings = findings_for(src, module="repro.core.engine")
        assert {f.rule for f in findings} == {"SL015"}
        assert "allowlist" in findings[0].message

    def test_orchestration_layers_may_import_each_other(self):
        src = """
        import repro.runner
        from repro.svc.store import ResultStore
        """
        assert rules_hit(src, module="repro.analysis.snippet") == set()


# -- SL016: no logging/print in the hot core --------------------------------------------


class TestCoreOutput:
    def test_import_logging_in_core_flagged(self):
        findings = findings_for(
            "import logging\n", module="repro.core.snippet"
        )
        assert {f.rule for f in findings} == {"SL016"}
        assert "must not log" in findings[0].message

    def test_from_logging_import_in_disk_flagged(self):
        src = """
        from logging import getLogger
        """
        assert rules_hit(src, module="repro.disk.snippet") == {"SL016"}

    def test_print_in_core_flagged(self):
        src = """
        def step(self):
            print("debugging the hot loop")
        """
        findings = findings_for(src, module="repro.core.engine")
        assert {f.rule for f in findings} == {"SL016"}
        assert "print()" in findings[0].message

    def test_service_layer_may_log_and_print(self):
        src = """
        import logging

        def report():
            print("fine here")
        """
        assert rules_hit(src, module="repro.svc.service", select="SL016") == set()
        assert rules_hit(src, module="repro.obs.logging", select="SL016") == set()

    def test_package_boundary_matching(self):
        # "repro.corelib" is not "repro.core": same boundary rule as SL002.
        src = """
        import logging
        print("not core-layer code")
        """
        assert rules_hit(src, module="repro.corelib.tools", select="SL016") == set()

    def test_line_suppression_honoured(self):
        src = """
        import logging  # simlint: disable=SL016
        """
        assert rules_hit(src, module="repro.core.snippet") == set()


# -- SL017: undeadlined stream reads / unawaited drains in repro.svc --------------------


class TestUnboundedStreamIo:
    def test_undeadlined_await_read_flagged(self):
        src = """
        async def handler(reader, writer):
            head = await reader.readuntil(b"\\r\\n\\r\\n")
            return head
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == \
            {"SL017"}

    def test_undeadlined_readexactly_flagged(self):
        src = """
        async def body_of(stream_reader, length):
            return await stream_reader.readexactly(length)
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == \
            {"SL017"}

    def test_dropped_read_coroutine_flagged(self):
        src = """
        async def handler(reader):
            reader.read(4096)  # never awaited: the read never happens
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == \
            {"SL017"}

    def test_unawaited_drain_flagged(self):
        src = """
        async def send(writer, data):
            writer.write(data)
            writer.drain()
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == \
            {"SL017"}

    def test_wait_for_wrapped_read_clean(self):
        src = """
        import asyncio

        async def handler(reader):
            return await asyncio.wait_for(reader.readuntil(b"x"), 10.0)
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_timeout_block_read_clean(self):
        src = """
        import asyncio

        async def handler(reader):
            async with asyncio.timeout(10.0):
                return await reader.read(4096)
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_awaited_drain_clean(self):
        src = """
        import asyncio

        async def send(writer, data):
            writer.write(data)
            await asyncio.wait_for(writer.drain(), 5.0)
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_non_readerish_receiver_ignored(self):
        src = """
        async def load(handle):
            return handle.read()  # a file handle is SL010's department
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_sync_functions_ignored(self):
        src = """
        def load(reader):
            return reader.read()
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_outside_repro_svc_ignored(self):
        src = """
        async def handler(reader):
            return await reader.readuntil(b"x")
        """
        assert rules_hit(src, module="repro.runner.pool",
                         select="SL017") == set()
        assert rules_hit(src, module="repro.core.snippet",
                         select="SL017") == set()

    def test_line_suppression_honoured(self):
        src = """
        async def handler(reader):
            return await reader.readuntil(b"x")  # simlint: disable=SL017
        """
        assert rules_hit(src, module="repro.svc.http", select="SL017") == set()

    def test_hardened_http_frontend_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        report = lint_paths([root / "src" / "repro" / "svc"], all_rules(),
                            select={"SL017"})
        assert report.findings == []


# -- SARIF output -----------------------------------------------------------------------


class TestSarifOutput:
    def _write_package(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        target = package / "bad.py"
        target.write_text(BAD_SOURCE)
        return target

    def test_document_structure(self, tmp_path):
        self._write_package(tmp_path)
        report = lint_paths([tmp_path], all_rules())
        doc = sarif_dict(report, all_rules())
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        (run,) = doc["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {f"SL{n:03d}" for n in range(1, 16)} <= rule_ids
        assert {res["ruleId"] for res in run["results"]} == {"SL001", "SL005"}

    def test_results_carry_fingerprints_and_locations(self, tmp_path):
        self._write_package(tmp_path)
        report = lint_paths([tmp_path], all_rules())
        doc = sarif_dict(report, all_rules())
        (run,) = doc["runs"]
        fingerprints = {f.fingerprint for f in report.findings}
        for result in run["results"]:
            assert (
                result["partialFingerprints"]["simlintFingerprint/v1"]
                in fingerprints
            )
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
            assert location["region"]["startLine"] >= 1

    def test_invocation_reflects_exit_code_and_timing(self, tmp_path):
        self._write_package(tmp_path)
        report = lint_paths([tmp_path], all_rules())
        (run,) = sarif_dict(report, all_rules())["runs"]
        (invocation,) = run["invocations"]
        assert invocation["executionSuccessful"] is False
        assert invocation["properties"]["files"] == report.files
        assert invocation["properties"]["elapsed_s"] >= 0

    def test_clean_tree_is_execution_successful(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        report = lint_paths([clean], all_rules())
        (run,) = sarif_dict(report, all_rules())["runs"]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_render_round_trips_as_json(self, tmp_path):
        self._write_package(tmp_path)
        report = lint_paths([tmp_path], all_rules())
        assert json.loads(render_sarif(report, all_rules())) == sarif_dict(
            report, all_rules()
        )

    def test_cli_sarif_format(self, tmp_path):
        target = self._write_package(tmp_path)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(target),
                "--format",
                "sarif",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_cli_output_file(self, tmp_path):
        target = self._write_package(tmp_path)
        out = tmp_path / "lint.sarif"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(target),
                "--format",
                "sarif",
                "--output",
                str(out),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert result.stdout.strip() == ""
        assert json.loads(out.read_text())["version"] == "2.1.0"


# -- analysis-time budget ---------------------------------------------------------------


class TestAnalysisBudget:
    def test_elapsed_is_recorded_and_reported(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        report = lint_paths([clean], all_rules())
        assert report.elapsed_s > 0
        assert json.loads(render_json(report))["elapsed_s"] == round(
            report.elapsed_s, 3
        )

    def test_cli_fails_when_over_budget(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(clean),
                "--max-seconds",
                "0",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "budget" in result.stderr

    def test_cli_passes_within_budget(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(clean),
                "--max-seconds",
                "60",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

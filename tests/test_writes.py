"""Write references and write-behind flushing."""

import pytest

from repro.core import Simulator, make_policy
from repro.trace import Trace
from tests.conftest import simple_config


def rw_trace(blocks, writes, compute_ms=1.0, name="rw"):
    return Trace(
        name=name,
        blocks=list(blocks),
        compute_ms=[float(compute_ms)] * len(blocks),
        writes=list(writes),
    )


def run(blocks, writes, policy="demand", cache_blocks=4, num_disks=1,
        compute_ms=1.0):
    trace = rw_trace(blocks, writes, compute_ms)
    sim = Simulator(
        trace, make_policy(policy), num_disks,
        simple_config(cache_blocks=cache_blocks),
    )
    return sim.run()


class TestTraceWrites:
    def test_mask_length_validated(self):
        with pytest.raises(ValueError, match="writes mask"):
            rw_trace([1, 2], [True])

    def test_read_write_counters(self):
        t = rw_trace([1, 2, 3, 1], [False, True, False, True])
        assert t.references == 4
        assert t.reads == 2
        assert t.write_count == 2

    def test_scaled_slices_writes(self):
        t = rw_trace([1, 2, 3, 4], [True, False, True, False])
        half = t.scaled(0.5)
        assert half.writes == [True, False]

    def test_save_load_roundtrip(self, tmp_path):
        t = rw_trace([1, 2], [True, False])
        path = str(tmp_path / "t.json")
        t.save(path)
        assert Trace.load(path).writes == [True, False]


class TestWriteAllocate:
    def test_write_miss_needs_no_disk_read(self):
        # Pure-write trace: no fetches at all, only eventual flushes.
        result = run([0, 1, 2], [True, True, True], cache_blocks=4)
        assert result.fetches == 0
        assert result.stall_ms == 0.0
        assert result.extras["writes"] == 3

    def test_write_then_read_hits(self):
        # Writing block 0 makes it resident; the read costs nothing extra.
        result = run([0, 0], [True, False], cache_blocks=4)
        assert result.fetches == 0

    def test_read_then_write_marks_dirty_once(self):
        result = run([0, 0, 0], [False, True, True], cache_blocks=4)
        assert result.fetches == 1
        assert result.extras["writes"] == 2


class TestWriteBehind:
    def test_dirty_eviction_flushes(self):
        # Cache of 1: each new write evicts the previous dirty block.
        result = run([0, 1, 2], [True, True, True], cache_blocks=1)
        assert result.extras["flushes"] == 2  # block 2 still cached at end

    def test_clean_eviction_does_not_flush(self):
        result = run([0, 1, 2], [False, False, False], cache_blocks=1)
        assert result.extras["flushes"] == 0

    def test_flush_charges_driver_overhead(self):
        dirty = run([0, 1, 2], [True, True, True], cache_blocks=1)
        # 2 flushes x 0.5 ms, zero fetches
        assert dirty.driver_ms == pytest.approx(2 * 0.5)

    def test_application_does_not_wait_for_flush(self):
        """Write-behind masks update latency (section 1.1): a pure-write
        stream runs at compute speed despite constant flushing."""
        blocks = list(range(40))
        result = run(blocks, [True] * 40, cache_blocks=2, compute_ms=2.0)
        assert result.stall_ms == 0.0
        assert result.elapsed_ms == pytest.approx(
            result.compute_ms + result.driver_ms
        )

    def test_flush_traffic_occupies_disks(self):
        writes = run(list(range(30)), [True] * 30, cache_blocks=2,
                     compute_ms=2.0)
        assert sum(writes.per_disk_busy_ms) > 0

    def test_writes_slower_than_pure_reads_when_contending(self):
        """Flush traffic competes with fetches for the disk."""
        blocks = list(range(20)) * 2
        mask = [i % 2 == 1 for i in range(40)]
        mixed = run(blocks, mask, policy="fixed-horizon", cache_blocks=8,
                    compute_ms=2.0)
        reads = run(blocks, [False] * 40, policy="fixed-horizon",
                    cache_blocks=8, compute_ms=2.0)
        assert mixed.elapsed_ms >= reads.elapsed_ms * 0.99


class TestWritesWithPrefetchers:
    @pytest.mark.parametrize(
        "policy", ["demand", "fixed-horizon", "aggressive", "forestall"]
    )
    def test_accounting_identity_with_writes(self, policy):
        blocks = [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
        mask = [i % 3 == 0 for i in range(12)]
        result = run(blocks, mask, policy=policy, cache_blocks=4)
        total = result.compute_ms + result.driver_ms + result.stall_ms
        assert result.elapsed_ms == pytest.approx(total, abs=1e-6)
        assert result.references == 12

    def test_no_writes_means_no_extras(self):
        from tests.conftest import run as plain_run

        result = plain_run([0, 1, 2])
        assert result.extras == {}

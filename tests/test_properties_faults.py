"""Property-based tests for fault injection: the accounting identity and
the failover guarantees must hold for *every* randomized fault schedule."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import POLICIES, Simulator, make_policy
from repro.faults import DiskFailure, ErrorWindow, FaultSchedule, SlowWindow
from tests.conftest import make_trace, simple_config

traces = st.lists(
    st.integers(min_value=0, max_value=11), min_size=1, max_size=40
)
policies = st.sampled_from(sorted(POLICIES))
disk_counts = st.integers(min_value=1, max_value=3)
# Error rates stay below the point where 50 retries could plausibly all
# fail; the engine must *survive*, not merely crash gracefully.
error_rates = st.floats(min_value=0.0, max_value=0.3)
slow_factors = st.floats(min_value=1.0, max_value=10.0)
kill_times = st.one_of(st.none(), st.floats(min_value=0.0, max_value=200.0))
seeds = st.integers(min_value=0, max_value=2**32)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def schedule_for(seed, rate, factor, kill_time, disks):
    slow = (SlowWindow(factor, disk=0),) if factor > 1.0 else ()
    failures = ()
    if kill_time is not None:
        failures = (DiskFailure(disk=disks - 1, at_ms=kill_time),)
    return FaultSchedule(
        seed=seed,
        read_error_rate=rate,
        slow_windows=slow,
        disk_failures=failures,
        max_retries=50,
    )


class TestFaultInvariants:
    @given(blocks=traces, policy=policies, disks=disk_counts,
           seed=seeds, rate=error_rates, factor=slow_factors,
           kill_time=kill_times)
    @RELAXED
    def test_accounting_identity_survives_any_schedule(
        self, blocks, policy, disks, seed, rate, factor, kill_time
    ):
        trace = make_trace(blocks, compute_ms=1.0)
        config = simple_config(
            cache_blocks=4,
            faults=schedule_for(seed, rate, factor, kill_time, disks),
        )
        result = Simulator(trace, make_policy(policy), disks, config).run()
        # check_accounting runs inside run(); re-assert the exact residual.
        residual = result.elapsed_ms - (
            result.compute_ms + result.driver_ms + result.stall_ms
        )
        assert abs(residual) <= 1e-6
        assert result.references == len(blocks)

    @given(blocks=traces, policy=policies, seed=seeds, rate=error_rates)
    @RELAXED
    def test_identical_schedules_are_deterministic(
        self, blocks, policy, seed, rate
    ):
        def once():
            trace = make_trace(blocks, compute_ms=1.0)
            config = simple_config(
                cache_blocks=4,
                faults=FaultSchedule(seed=seed, read_error_rate=rate,
                                     max_retries=50),
            )
            return Simulator(trace, make_policy(policy), 2, config).run()

        first, second = once(), once()
        assert first.elapsed_ms == second.elapsed_ms
        assert first.stall_ms == second.stall_ms
        assert first.fetches == second.fetches
        assert first.extras == second.extras

    @given(blocks=traces, policy=policies, seed=seeds,
           kill_time=st.floats(min_value=0.0, max_value=200.0),
           victim=st.integers(min_value=0, max_value=3))
    @RELAXED
    def test_mirrored_failover_serves_every_reference(
        self, blocks, policy, seed, kill_time, victim
    ):
        # One spindle of a 4-disk mirrored array dies at a random time.
        # Its twin holds every block, so no reference may go unserved.
        config = simple_config(
            cache_blocks=4,
            mirrored=True,
            faults=FaultSchedule(
                seed=seed,
                disk_failures=(DiskFailure(disk=victim, at_ms=kill_time),),
                max_retries=50,
            ),
        )
        trace = make_trace(blocks, compute_ms=1.0)
        result = Simulator(trace, make_policy(policy), 4, config).run()
        assert result.extras["unreadable_references"] == 0
        assert result.extras["lost_blocks"] == 0
        assert not result.degraded
        assert result.references == len(blocks)

    @given(blocks=traces, policy=policies, disks=disk_counts)
    @RELAXED
    def test_null_schedule_never_perturbs_a_run(
        self, blocks, policy, disks
    ):
        trace = make_trace(blocks, compute_ms=1.0)
        base = Simulator(
            trace, make_policy(policy), disks, simple_config(cache_blocks=4)
        ).run()
        nulled = Simulator(
            make_trace(blocks, compute_ms=1.0), make_policy(policy), disks,
            simple_config(cache_blocks=4, faults=FaultSchedule()),
        ).run()
        assert nulled.elapsed_ms == base.elapsed_ms
        assert nulled.driver_ms == base.driver_ms
        assert nulled.stall_ms == base.stall_ms
        assert nulled.fetches == base.fetches

    @given(blocks=traces, seed=seeds,
           windows=st.lists(
               st.tuples(
                   st.floats(min_value=0.0, max_value=100.0),
                   st.floats(min_value=0.0, max_value=100.0),
               ),
               max_size=3,
           ))
    @RELAXED
    def test_scripted_error_windows_always_recoverable(
        self, blocks, seed, windows
    ):
        # Bounded windows with a generous retry budget: the run always
        # completes (the app eventually outlives every window).
        error_windows = tuple(
            ErrorWindow(min(a, b), max(a, b)) for a, b in windows
        )
        config = simple_config(
            cache_blocks=4,
            faults=FaultSchedule(
                seed=seed, error_windows=error_windows,
                max_retries=10_000, retry_backoff_ms=5.0,
            ),
        )
        trace = make_trace(blocks, compute_ms=1.0)
        result = Simulator(trace, make_policy("demand"), 1, config).run()
        assert result.references == len(blocks)
        # An empty window list is the null schedule: no fault extras at all.
        assert result.extras.get("unreadable_references", 0) == 0

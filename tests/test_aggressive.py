"""Aggressive: earliest allowed prefetching under the do-no-harm rule."""

import pytest

from repro.core import Aggressive, Simulator
from repro.core.batching import batch_size_for
from tests.conftest import make_trace, run, simple_config


class IssueSpy(Aggressive):
    """Records (fetch position, victim next-use, cursor) for every issue."""

    def __init__(self, log, **kw):
        super().__init__(**kw)
        self.log = log

    def issue(self, block, victim):
        cursor = self.sim.cursor
        fetch_pos = self.sim.index.next_use(block, cursor)
        victim_next = (
            None if victim is None
            else self.sim.index.next_use(victim, cursor)
        )
        self.log.append((block, fetch_pos, victim, victim_next, cursor))
        super().issue(block, victim)


class TestDoNoHarm:
    def test_victim_always_needed_after_fetched_block(self):
        log = []
        blocks = ([0, 1, 2, 3, 4, 5, 6, 7] * 4)
        trace = make_trace(blocks)
        sim = Simulator(trace, IssueSpy(log, batch_size=4), 1,
                        simple_config(cache_blocks=4))
        sim.run()
        for _block, fetch_pos, victim, victim_next, _cursor in log:
            if victim is not None:
                # never-again victims satisfy this too: never > any position
                assert victim_next > fetch_pos

    def test_prefetches_start_immediately(self):
        """Whenever a disk is free, aggressive fetches the first missing
        block — the very first issue happens at cursor 0 for block 0, and
        deeper blocks follow without the cursor moving."""
        log = []
        trace = make_trace(list(range(10)), compute_ms=50.0)
        sim = Simulator(trace, IssueSpy(log, batch_size=4), 1,
                        simple_config(cache_blocks=20))
        sim.run()
        issued_block_cursors = [(b, c) for b, _f, _v, _vn, c in log]
        # several blocks issued while the cursor is still at 0
        early = [b for b, c in issued_block_cursors if c == 0]
        assert len(early) >= 4

    def test_fetches_first_missing_in_order(self):
        log = []
        trace = make_trace(list(range(12)), compute_ms=30.0)
        sim = Simulator(trace, IssueSpy(log, batch_size=2), 1,
                        simple_config(cache_blocks=30))
        sim.run()
        fetched = [b for b, *_ in log]
        assert fetched == sorted(fetched)


class TestBatching:
    def test_table6_defaults(self):
        assert batch_size_for(1) == 80
        assert batch_size_for(2) == 40
        assert batch_size_for(3) == 40
        assert batch_size_for(4) == 16
        assert batch_size_for(5) == 16
        assert batch_size_for(6) == 8
        assert batch_size_for(7) == 8
        assert batch_size_for(8) == 4
        assert batch_size_for(16) == 4

    def test_override(self):
        assert batch_size_for(1, override=7) == 7
        with pytest.raises(ValueError):
            batch_size_for(1, override=0)

    def test_policy_uses_table6(self):
        trace = make_trace(list(range(4)))
        policy = Aggressive()
        Simulator(trace, policy, 3, simple_config(cache_blocks=8))
        assert policy.batch_size == 40

    def test_queue_depth_bounded_by_batch_size(self):
        max_depth = [0]

        class DepthSpy(Aggressive):
            def issue(self, block, victim):
                super().issue(block, victim)
                q = self.sim.array.queue_length(0)
                busy = 0 if self.sim.array.is_idle(0) else 1
                max_depth[0] = max(max_depth[0], q + busy)

        trace = make_trace(list(range(64)), compute_ms=0.2)
        sim = Simulator(trace, DepthSpy(batch_size=5), 1,
                        simple_config(cache_blocks=80))
        sim.run()
        assert max_depth[0] <= 5

    def test_new_batch_only_when_disk_drains(self):
        """A disk accepts a new batch only after finishing the previous one
        (idle with an empty queue)."""
        events = []

        class BatchSpy(Aggressive):
            def _fill_free_disks(self, cursor):
                before = self.sim.fetch_count
                super()._fill_free_disks(cursor)
                issued = self.sim.fetch_count - before
                if issued:
                    events.append(issued)

        trace = make_trace(list(range(40)), compute_ms=0.2)
        sim = Simulator(trace, BatchSpy(batch_size=4), 1,
                        simple_config(cache_blocks=50))
        sim.run()
        assert all(size <= 4 for size in events)
        assert any(size > 1 for size in events)


class TestMultiDisk:
    def test_parallel_prefetch_across_disks(self):
        blocks = list(range(16))
        one = run(blocks, policy="aggressive", num_disks=1, cache_blocks=20,
                  compute_ms=1.0)
        four = run(blocks, policy="aggressive", num_disks=4, cache_blocks=20,
                   compute_ms=1.0)
        assert four.stall_ms < one.stall_ms

    def test_busy_disk_blocks_skipped_for_other_disks(self):
        """When disk 0 is mid-batch, missing blocks on disk 1 are still
        issued (global order, per-disk budgets)."""
        log = []
        # even blocks -> disk 0, odd -> disk 1 under 2-disk striping
        trace = make_trace(list(range(12)), compute_ms=20.0)
        sim = Simulator(trace, IssueSpy(log, batch_size=2), 2,
                        simple_config(cache_blocks=20))
        sim.run()
        disks_of_first_four = {b % 2 for b, *_ in log[:4]}
        assert disks_of_first_four == {0, 1}


class TestRegimes:
    def test_wins_when_io_bound(self):
        # Clustered missing blocks: FH idles the disk through the cached
        # run; aggressive uses that time.
        blocks = list(range(16)) * 6
        agg = run(blocks, policy="aggressive", cache_blocks=12,
                  compute_ms=5.0, batch_size=8)
        fh = run(blocks, policy="fixed-horizon", cache_blocks=12,
                 compute_ms=5.0, horizon=2)
        assert agg.elapsed_ms < fh.elapsed_ms

    def test_extra_fetches_cost_driver_time_when_compute_bound(self):
        """Section 4.2: aggressive's driver overhead exceeds FH's in
        compute-bound situations because it fetches more."""
        blocks = list(range(10)) * 8
        agg = run(blocks, policy="aggressive", num_disks=4, cache_blocks=6,
                  compute_ms=30.0)
        fh = run(blocks, policy="fixed-horizon", num_disks=4, cache_blocks=6,
                 compute_ms=30.0, horizon=3)
        assert agg.driver_ms >= fh.driver_ms

"""The chaos harness: kill it, tear it, fill it — lose nothing.

Every scenario here attacks a window the service claims to survive and
then asserts the service-level invariants (docs/SERVICE.md):

* **No lost result** — any result the store's log claims is either
  resident and valid, or safely recomputable to the *same* digest.
* **No duplicate computation recorded** — per config hash, every digest
  the log ever records is identical; an idempotent re-put after a crash
  recompute adds no new entry.
* **Bit-identity under fire** — with workers SIGKILLed mid-cell, files
  torn at random offsets, the process dying between log append and
  rename, and ENOSPC on the store, the 14 pinned golden digests of
  ``tests/test_golden_results.py`` still come out exactly.
* **Clean restart-and-resume** — a killed service reopens its store and
  serves previously computed cells with zero simulation work.
"""

import asyncio
import json
import os
import random
import subprocess
import sys
import textwrap
import time

from repro.runner import Cell, execute_cell
from repro.svc import (
    CHAOS_EXIT_CODE,
    CRASH_ENV,
    RAISE_ENV,
    STORE_LOG_NAME,
    ResultStore,
    ServiceConfig,
    SimulationService,
    kill_worker,
    tear_file,
    worker_pids,
)

from tests import test_golden_results as golden
from tests.test_runner import golden_plan, kind_cell, test_kinds  # noqa: F401

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

GOLDEN_DIGESTS = set(golden.EXPECTED.values())


def assert_store_invariants(root):
    """The log is the authority; everything on disk must agree with it."""
    store = ResultStore(root)
    try:
        digests_by_hash = {}
        for entry in store.read_log():
            if entry.get("op") == "put":
                digests_by_hash.setdefault(entry["hash"], set()).add(
                    entry["digest"]
                )
        for config_hash, digests in digests_by_hash.items():
            # No duplicate computation recorded: every digest ever logged
            # for one hash is the same digest.
            assert len(digests) == 1, (
                f"{config_hash}: divergent digests recorded {digests}"
            )
        for config_hash in list(store._lru):
            record = store.get(config_hash)
            if record is None:
                continue  # quarantined just now; recompute will re-pin it
            logged = digests_by_hash.get(config_hash)
            if logged:
                assert record["digest"] == next(iter(logged))
    finally:
        store.close()


def service_scenario(tmp_path, scenario, **config_kwargs):
    config_kwargs.setdefault("store_dir", str(tmp_path / "store"))
    config_kwargs.setdefault("jobs", 2)

    async def main():
        service = SimulationService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.drain("signal")

    return asyncio.run(main())


# -- worker SIGKILL mid-cell ------------------------------------------------------------


class TestWorkerKills:
    def test_killed_worker_retries_to_the_same_digest(self, test_kinds, tmp_path):
        async def scenario(service):
            cell = kind_cell("sleep", sleep_s=0.5)
            task = asyncio.ensure_future(service.run_cell(cell))
            deadline = time.monotonic() + 30.0
            while service.pool.counters["dispatched"] < 1:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            pids = worker_pids(service.pool)
            assert pids
            assert kill_worker(pids[0])
            record, served = await task
            assert served == "computed"
            assert record["status"] == "ok"
            assert record["digest"] == "digest-slept"
            assert record["attempt"] == 2
            assert service.pool.counters["crashes"] == 1
            assert service.pool.counters["retries"] == 1
            # The crash counted against the breaker, the recovery reset it.
            assert service.breaker.consecutive_failures == 0
            # Exactly one result recorded despite the violent first attempt.
            puts = [e for e in service.store.read_log() if e["op"] == "put"]
            assert len(puts) == 1

        service_scenario(tmp_path, scenario, jobs=1, retry_backoff_s=0.05)
        assert_store_invariants(str(tmp_path / "store"))

    def test_golden_digests_survive_worker_kills(self, tmp_path):
        """The headline: SIGKILL workers repeatedly during the golden
        sweep; every one of the 14 pinned digests still comes out."""

        async def scenario(service):
            cells = golden_plan()
            sweep = asyncio.ensure_future(service.run_cells(cells))
            killed = 0
            deadline = time.monotonic() + 120.0
            while killed < 3 and not sweep.done():
                assert time.monotonic() < deadline
                await asyncio.sleep(0.3)
                pids = worker_pids(service.pool)
                if pids and kill_worker(pids[killed % len(pids)]):
                    killed += 1
            results = await sweep
            assert killed >= 1, "chaos never landed a kill"
            digests = set()
            for (record, served), cell in zip(results, cells):
                assert record is not None, cell.cell_id
                assert record["status"] == "ok", record
                digests.add(record["digest"])
            assert digests == GOLDEN_DIGESTS
            assert service.pool.counters["crashes"] >= 1

        service_scenario(tmp_path, scenario, jobs=2, max_retries=4,
                         retry_backoff_s=0.05, request_timeout_s=300.0)
        assert_store_invariants(str(tmp_path / "store"))


# -- torn files -------------------------------------------------------------------------


class TestTornWrites:
    def test_torn_result_files_recompute_to_logged_digest(
            self, test_kinds, tmp_path):
        async def scenario(service):
            cell = kind_cell("instant", n=42)
            first, _ = await service.run_cell(cell)
            rng = random.Random(1996)
            for round_no in range(5):
                offset = tear_file(
                    service.store.path_for(cell.config_hash), rng
                )
                assert offset is not None
                again, served = await service.run_cell(cell)
                # Torn file → quarantined miss → recompute; the digest
                # must match what the log pinned the first time.
                assert served in ("computed", "store")
                assert again["digest"] == first["digest"]
            assert service.store.corrupt >= 1

        service_scenario(tmp_path, scenario, jobs=1)
        assert_store_invariants(str(tmp_path / "store"))

    def test_torn_store_log_only_loses_recency_not_results(
            self, test_kinds, tmp_path):
        root = str(tmp_path / "store")

        async def scenario(service):
            for n in (1, 2, 3):
                await service.run_cell(kind_cell("instant", n=n))

        service_scenario(tmp_path, scenario, jobs=1)
        # Tear the log mid-file (not just the tail).
        log_path = os.path.join(root, STORE_LOG_NAME)
        with open(log_path) as handle:
            lines = handle.readlines()
        assert len(lines) >= 3
        lines[1] = lines[1][: len(lines[1]) // 2] + "\n"
        with open(log_path, "w") as handle:
            handle.writelines(lines)

        reopened = ResultStore(root)
        try:
            assert reopened.skipped_log_lines == 1
            # All three results still resident and valid: the files are
            # the results, the log is residency metadata.
            assert len(reopened) == 3
            hits = 0
            for cell in [kind_cell("instant", n=n) for n in (1, 2, 3)]:
                if reopened.get(cell.config_hash) is not None:
                    hits += 1
            assert hits == 3
        finally:
            reopened.close()


# -- ENOSPC on the store ----------------------------------------------------------------


class TestFullDisk:
    def test_enospc_still_serves_results_uncached(
            self, test_kinds, tmp_path, monkeypatch):
        async def scenario(service):
            monkeypatch.setenv(RAISE_ENV, "store.put.pre-log")
            cell = kind_cell("instant", n=7)
            record, served = await service.run_cell(cell)
            # The client is served even though the store is "full".
            assert served == "computed" and record["status"] == "ok"
            assert service.metrics.counters["svc.store.put_errors"].value == 1
            assert len(service.store) == 0
            # Disk "recovers": the recompute caches and pins the same
            # digest the full-disk request produced.
            monkeypatch.delenv(RAISE_ENV)
            again, served = await service.run_cell(cell)
            assert served == "computed"
            assert again["digest"] == record["digest"]
            final, served = await service.run_cell(cell)
            assert served == "store" and final == again

        service_scenario(tmp_path, scenario, jobs=1)
        assert_store_invariants(str(tmp_path / "store"))


# -- process death inside the put window ------------------------------------------------


CRASH_DRIVER = textwrap.dedent(
    """
    import asyncio, os, sys
    sys.path[:0] = [r"{repo}", r"{repo}/src"]
    os.environ[{crash_env!r}] = {point!r}
    from repro.runner import Cell
    from repro.svc import ServiceConfig, SimulationService

    async def main():
        service = SimulationService(
            ServiceConfig(store_dir=r"{store}", jobs=1,
                          request_timeout_s=120.0)
        )
        await service.start()
        record, served = await service.run_cell(
            Cell(trace="ld", policy="demand", disks=1, scale=0.05)
        )
        print("UNREACHABLE", served, flush=True)

    asyncio.run(main())
    """
)


def run_crash_driver(store_dir, point):
    proc = subprocess.run(
        [sys.executable, "-c", CRASH_DRIVER.format(
            repo=REPO_ROOT, store=store_dir, point=point,
            crash_env=CRASH_ENV,
        )],
        cwd=REPO_ROOT, capture_output=True, timeout=120.0,
    )
    assert proc.returncode == CHAOS_EXIT_CODE, proc.stderr.decode()
    assert b"UNREACHABLE" not in proc.stdout
    return proc


class TestCrashWindows:
    CELL = Cell(trace="ld", policy="demand", disks=1, scale=0.05)

    def serve_once(self, store_dir):
        async def main():
            service = SimulationService(
                ServiceConfig(store_dir=store_dir, jobs=1)
            )
            await service.start()
            try:
                return await service.run_cell(self.CELL), service.status()
            finally:
                await service.drain("signal")

        return asyncio.run(main())

    def test_killed_between_log_append_and_rename(self, tmp_path):
        """SIGKILL in the most dangerous window: the put is logged, the
        result file does not exist yet."""
        store_dir = str(tmp_path / "store")
        run_crash_driver(store_dir, "store.put.post-log")

        store = ResultStore(store_dir)
        puts = [e for e in store.read_log() if e["op"] == "put"]
        assert len(puts) == 1  # the log append survived (it is fsynced)
        logged_digest = puts[0]["digest"]
        # The file never made it; recovery treats it as not resident.
        assert store.get(self.CELL.config_hash) is None
        store.close()

        # Restart and re-request: the recompute must produce exactly the
        # digest the dead process logged, and the store heals.
        (record, served), _status = self.serve_once(store_dir)
        assert served == "computed"
        assert record["digest"] == logged_digest
        assert_store_invariants(store_dir)
        # The healed store now serves it with zero simulation work.
        (record2, served2), status = self.serve_once(store_dir)
        assert served2 == "store"
        assert record2 == record
        assert status["pool"]["counters"]["dispatched"] == 0

    def test_killed_after_rename_restart_serves_from_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_crash_driver(store_dir, "store.put.post-write")
        # Everything durable landed before the kill: restart serves the
        # result without computing anything.
        (record, served), status = self.serve_once(store_dir)
        assert served == "store"
        assert record["status"] == "ok"
        assert status["pool"]["counters"]["dispatched"] == 0
        # Cross-check: an independent in-process compute agrees.
        outcome = execute_cell(self.CELL)
        assert record["digest"] == outcome.digest
        assert_store_invariants(store_dir)

    def test_killed_before_log_is_a_clean_recompute(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_crash_driver(store_dir, "store.put.pre-log")
        store = ResultStore(store_dir)
        assert [e for e in store.read_log() if e["op"] == "put"] == []
        store.close()
        (record, served), _ = self.serve_once(store_dir)
        assert served == "computed"
        outcome = execute_cell(self.CELL)
        assert record["digest"] == outcome.digest
        assert_store_invariants(store_dir)


# -- the acceptance sweep: golden cells, cached == computed, hit ratio 1.0 --------------


class TestGoldenAcceptance:
    def test_golden_sweep_then_identical_resweep_is_pure_store(self, tmp_path):
        store_dir = str(tmp_path / "store")

        async def scenario(service):
            cells = golden_plan()
            first = await service.run_cells(cells)
            digests = {}
            for (record, served), gcell in zip(first, golden.CELLS):
                assert record is not None and record["status"] == "ok"
                assert served in ("computed", "coalesced")
                digests[golden.cell_id(gcell)] = record["digest"]
            # Computed digests are exactly the pinned golden values.
            assert digests == golden.EXPECTED

            hits_before = service.store.hits
            misses_before = service.store.misses
            dispatched_before = service.pool.counters["dispatched"]
            writes_before = service.store.writes

            second = await service.run_cells(cells)
            for (a, _), (b, served) in zip(first, second):
                assert served == "store"
                assert b == a  # cached == computed, byte for byte

            # The repeated sweep: hit ratio 1.0, zero simulation work,
            # nothing new recorded.
            assert service.store.misses == misses_before
            assert service.store.hits == hits_before + len(cells)
            assert service.pool.counters["dispatched"] == dispatched_before
            assert service.store.writes == writes_before
            bundle_hits = service.store.hits - hits_before
            bundle_misses = service.store.misses - misses_before
            assert bundle_hits / (bundle_hits + bundle_misses) == 1.0

        service_scenario(tmp_path, scenario, jobs=2, request_timeout_s=300.0)
        assert_store_invariants(store_dir)

        # And across a restart: a fresh service over the same store still
        # serves all 14 bit-identically with zero simulation work.
        async def restart_scenario(service):
            results = await service.run_cells(golden_plan())
            for (record, served), gcell in zip(results, golden.CELLS):
                assert served == "store"
                assert record["digest"] == golden.EXPECTED[
                    golden.cell_id(gcell)
                ]
            assert service.pool.counters["dispatched"] == 0
            assert service.store.hit_ratio == 1.0

        service_scenario(tmp_path, restart_scenario, jobs=2,
                         request_timeout_s=300.0)

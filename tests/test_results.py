"""SimulationResult: derived quantities, accounting check, rendering."""

import pytest

from repro.core.results import SimulationResult


def result(**overrides):
    base = dict(
        trace_name="t", policy_name="p", num_disks=2, cache_blocks=64,
        fetches=10, compute_ms=1000.0, driver_ms=5.0, stall_ms=95.0,
        elapsed_ms=1100.0, average_fetch_ms=9.5, disk_utilization=0.5,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestDerived:
    def test_second_conversions(self):
        r = result()
        assert r.elapsed_s == pytest.approx(1.1)
        assert r.compute_s == pytest.approx(1.0)
        assert r.driver_s == pytest.approx(0.005)
        assert r.stall_s == pytest.approx(0.095)


class TestAccounting:
    def test_consistent_passes(self):
        result().check_accounting()

    def test_inconsistent_raises(self):
        bad = result(elapsed_ms=1200.0)
        with pytest.raises(AssertionError, match="accounting identity"):
            bad.check_accounting()

    def test_tolerance_respected(self):
        nearly = result(elapsed_ms=1100.0 + 1e-9)
        nearly.check_accounting(tolerance_ms=1e-6)


class TestRendering:
    def test_str_mentions_components(self):
        text = str(result())
        for token in ("t/p", "disks=2", "elapsed=1.100s", "fetches=10"):
            assert token in text

    def test_to_dict_rounding(self):
        d = result().to_dict()
        assert d["trace"] == "t"
        assert d["elapsed_s"] == 1.1
        assert d["disks"] == 2

    def test_to_dict_exact_ms_fields_preserve_identity(self):
        # The rounded *_s display fields break the accounting identity
        # (compute + driver + stall == elapsed); the exact *_ms fields
        # alongside them must preserve it at full float precision.
        r = result(
            compute_ms=1000.0001, driver_ms=5.00004, stall_ms=95.00003,
            elapsed_ms=1000.0001 + 5.00004 + 95.00003,
        )
        d = r.to_dict()
        assert d["compute_ms"] + d["driver_ms"] + d["stall_ms"] == d["elapsed_ms"]
        assert d["compute_ms"] == r.compute_ms
        assert d["elapsed_ms"] == r.elapsed_ms
        # The rounded fields are still present for human consumption.
        assert d["elapsed_s"] == round(r.elapsed_s, 4)

    def test_to_dict_includes_stall_breakdown_only_when_attributed(self):
        r = result()
        assert "stall_breakdown_ms" not in r.to_dict()
        r.stall_breakdown = {"demand-miss-never-prefetched": 95.0}
        assert r.to_dict()["stall_breakdown_ms"] == {
            "demand-miss-never-prefetched": 95.0
        }

    def test_stall_breakdown_is_not_a_dataclass_field(self):
        # Keeping the breakdown out of dataclasses.asdict() keeps golden
        # digests stable across observed/unobserved runs.
        import dataclasses

        r = result()
        r.stall_breakdown = {"failover": 1.0}
        assert "stall_breakdown" not in dataclasses.asdict(r)


class TestSimpleDrive:
    def test_uniform_access(self):
        from repro.disk.simple import SimpleDrive

        drive = SimpleDrive(access_ms=7.0)
        assert drive.service(100, 0.0).total == pytest.approx(7.0)
        assert drive.service(5, 0.0).total == pytest.approx(7.0)

    def test_sequential_discount(self):
        from repro.disk.simple import SimpleDrive

        drive = SimpleDrive(access_ms=10.0, sequential_ms=2.0)
        drive.service(50, 0.0)
        b = drive.service(51, 10.0)
        assert b.cache_hit
        assert b.total == pytest.approx(2.0)
        b2 = drive.service(53, 20.0)
        assert not b2.cache_hit

    def test_counters(self):
        from repro.disk.simple import SimpleDrive

        drive = SimpleDrive(access_ms=1.0, sequential_ms=0.5)
        drive.service(1, 0.0)
        drive.service(2, 1.0)
        assert drive.requests_served == 2
        assert drive.cache_hits == 1

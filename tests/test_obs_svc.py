"""Service-tier telemetry: spans, Prometheus exposition, JSON logs, top.

The acceptance criteria this file pins (ISSUE 9 / docs/OBSERVABILITY.md,
"Service telemetry"):

* one merged Perfetto timeline contains both the service spans
  (admission/queue/store/worker) and the inner simulation's events for
  the same request, linked by correlation ID;
* ``render_prometheus`` produces valid text exposition (own validator);
* all 14 golden digests are unchanged with telemetry on (the off case is
  pinned by tests/test_svc_chaos.py's acceptance sweep and
  tests/test_golden_results.py itself);
* zero-shadowing: an untraced service holds no tracer and untraced pool
  records carry no telemetry fields at all;
* ``/v1/events?since=N`` is exclusive in N and stamps every event with
  the originating request's correlation ID.
"""

import asyncio
import io
import json
import logging as stdlib_logging

import pytest

from repro.obs.logging import (
    JsonFormatter,
    _JsonHandler,
    configure_logging,
    get_correlation_id,
    get_logger,
    reset_correlation_id,
    set_correlation_id,
)
from repro.obs.metrics import Histogram, MetricsRegistry, REQUEST_BUCKETS_MS
from repro.obs.prom import (
    labeled,
    metric_name,
    render_prometheus,
    split_labels,
    validate_exposition,
)
from repro.obs.svc import (
    SERVICE_PID,
    SIM_PID_BASE,
    SPAN_ADMISSION_WAIT,
    SPAN_HTTP_PARSE,
    SPAN_POOL_QUEUE,
    SPAN_STORE_GET,
    SPAN_WORKER_EXECUTE,
    ServiceTracer,
    maybe_span,
    new_correlation_id,
    reconstruct_durations,
)
from repro.runner.pool import SupervisedPool
from repro.svc import ServiceConfig, SimulationService
from repro.svc.top import render_top, run_top

from tests import test_golden_results as golden
from tests.test_runner import (  # noqa: F401 — fixture re-export
    FakeClock,
    golden_plan,
    kind_cell,
    test_kinds,
)


# -- Histogram: +Inf bucket, sum/count, cumulative export -------------------------------


class TestHistogramExposition:
    def test_cumulative_ends_with_inf_equal_to_count(self):
        hist = Histogram("t", (1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 7.0, 100.0, 200.0):
            hist.observe(value)
        pairs = hist.cumulative()
        assert pairs == [("1", 2), ("5", 3), ("10", 4), ("+Inf", 6)]
        # Cumulative counts are monotone and the +Inf bucket is the total.
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == ("+Inf", hist.count)

    def test_float_bounds_keep_exact_labels(self):
        hist = Histogram("t", (0.25, 2.5, 10.0))
        hist.observe(0.1)
        labels = [label for label, _ in hist.cumulative()]
        # Integral bounds render bare, fractional ones via repr — both
        # round-trip exactly (no float formatting drift between scrapes).
        assert labels == ["0.25", "2.5", "10", "+Inf"]

    def test_as_dict_gains_sum_and_inf_bucket_keeps_legacy_keys(self):
        hist = Histogram("t", (1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        payload = hist.as_dict()
        # Backward compatibility: every pre-existing JSON key survives.
        for legacy in ("name", "count", "mean", "min", "max", "buckets",
                       "overflow"):
            assert legacy in payload
        assert payload["sum"] == pytest.approx(55.5)
        assert payload["count"] == 3
        # The appended +Inf bucket carries the overflow (non-cumulative)
        # count, exactly like every other JSON bucket entry.
        assert payload["buckets"][-1] == {"le": "+Inf", "count": 1}
        assert payload["buckets"][:-1] == [
            {"le": 1.0, "count": 1}, {"le": 10.0, "count": 1},
        ]
        assert payload["overflow"] == 1


# -- Prometheus rendering and validation ------------------------------------------------


class TestLabeled:
    def test_labels_sort_and_round_trip(self):
        name = labeled("svc.http.request_ms", route="cells", code="200")
        assert name == 'svc.http.request_ms{code="200",route="cells"}'
        base, block = split_labels(name)
        assert base == "svc.http.request_ms"
        assert block == '{code="200",route="cells"}'

    def test_no_labels_is_identity(self):
        assert labeled("svc.requests") == "svc.requests"
        assert split_labels("svc.requests") == ("svc.requests", "")

    def test_escaping(self):
        name = labeled("m", msg='say "hi"\nback\\slash')
        _, block = split_labels(name)
        assert '\\"hi\\"' in block and "\\n" in block and "\\\\" in block

    def test_metric_name_sanitizes_and_prefixes(self):
        assert metric_name("svc.request_ms") == "repro_svc_request_ms"
        assert metric_name("svc.http.request-ms") == "repro_svc_http_request_ms"


class TestRenderPrometheus:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.inc("svc.requests", 3)
        registry.inc(labeled("svc.http.requests", route="cells"), 2)
        registry.gauge("svc.pool.queue_depth").set(4.0)
        hist = registry.histogram("svc.request_ms", (1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        for code in ("200", "404"):
            registry.histogram(
                labeled("svc.http.request_ms", route="cells", code=code),
                (1.0, 10.0),
            ).observe(2.0)
        return registry

    def test_exposition_is_valid(self):
        text = render_prometheus(self.build_registry())
        assert validate_exposition(text) == []

    def test_counter_total_suffix_and_values(self):
        text = render_prometheus(self.build_registry())
        assert "repro_svc_requests_total 3" in text
        assert 'repro_svc_http_requests_total{route="cells"} 2' in text

    def test_histogram_buckets_sum_count(self):
        text = render_prometheus(self.build_registry())
        assert 'repro_svc_request_ms_bucket{le="1"} 1' in text
        assert 'repro_svc_request_ms_bucket{le="10"} 2' in text
        assert 'repro_svc_request_ms_bucket{le="100"} 2' in text
        assert 'repro_svc_request_ms_bucket{le="+Inf"} 3' in text
        assert "repro_svc_request_ms_sum 505.5" in text
        assert "repro_svc_request_ms_count 3" in text

    def test_label_variants_share_one_family_header(self):
        text = render_prometheus(self.build_registry())
        # Two labelled series, exactly one HELP/TYPE header for the family.
        assert text.count("# TYPE repro_svc_http_request_ms histogram") == 1
        assert (
            'repro_svc_http_request_ms_bucket{code="200",route="cells",le="1"}'
            in text
        )
        assert (
            'repro_svc_http_request_ms_bucket{code="404",route="cells",le="1"}'
            in text
        )

    def test_validator_catches_structural_damage(self):
        assert validate_exposition("this is not a metric line\n")
        missing_inf = (
            "# HELP repro_x histogram\n# TYPE repro_x histogram\n"
            'repro_x_bucket{le="1"} 1\nrepro_x_sum 1\nrepro_x_count 1\n'
        )
        assert any("+Inf" in e for e in validate_exposition(missing_inf))
        non_cumulative = (
            "# HELP repro_x h\n# TYPE repro_x histogram\n"
            'repro_x_bucket{le="1"} 5\nrepro_x_bucket{le="+Inf"} 3\n'
        )
        assert any(
            "cumulative" in e for e in validate_exposition(non_cumulative)
        )

    def test_live_service_registry_renders_valid(self, test_kinds, tmp_path):
        async def scenario(service):
            await service.run_cell(kind_cell("instant", n=1))
            await service.run_cell(kind_cell("instant", n=1))
            service.sample_gauges()
            text = render_prometheus(service.metrics)
            assert validate_exposition(text) == []
            assert "repro_svc_requests_total 2" in text
            assert "repro_svc_store_hit_ratio 0.5" in text
            assert (
                'repro_svc_request_outcome_ms_count{served="store"} 1' in text
            )

        run_service(tmp_path, scenario)


# -- structured JSON logging ------------------------------------------------------------


def capture_logs(level="info"):
    """(stream, handler): configure_logging onto an in-memory stream."""
    stream = io.StringIO()
    handler = configure_logging(stream=stream, level=level)
    return stream, handler


def detach(handler):
    stdlib_logging.getLogger("repro").removeHandler(handler)


class TestJsonLogging:
    def test_records_are_json_with_extras(self):
        stream, handler = capture_logs()
        try:
            get_logger("repro.svc.test").info(
                "hello", extra={"route": "cells", "status": 200}
            )
        finally:
            detach(handler)
        payload = json.loads(stream.getvalue())
        assert payload["msg"] == "hello"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.svc.test"
        assert payload["route"] == "cells" and payload["status"] == 200
        assert isinstance(payload["ts"], float)
        assert "corr_id" not in payload  # none bound

    def test_correlation_id_rides_the_contextvar(self):
        stream, handler = capture_logs()
        token = set_correlation_id("r-test-1")
        try:
            assert get_correlation_id() == "r-test-1"
            get_logger("repro.svc.test").warning("traced")
        finally:
            reset_correlation_id(token)
            detach(handler)
        assert get_correlation_id() is None
        assert json.loads(stream.getvalue())["corr_id"] == "r-test-1"

    def test_explicit_record_corr_id_wins(self):
        stream, handler = capture_logs()
        token = set_correlation_id("context-id")
        try:
            get_logger("repro.svc.test").info(
                "x", extra={"corr_id": "explicit-id"}
            )
        finally:
            reset_correlation_id(token)
            detach(handler)
        assert json.loads(stream.getvalue())["corr_id"] == "explicit-id"

    def test_exceptions_serialize_under_exc(self):
        stream, handler = capture_logs()
        try:
            try:
                raise ValueError("boom")
            except ValueError:
                get_logger("repro.svc.test").exception("failed")
        finally:
            detach(handler)
        payload = json.loads(stream.getvalue())
        assert "ValueError: boom" in payload["exc"]

    def test_unserializable_extras_fall_back_to_repr(self):
        stream, handler = capture_logs()
        try:
            get_logger("repro.svc.test").info("x", extra={"obj": object()})
        finally:
            detach(handler)
        assert "object object" in json.loads(stream.getvalue())["obj"]

    def test_configure_is_idempotent(self):
        first_stream, first = capture_logs()
        second_stream, second = capture_logs()
        try:
            root = stdlib_logging.getLogger("repro")
            json_handlers = [
                h for h in root.handlers if isinstance(h, _JsonHandler)
            ]
            assert json_handlers == [second]
            get_logger("repro.svc.test").info("once")
        finally:
            detach(second)
        assert first_stream.getvalue() == ""
        assert json.loads(second_stream.getvalue())["msg"] == "once"

    def test_unconfigured_process_is_silent(self, capsys):
        # Strict opt-in: without configure_logging even WARNING+ must not
        # reach stderr (logging.lastResort would print it if the repro
        # root had no NullHandler parked by get_logger).
        get_logger("repro.svc.test").warning("should stay silent")
        captured = capsys.readouterr()
        assert "should stay silent" not in captured.err
        assert "should stay silent" not in captured.out


# -- ServiceTracer ----------------------------------------------------------------------


def make_tracer(**kwargs):
    clock = FakeClock(now=0.0)
    tracer = ServiceTracer(clock=clock, **kwargs)
    return tracer, clock


def sim_document():
    """A miniature repro.obs.export-shaped document."""
    return {
        "traceEvents": [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "sim ld/forestall"}},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 0.0, "dur": 1500.0,
             "name": "disk.busy", "cat": "disk", "args": {"disk": 0}},
        ],
        "displayTimeUnit": "ms",
    }


class TestServiceTracer:
    def test_span_context_manager_measures_with_injected_clock(self):
        tracer, clock = make_tracer()
        with tracer.span(SPAN_STORE_GET, "r-1", hash="abcd"):
            clock.advance(0.25)
        (span,) = tracer.spans
        assert span.name == SPAN_STORE_GET
        assert span.corr_id == "r-1"
        assert span.start_ms == 0.0
        assert span.dur_ms == pytest.approx(250.0)
        assert span.args == {"hash": "abcd"}

    def test_span_records_even_when_the_block_raises(self):
        tracer, clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span(SPAN_ADMISSION_WAIT, "r-2"):
                clock.advance(0.1)
                raise RuntimeError("rejected")
        (span,) = tracer.spans
        assert span.name == SPAN_ADMISSION_WAIT
        assert span.dur_ms == pytest.approx(100.0)

    def test_ring_buffers_bound_memory(self):
        tracer, _ = make_tracer(max_spans=3, max_sim_traces=2)
        for index in range(5):
            tracer.add_span(SPAN_HTTP_PARSE, f"r-{index}", 0.0, 1.0)
        assert [s.corr_id for s in tracer.spans] == ["r-2", "r-3", "r-4"]
        for index in range(3):
            tracer.attach_simulation(f"r-{index}", sim_document())
        assert tracer.sim_trace_for("r-0") is None
        assert tracer.sim_trace_for("r-2") is not None

    def test_spans_for_filters_by_correlation_id(self):
        tracer, _ = make_tracer()
        tracer.add_span(SPAN_POOL_QUEUE, "r-a", 0.0, 1.0)
        tracer.add_span(SPAN_WORKER_EXECUTE, "r-b", 1.0, 2.0)
        tracer.add_span(SPAN_WORKER_EXECUTE, "r-a", 1.0, 3.0)
        assert [s.name for s in tracer.spans_for("r-a")] == [
            SPAN_POOL_QUEUE, SPAN_WORKER_EXECUTE,
        ]

    def test_chrome_trace_merges_service_and_sim_rows(self):
        tracer, clock = make_tracer()
        with tracer.span(SPAN_ADMISSION_WAIT, "r-7", hash="h7"):
            clock.advance(0.05)
        tracer.add_span(SPAN_WORKER_EXECUTE, "r-7", 50.0, 400.0, worker=0)
        tracer.attach_simulation("r-7", sim_document())
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        svc_rows = [e for e in events if e.get("cat") == "svc"]
        assert {row["pid"] for row in svc_rows} == {SERVICE_PID}
        assert all(row["args"]["corr_id"] == "r-7" for row in svc_rows)
        # Distinct tracks per span kind, labelled via thread_name metadata.
        thread_names = {
            meta["args"]["name"]
            for meta in events
            if meta.get("ph") == "M" and meta.get("name") == "thread_name"
        }
        assert {SPAN_ADMISSION_WAIT, SPAN_WORKER_EXECUTE} <= thread_names
        # The simulation's rows are re-homed onto their own pid, stamped
        # with the correlation ID, and keep their simulated timestamps.
        sim_rows = [e for e in events if e.get("pid", 0) >= SIM_PID_BASE]
        assert sim_rows, "simulation rows missing from the merged document"
        assert all(row["args"]["corr_id"] == "r-7" for row in sim_rows)
        renamed = [
            row for row in sim_rows
            if row.get("ph") == "M" and row.get("name") == "process_name"
        ]
        assert renamed and "[r-7]" in renamed[0]["args"]["name"]
        assert doc["otherData"]["simulations"] == ["r-7"]

    def test_reconstruct_durations_round_trips_exact_values(self):
        tracer, clock = make_tracer()
        clock.advance(1.0)
        with tracer.span(SPAN_ADMISSION_WAIT, "r-9"):
            clock.advance(0.125)
        tracer.add_span(SPAN_WORKER_EXECUTE, "r-9", 1125.0, 917.25)
        tracer.add_span(SPAN_WORKER_EXECUTE, "r-other", 0.0, 1.0)
        durations = reconstruct_durations(tracer.chrome_trace(), "r-9")
        assert durations[SPAN_ADMISSION_WAIT] == (1000.0, 125.0)
        assert durations[SPAN_WORKER_EXECUTE] == (1125.0, 917.25)
        assert set(durations) == {SPAN_ADMISSION_WAIT, SPAN_WORKER_EXECUTE}

    def test_maybe_span_without_tracer_is_free(self):
        with maybe_span(None, SPAN_STORE_GET, "r-0"):
            pass  # must not raise, must not need a tracer

    def test_correlation_ids_are_unique(self):
        ids = {new_correlation_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(corr_id.startswith("r") for corr_id in ids)


# -- service harness --------------------------------------------------------------------


def service_config(tmp_path, **kwargs):
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("request_timeout_s", 60.0)
    return ServiceConfig(**kwargs)


def run_service(tmp_path, scenario, **config_kwargs):
    async def main():
        service = SimulationService(service_config(tmp_path, **config_kwargs))
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.drain("signal")

    return asyncio.run(main())


# -- /v1/events?since=N semantics -------------------------------------------------------


class TestEventsSince:
    """Regression pin: ``since`` is **exclusive** (seq strictly greater).

    Referenced by the docstrings of ``SimulationService.events_since``
    and ``ServiceServer._stream_events`` — renaming this class breaks
    that contract trail on purpose.
    """

    def test_since_is_exclusive_and_zero_returns_everything(
            self, test_kinds, tmp_path):
        async def scenario(service):
            await service.run_cell(
                kind_cell("instant", n=1), corr_id="req-a"
            )
            everything = await service.events_since(0)
            seqs = [event["seq"] for event in everything]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            pivot = seqs[len(seqs) // 2]
            tail = await service.events_since(pivot)
            # Strictly greater: the pivot event itself is never resent.
            assert [e["seq"] for e in tail] == [s for s in seqs if s > pivot]
            assert await service.events_since(seqs[-1], timeout_s=0.05) == []

        run_service(tmp_path, scenario)

    def test_every_event_is_stamped_with_the_originating_corr_id(
            self, test_kinds, tmp_path):
        async def scenario(service):
            await service.run_cell(
                kind_cell("instant", n=2), corr_id="req-b"
            )
            events = await service.events_since(0)
            by_type = {}
            for event in events:
                by_type.setdefault(event["type"], []).append(event)
            # The computed path publishes queued → record → request, all
            # carrying the leader's correlation ID.
            assert by_type["queued"][0]["corr_id"] == "req-b"
            assert by_type["record"][0]["corr_id"] == "req-b"
            assert by_type["request"][0]["corr_id"] == "req-b"
            # A store hit publishes a request event for its own corr_id.
            await service.run_cell(
                kind_cell("instant", n=2), corr_id="req-c"
            )
            events = await service.events_since(0)
            hits = [e for e in events if e.get("served") == "store"]
            assert hits and hits[-1]["corr_id"] == "req-c"

        run_service(tmp_path, scenario)


# -- zero-shadowing when telemetry is off -----------------------------------------------


class TestZeroShadow:
    def test_untraced_service_holds_no_tracer(self, test_kinds, tmp_path):
        async def scenario(service):
            assert service.tracer is None
            assert service.pool.tracer is None
            record, served = await service.run_cell(
                kind_cell("instant", n=3)
            )
            assert served == "computed"
            # The returned (and stored) record carries no transport
            # fields — byte-identical to the journal schema.
            assert "telemetry" not in record and "corr_id" not in record
            status = service.status()
            assert status["telemetry"] == {"tracing": False, "spans": 0}

        run_service(tmp_path, scenario)

    def test_batch_pool_records_carry_no_telemetry_fields(
            self, test_kinds, tmp_path):
        # The runner's batch path (sweeps, resume) never passes task
        # metadata: the journal schema must stay byte-identical to PR 5.
        pool = SupervisedPool(jobs=1)
        records = []
        pool.run([kind_cell("instant", n=4)], records.append)
        (record,) = records
        assert record["status"] == "ok"
        assert "telemetry" not in record
        assert "corr_id" not in record

    def test_traced_service_strips_transport_fields_from_responses(
            self, test_kinds, tmp_path):
        async def scenario(service):
            assert service.tracer is not None
            record, _ = await service.run_cell(
                kind_cell("instant", n=5), corr_id="req-t"
            )
            # Telemetry crossed the pipe (the tracer adopted it) but the
            # response record matches what a store hit will return.
            assert "telemetry" not in record and "corr_id" not in record
            hit, served = await service.run_cell(
                kind_cell("instant", n=5), corr_id="req-u"
            )
            assert served == "store" and hit == record
            names = {span.name for span in service.tracer.spans_for("req-t")}
            assert SPAN_WORKER_EXECUTE in names

        run_service(tmp_path, scenario, trace=True)


# -- the acceptance criterion: golden digests + merged timeline -------------------------


class TestGoldenThroughTracedService:
    def test_golden_sweep_traced_and_logged_is_bit_identical(self, tmp_path):
        """All 14 golden cells through a *traced, logging* service match
        the pinned digests, and one merged Perfetto document carries the
        service spans and the inner simulation events for the same
        request, linked by correlation ID."""
        stream = io.StringIO()
        handler = configure_logging(stream=stream)
        try:
            async def main():
                config = service_config(
                    tmp_path, jobs=2, request_timeout_s=600.0, trace=True
                )
                service = SimulationService(config)
                await service.start()
                try:
                    results = await service.run_cells(
                        golden_plan(), corr_id="golden"
                    )
                    digests = {}
                    for (record, served), gcell in zip(results, golden.CELLS):
                        assert record is not None and record["status"] == "ok"
                        assert served == "computed"
                        digests[golden.cell_id(gcell)] = record["digest"]
                    assert digests == golden.EXPECTED
                    return service.tracer
                finally:
                    await service.drain("signal")

            tracer = asyncio.run(main())
        finally:
            detach(handler)

        # Every member request produced an in-worker execute span and an
        # adopted simulation timeline (all golden cells are plain runs).
        for index in range(len(golden.CELLS)):
            corr_id = f"golden.{index}"
            names = {span.name for span in tracer.spans_for(corr_id)}
            assert SPAN_WORKER_EXECUTE in names, corr_id
            assert SPAN_ADMISSION_WAIT in names, corr_id
            assert SPAN_POOL_QUEUE in names, corr_id
            assert SPAN_STORE_GET in names, corr_id
            assert tracer.sim_trace_for(corr_id) is not None, corr_id

        # Perfetto round-trip: reconstruct the admission-wait and
        # worker-execute durations for one request from the exported span
        # args alone and compare them to the live spans, exactly.
        doc = tracer.chrome_trace()
        corr_id = "golden.0"
        durations = reconstruct_durations(doc, corr_id)
        live = {
            span.name: (span.start_ms, span.dur_ms)
            for span in tracer.spans_for(corr_id)
        }
        assert durations[SPAN_ADMISSION_WAIT] == live[SPAN_ADMISSION_WAIT]
        assert durations[SPAN_WORKER_EXECUTE] == live[SPAN_WORKER_EXECUTE]
        # ... and the same document holds that request's simulation rows.
        sim_rows = [
            row for row in doc["traceEvents"]
            if row.get("pid", 0) >= SIM_PID_BASE
            and row.get("args", {}).get("corr_id") == corr_id
            and row.get("ph") == "X"
        ]
        assert sim_rows, "no simulation events for golden.0 in the merge"

        # The structured log captured the run, every line parseable JSON.
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert lines
        parsed = [json.loads(line) for line in lines]
        assert any(entry["msg"] == "service started" for entry in parsed)
        assert any(entry["msg"] == "service drained" for entry in parsed)


# -- repro-sim top ----------------------------------------------------------------------


def sample_status():
    return {
        "draining": False,
        "telemetry": {"tracing": True, "spans": 42},
        "breaker": {"state": "closed", "consecutive_failures": 1,
                    "failure_threshold": 5, "retry_after_s": 0},
        "admission": {"limit": 8, "in_system": 2, "admitted": 10,
                      "rejected": 1},
        "pool": {"jobs": 2, "queue_depth": 3,
                 "utilization": {"0": 0.75, "1": 0.25}},
        "store": {"hit_ratio": 0.5, "resident": 7, "max_entries": 16,
                  "evictions": 2, "corrupt": 0},
        "requests": {"svc.requests": 11, "svc.requests_x": 1},
    }


def sample_metrics():
    registry = MetricsRegistry()
    hist = registry.histogram("svc.request_ms", REQUEST_BUCKETS_MS)
    for value in (0.5, 2.0, 40.0, 900.0):
        hist.observe(value)
    registry.histogram("svc.store.fsync_ms", (1.0, 10.0)).observe(0.3)
    return registry.to_dict()


class TestTopConsole:
    def test_render_top_is_a_pure_frame(self):
        frame = render_top(sample_status(), sample_metrics(), width=100)
        assert "tracing: on (42 spans)" in frame
        assert "breaker: closed" in frame and "failures 1/5" in frame
        assert "2/8 in system" in frame
        assert "queue depth 3" in frame
        assert "w0:" in frame and "75.0% busy" in frame
        assert "50.0% hits" in frame and "resident 7/16" in frame
        assert "latency: n=4" in frame and "p50=" in frame
        assert "store fsync: n=1" in frame
        assert all(len(line) <= 100 for line in frame.splitlines())

    def test_render_top_draining_service(self):
        status = dict(sample_status(), draining=True)
        frame = render_top(status, {"histograms": {}})
        assert "DRAINING" in frame

    def test_run_top_against_dead_port_fails_cleanly(self, capsys):
        # Port 1 is never listening on CI boxes; --once exits 1 with a
        # message, never a traceback.
        assert run_top(host="127.0.0.1", port=1, iterations=1) == 1
        assert "unreachable" in capsys.readouterr().out

    def test_run_top_once_against_live_service(self, test_kinds, tmp_path):
        from repro.svc import ServiceServer

        async def main():
            config = service_config(tmp_path, trace=True)
            service = SimulationService(config)
            server = ServiceServer(service, port=0)
            await server.start()
            try:
                await service.run_cell(kind_cell("instant", n=9))
                port = server.bound_port
                code = await asyncio.to_thread(
                    run_top, "127.0.0.1", port, 0.01, 1
                )
                return code
            finally:
                await server.stop()
                await service.drain("signal")

        assert asyncio.run(main()) == 0

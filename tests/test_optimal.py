"""Brute-force optimal schedules and the paper's theorem bounds."""

import pytest

from repro.theory.model import run_aggressive_model
from repro.theory.optimal import optimal_elapsed
from tests.test_theory_model import FIG1_CACHE, FIG1_DISK, FIG1_SEQUENCE


class TestFigure1Optimal:
    def test_optimal_is_six_time_units(self):
        """Figure 1(b): evicting d (not F) on the first fetch balances the
        disks and saves one time unit — 6 instead of 7."""
        opt = optimal_elapsed(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, initial_cache=FIG1_CACHE,
        )
        assert opt == 6

    def test_greedy_rules_are_suboptimal_on_two_disks(self):
        """The point of the example: aggressive's locally-optimal rules
        lose to a schedule that violates optimal replacement."""
        greedy = run_aggressive_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, batch_size=1, initial_cache=FIG1_CACHE,
        )
        opt = optimal_elapsed(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, initial_cache=FIG1_CACHE,
        )
        assert greedy.elapsed == opt + 1


class TestOptimalBasics:
    def one_disk(self, _b):
        return 0

    def test_empty_sequence(self):
        assert optimal_elapsed([], 2, 1, 1, self.one_disk) == 0

    def test_all_cached(self):
        assert optimal_elapsed(
            [1, 2, 1], 2, 3, 1, self.one_disk, initial_cache=(1, 2)
        ) == 3

    def test_single_cold_miss(self):
        # Fetch starts immediately; block available at F; ref at F..F+1.
        assert optimal_elapsed([9], 1, 4, 1, self.one_disk) == 5

    def test_prefetch_overlaps_hits(self):
        # 1 cached; 2 fetched (F=2) behind two hits: no stall at all.
        assert optimal_elapsed(
            [1, 1, 2], 2, 2, 1, self.one_disk, initial_cache=(1,)
        ) == 3

    def test_eviction_makes_block_unavailable_immediately(self):
        # K=1: to fetch 2 we must evict 1, so the two hits on 1 cannot
        # both precede the fetch... optimal: hit 1, hit 1, fetch 2 (stall 2).
        assert optimal_elapsed(
            [1, 1, 2], 1, 2, 1, self.one_disk, initial_cache=(1,)
        ) == 5


class TestTheoremBounds:
    """Theorem 1: aggressive <= d (1 + F/K) x optimal (+slack for the
    additive constant); every tiny instance must respect it."""

    CASES = [
        # (blocks, K, F, d)
        ([1, 2, 3, 1, 2, 3], 2, 2, 1),
        ([1, 2, 3, 4, 1, 2], 3, 2, 2),
        ([5, 1, 5, 2, 5, 3], 2, 2, 2),
        ([1, 2, 1, 3, 1, 2], 2, 3, 1),
        ([4, 3, 2, 1, 4, 3], 3, 2, 2),
    ]

    @pytest.mark.parametrize("blocks,K,F,d", CASES)
    def test_aggressive_within_theorem_bound(self, blocks, K, F, d):
        disk_of = lambda b: (b if isinstance(b, int) else hash(b)) % d
        greedy = run_aggressive_model(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d,
            disk_of=disk_of, batch_size=1,
        )
        opt = optimal_elapsed(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        bound = d * (1 + F / K) * opt + d * F  # additive slack for cold start
        assert greedy.elapsed <= bound

    @pytest.mark.parametrize("blocks,K,F,d", CASES)
    def test_optimal_at_least_reference_count(self, blocks, K, F, d):
        disk_of = lambda b: b % d
        opt = optimal_elapsed(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        assert opt >= len(blocks)

    @pytest.mark.parametrize("blocks,K,F,d", CASES)
    def test_optimal_never_beats_unavoidable_cold_fetch(self, blocks, K, F, d):
        # The first reference always costs at least F (cold cache).
        disk_of = lambda b: b % d
        opt = optimal_elapsed(
            blocks, cache_blocks=K, fetch_time=F, num_disks=d, disk_of=disk_of
        )
        assert opt >= len(blocks) + F

    def test_more_disks_never_hurt_optimal(self):
        blocks = [1, 2, 3, 4, 1, 2]
        one = optimal_elapsed(blocks, 3, 2, 1, lambda b: 0)
        two = optimal_elapsed(blocks, 3, 2, 2, lambda b: b % 2)
        # Not a theorem in general (layout changes too), but with the same
        # blocks spread over more independent disks it holds here.
        assert two <= one

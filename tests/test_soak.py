"""An in-process mini-soak: the hardened server behind a fault-injecting
:class:`ChaosProxy`, driven by the open-loop load generator.

This is the pytest-sized sibling of ``scripts/soak_smoke.py`` (which
runs the real thing across processes in CI).  The invariants are the
ones that define "shaped, not collapsed" overload behaviour:

* no result is ever lost or duplicated — every digest observed for a
  config hash is the same digest, and it is the *correct* one;
* every connection the proxy opened is closed again (no leaks);
* the whole run is reproducible from its seeds: same loadgen plan
  fingerprint, same chaos plan counts;
* the Prometheus exposition stays structurally valid mid-chaos and the
  request counter is monotone;
* overload answers are 4xx + Retry-After, never a 5xx from resource
  exhaustion.
"""

import asyncio

from repro.loadgen import LoadgenConfig, build_plan, run_loadgen
from repro.obs.prom import validate_exposition
from repro.svc import (
    ChaosProxy,
    NetChaosSchedule,
    ProtocolLimits,
    ServiceConfig,
    ServiceServer,
    SimulationService,
)

from tests.test_runner import test_kinds  # noqa: F401
from tests.test_svc_http import fetch


INSTANT_SPEC = {"trace": "ld", "policy": "demand", "disks": 1,
                "kind": "instant", "params": {"n": 7}}
EXPECTED_DIGEST = "digest-7"

CHAOS = dict(seed=42, reset_fraction=0.15, slowloris_fraction=0.1,
             throttle_fraction=0.15, latency_ms=1.0, jitter_ms=2.0,
             reset_after_bytes=128, throttle_bytes_per_s=65536.0,
             chunk_bytes=512, drip_chunk_bytes=32, drip_delay_ms=2.0)

LOAD = dict(rate_per_s=40.0, duration_s=1.5, seed=7,
            mix={"cells": 0.5, "results": 0.3, "status": 0.2})


def soak(scenario, tmp_path, **config_kwargs):
    """loadgen → ChaosProxy → ServiceServer, all in one event loop."""

    async def main():
        config = ServiceConfig(store_dir=str(tmp_path / "store"), jobs=1,
                               **config_kwargs)
        service = SimulationService(config)
        server = ServiceServer(service, port=0)
        await server.start()
        proxy = ChaosProxy("127.0.0.1", server.bound_port,
                           NetChaosSchedule(**CHAOS))
        await proxy.start()
        try:
            return await scenario(service, server, proxy)
        finally:
            await proxy.stop()
            await server.stop()
            await service.drain("signal")

    return asyncio.run(main())


class TestMiniSoak:
    def test_invariants_hold_under_seeded_chaos(self, test_kinds, tmp_path):
        async def scenario(service, server, proxy):
            config = LoadgenConfig(port=proxy.bound_port,
                                   specs=[dict(INSTANT_SPEC)], **LOAD)
            report = await run_loadgen(config)

            # -- nothing lost, nothing duplicated -----------------------
            assert report["digest_conflicts"] == []
            for digests in report["digests"].values():
                assert digests == [EXPECTED_DIGEST]

            # -- the run accounted for every planned arrival ------------
            arrivals = report["plan"]["arrivals"]
            assert arrivals > 0
            assert report["completed"] == arrivals
            answered = sum(report["status_counts"].values())
            errored = sum(report["errors"].values())
            assert answered + errored == arrivals
            # Chaos (resets, drops) produces client-side errors, but a
            # healthy majority of requests still complete.
            assert answered > arrivals // 2

            # -- overload is shaped, never collapsed --------------------
            for status in report["status_counts"]:
                assert not status.startswith("5"), (
                    f"5xx under chaos: {report['status_counts']}"
                )

            # -- every proxied connection was closed again --------------
            for _ in range(100):
                if proxy.open_connections == 0:
                    break
                await asyncio.sleep(0.05)
            assert proxy.open_connections == 0
            assert proxy.counters["closed"] == proxy.counters["connections"]
            assert proxy.counters["connections"] == \
                arrivals - report["chaos_dropped"]

            # -- telemetry stayed valid mid-chaos -----------------------
            status, headers, text = await fetch(
                server.bound_port, "GET", "/v1/metrics",
                extra_headers={"Accept": "text/plain"},
            )
            assert status == 200
            assert validate_exposition(text) == []
            assert "repro_svc_requests_total" in text

            # -- the request counter is monotone ------------------------
            first = service.metrics.to_dict()["counters"].get(
                "svc.requests", 0
            )
            status, _, _ = await fetch(
                server.bound_port, "POST", "/v1/cells", INSTANT_SPEC,
            )
            assert status == 200
            second = service.metrics.to_dict()["counters"].get(
                "svc.requests", 0
            )
            assert second == first + 1

            return report

        report = soak(scenario, tmp_path)
        # The chaos actually bit: the proxy injected at least one of
        # each configured fault class over this many connections.
        assert report["plan"]["arrivals"] >= 30

    def test_run_is_reproducible_from_its_seeds(self, test_kinds, tmp_path):
        load = LoadgenConfig(port=1, specs=[dict(INSTANT_SPEC)], **LOAD)
        plan_a, print_a = build_plan(load)
        plan_b, print_b = build_plan(
            LoadgenConfig(port=2, specs=[dict(INSTANT_SPEC)], **LOAD)
        )
        # The loadgen plan is pure in its seed — the port (or any other
        # runtime detail) never leaks into the timetable.
        assert plan_a == plan_b and print_a == print_b
        # The chaos schedule's fault fingerprint is equally pure.
        connections = len(plan_a)
        assert NetChaosSchedule(**CHAOS).plan_counts(connections) == \
            NetChaosSchedule(**CHAOS).plan_counts(connections)

    def test_rate_limited_soak_sheds_deterministically(
            self, test_kinds, tmp_path):
        """With a bucket that never refills during the run, the number
        of compute requests *reaching the service* past the limiter is
        exactly ``burst`` — reproducible shed accounting under chaos."""

        async def scenario(service, server, proxy):
            config = LoadgenConfig(port=proxy.bound_port,
                                   specs=[dict(INSTANT_SPEC)], **LOAD)
            report = await run_loadgen(config)
            limiter = service.rate_limiter
            cell_statuses = report["kind_status"].get("cells", {})
            cells_sent = sum(cell_statuses.values())
            # Every cell request that got an answer was either one of
            # the `burst` admitted ones or a rate-limit 429.
            admitted = cell_statuses.get("200", 0)
            limited = cell_statuses.get("429", 0)
            assert admitted <= 3  # the burst
            assert limited == cells_sent - admitted
            assert limiter.rejected_total >= limited
            assert report["shed"].get("429", 0) == limited
            assert report["retry_after_present"] >= limited
            return report

        soak(scenario, tmp_path, rate_limit_per_s=0.0001, rate_limit_burst=3,
             limits=ProtocolLimits())

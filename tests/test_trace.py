"""Trace container: statistics, scaling, persistence."""

import pytest

from repro.trace import Trace


def sample_trace():
    return Trace(
        name="sample",
        blocks=[0, 1, 0, 2],
        compute_ms=[1.0, 2.0, 3.0, 4.0],
        files={0: (0, 0), 1: (0, 1), 2: (1, 0)},
        description="test trace",
    )


class TestStatistics:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="blocks"):
            Trace(name="bad", blocks=[1, 2], compute_ms=[1.0])

    def test_reads(self):
        assert sample_trace().reads == 4

    def test_distinct_blocks(self):
        assert sample_trace().distinct_blocks == 3

    def test_compute_time_seconds(self):
        assert sample_trace().compute_time_s == pytest.approx(0.01)

    def test_mean_compute(self):
        assert sample_trace().mean_compute_ms == pytest.approx(2.5)

    def test_empty_trace_mean(self):
        assert Trace("e", [], []).mean_compute_ms == 0.0

    def test_summary_is_table3_row(self):
        s = sample_trace().summary()
        assert s == {
            "trace": "sample",
            "reads": 4,
            "distinct_blocks": 3,
            "compute_time_s": 0.0,
        }


class TestScaling:
    def test_scaled_keeps_prefix(self):
        t = sample_trace().scaled(0.5)
        assert t.blocks == [0, 1]
        assert t.compute_ms == [1.0, 2.0]

    def test_scaled_filters_files(self):
        t = sample_trace().scaled(0.5)
        assert set(t.files) == {0, 1}

    def test_scale_one_is_identity(self):
        t = sample_trace()
        assert t.scaled(1.0) is t

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            sample_trace().scaled(0.0)
        with pytest.raises(ValueError):
            sample_trace().scaled(1.5)

    def test_rescale_compute_exact_total(self):
        t = sample_trace().rescale_compute(5.0)
        assert t.compute_time_s == pytest.approx(5.0)
        # proportions preserved
        assert t.compute_ms[1] / t.compute_ms[0] == pytest.approx(2.0)

    def test_rescale_zero_compute_rejected(self):
        t = Trace("z", [1], [0.0])
        with pytest.raises(ValueError):
            t.rescale_compute(1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = sample_trace()
        path = str(tmp_path / "trace.json")
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.name == t.name
        assert loaded.blocks == t.blocks
        assert loaded.compute_ms == t.compute_ms
        assert loaded.files == t.files
        assert loaded.description == t.description

    def test_load_fileless_trace(self, tmp_path):
        t = Trace("nf", [1, 2], [1.0, 1.0])
        path = str(tmp_path / "trace.json")
        t.save(path)
        assert Trace.load(path).files is None

"""Seek model: the published HP 97560 two-piece curve."""

import math

import pytest

from repro.disk.seek import SeekModel


@pytest.fixture
def seek():
    return SeekModel()


class TestSeekCurve:
    def test_zero_distance_is_free(self, seek):
        assert seek.seek_time(0) == 0.0

    def test_one_cylinder(self, seek):
        assert seek.seek_time(1) == pytest.approx(3.24 + 0.400)

    def test_short_regime_sqrt_shape(self, seek):
        assert seek.seek_time(100) == pytest.approx(3.24 + 0.4 * 10.0)

    def test_crossover_uses_linear_regime(self, seek):
        assert seek.seek_time(383) == pytest.approx(8.00 + 0.008 * 383)

    def test_just_below_crossover_uses_sqrt(self, seek):
        expected = 3.24 + 0.4 * math.sqrt(382)
        assert seek.seek_time(382) == pytest.approx(expected)

    def test_full_stroke(self, seek):
        # 1961-cylinder seek on the HP 97560 ~ 23.7 ms.
        assert seek.seek_time(1961) == pytest.approx(8.0 + 0.008 * 1961)

    def test_negative_distance_symmetric(self, seek):
        assert seek.seek_time(-50) == seek.seek_time(50)

    def test_monotone_nondecreasing(self, seek):
        times = [seek.seek_time(d) for d in range(0, 1962, 7)]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestPaperFigures:
    def test_max_seek_within_100_cylinder_group(self, seek):
        """Section 3.2: 'The maximum seek time within a group of 100
        cylinders is 7.24ms.'"""
        assert seek.max_seek_within(100) == pytest.approx(7.24, abs=0.02)

    def test_continuity_near_crossover(self, seek):
        # The two regimes meet within a fraction of a millisecond.
        below = seek.seek_time(382)
        above = seek.seek_time(383)
        assert abs(above - below) < 1.0


class TestLeeKatzSeek:
    def test_ibm0661_constants(self):
        from repro.disk.seek import IBM0661_SEEK, LeeKatzSeek

        assert isinstance(IBM0661_SEEK, LeeKatzSeek)
        assert IBM0661_SEEK.seek_time(0) == 0.0
        # 2.0 + 0.01*100 + 0.46*10 = 7.6 ms
        assert IBM0661_SEEK.seek_time(100) == pytest.approx(7.6)

    def test_symmetric_and_monotone(self):
        from repro.disk.seek import IBM0661_SEEK

        assert IBM0661_SEEK.seek_time(-64) == IBM0661_SEEK.seek_time(64)
        times = [IBM0661_SEEK.seek_time(d) for d in range(0, 949, 13)]
        assert all(b >= a for a, b in zip(times, times[1:]))

"""Multi-process simulation: shared disks, partitioned cache, allocators."""

import pytest

from repro.core import SimConfig, make_policy
from repro.core.multiprocess import (
    CostBenefitAllocator,
    MultiProcessSimulator,
    StaticAllocator,
    _SharedSlice,
)
from repro.trace import Trace
from tests.conftest import make_trace


def config(cache_blocks=32, **kw):
    return SimConfig(
        cache_blocks=cache_blocks,
        disk_model="simple",
        simple_access_ms=10.0,
        simple_sequential_ms=None,
        **kw,
    )


def two_process_sim(policy_a="fixed-horizon", policy_b="fixed-horizon",
                    allocator=None, disks=2, cache_blocks=32, n=60):
    a = make_trace(list(range(12)) * (n // 12), compute_ms=2.0, name="A")
    b = make_trace(list(range(12)) * (n // 12), compute_ms=2.0, name="B")
    return MultiProcessSimulator(
        [
            (a, make_policy(policy_a, horizon=4)
             if policy_a == "fixed-horizon" else make_policy(policy_a)),
            (b, make_policy(policy_b, horizon=4)
             if policy_b == "fixed-horizon" else make_policy(policy_b)),
        ],
        num_disks=disks,
        config=config(cache_blocks),
        allocator=allocator,
    )


class TestSharedSlice:
    def test_shrink_respects_floor(self):
        s = _SharedSlice(16)
        assert s.shrink(10, floor=8) == 8
        assert s.capacity == 8
        assert s.shrink(10, floor=8) == 0

    def test_grow(self):
        s = _SharedSlice(8)
        s.grow(4)
        assert s.capacity == 12

    def test_overflow_tolerated_after_shrink(self):
        s = _SharedSlice(3)
        for b in range(3):
            s.begin_fetch(b, None)
            s.complete_fetch(b)
        s.shrink(2, floor=1)
        assert s.capacity == 1
        assert s.free_buffers == 0  # clamped, not negative
        assert len(s.resident) == 3  # drains via future evictions


class TestAllocators:
    def test_static_shares_proportional(self):
        shares = StaticAllocator([3, 1]).initial_shares(80, 2)
        assert sum(shares) == 80
        assert shares[0] == 60

    def test_static_weight_count_checked(self):
        with pytest.raises(ValueError):
            StaticAllocator([1]).initial_shares(10, 2)

    def test_cost_benefit_moves_toward_staller(self):
        sim = two_process_sim(allocator=CostBenefitAllocator(period_ms=50.0,
                                                             min_share=4,
                                                             step=2))

        class FakeProcess:
            def __init__(self, pid, stall, cache):
                self.pid = pid
                self.stall_total = stall
                self.cache = cache
                self.done = False

        allocator = CostBenefitAllocator(min_share=4, step=2)
        rich = FakeProcess(0, stall=0.0, cache=_SharedSlice(16))
        poor = FakeProcess(1, stall=100.0, cache=_SharedSlice(16))

        class FakeSim:
            processes = [rich, poor]

        allocator.rebalance(FakeSim())
        assert poor.cache.capacity == 18
        assert rich.cache.capacity == 14

    def test_cost_benefit_noop_for_single_live_process(self):
        allocator = CostBenefitAllocator()

        class FakeProcess:
            pid, stall_total, done = 0, 5.0, False
            cache = _SharedSlice(8)

        class FakeSim:
            processes = [FakeProcess()]

        allocator.rebalance(FakeSim())  # must not raise
        assert FakeProcess.cache.capacity == 8


class TestEndToEnd:
    def test_both_processes_complete(self):
        results = two_process_sim().run()
        assert len(results.results) == 2
        for r in results:
            assert r.references == 60

    def test_per_process_accounting_identity(self):
        results = two_process_sim().run()
        for r in results:
            total = r.compute_ms + r.driver_ms + r.stall_ms
            assert r.elapsed_ms == pytest.approx(total, abs=1e-6)

    def test_namespaces_do_not_collide(self):
        # Identical traces: each process must fetch its own copy.
        results = two_process_sim().run()
        for r in results:
            assert r.fetches >= 12  # every distinct block per process

    def test_sharing_slows_both_versus_alone(self):
        from repro.core import Simulator

        shared = two_process_sim(disks=1).run()
        solo_trace = make_trace(list(range(12)) * 5, compute_ms=2.0)
        solo = Simulator(
            solo_trace, make_policy("fixed-horizon", horizon=4), 1,
            config(cache_blocks=16),
        ).run()
        for r in shared:
            assert r.elapsed_ms >= solo.elapsed_ms * 0.99

    def test_makespan_is_max_elapsed(self):
        results = two_process_sim().run()
        assert results.makespan_ms == max(r.elapsed_ms for r in results)

    def test_requires_processes(self):
        with pytest.raises(ValueError):
            MultiProcessSimulator([], 1, config())

    def test_aggressive_neighbor_places_more_sustained_load(self):
        """The measurable core of the paper's section-6 conjecture: an
        aggressively prefetching co-runner issues more fetches and keeps
        the shared disk busier than a fixed-horizon co-runner.  (Who ends
        up *waiting* depends on scheduler dynamics — a just-in-time
        sequential stream can monopolize a CSCAN sweep — so the load, not
        a specific victim's elapsed time, is the robust observable.)"""
        def run_with_hog(neighbor_policy):
            victim = make_trace(list(range(12)) * 5, compute_ms=2.0,
                                name="victim")
            hog = make_trace(list(range(100, 148)) * 8, compute_ms=0.5,
                             name="hog")
            kw = {"horizon": 4} if neighbor_policy == "fixed-horizon" else {}
            sim = MultiProcessSimulator(
                [
                    (victim, make_policy("fixed-horizon", horizon=4)),
                    (hog, make_policy(neighbor_policy, **kw)),
                ],
                num_disks=1,
                config=config(cache_blocks=40),
            )
            return sim.run()

        gentle = run_with_hog("fixed-horizon")
        rough = run_with_hog("aggressive")
        assert rough[1].fetches > gentle[1].fetches
        assert rough[1].driver_ms > gentle[1].driver_ms


class TestDifferentPolicies:
    @pytest.mark.parametrize("policy", ["demand", "aggressive", "forestall"])
    def test_mixed_policy_pairs_run(self, policy):
        results = two_process_sim(policy_b=policy).run()
        assert all(r.references == 60 for r in results)

    def test_reverse_aggressive_in_multiprocess(self):
        a = make_trace(list(range(12)) * 5, compute_ms=2.0, name="A")
        b = make_trace(list(range(12)) * 5, compute_ms=2.0, name="B")
        sim = MultiProcessSimulator(
            [
                (a, make_policy("reverse-aggressive", fetch_time_estimate=4)),
                (b, make_policy("fixed-horizon", horizon=4)),
            ],
            num_disks=2,
            config=config(cache_blocks=32),
        )
        results = sim.run()
        assert all(r.references == 60 for r in results)

    def test_cost_benefit_not_worse_than_static_on_asymmetric_load(self):
        def makespan(allocator):
            light = make_trace([0, 1, 2, 3] * 15, compute_ms=5.0, name="lt")
            heavy = make_trace(list(range(10, 58)) * 2, compute_ms=0.5,
                               name="hv")
            sim = MultiProcessSimulator(
                [
                    (light, make_policy("fixed-horizon", horizon=4)),
                    (heavy, make_policy("forestall", horizon=4)),
                ],
                num_disks=2,
                config=config(cache_blocks=40),
                allocator=allocator,
            )
            return sim.run().makespan_ms

        static = makespan(StaticAllocator())
        dynamic = makespan(CostBenefitAllocator(period_ms=40.0, min_share=6,
                                                step=2))
        assert dynamic <= static * 1.05

"""Theoretical-model simulator: section 2.1 semantics and Figure 1."""

import pytest

from repro.theory.model import (
    run_aggressive_model,
    run_demand_model,
    run_fixed_horizon_model,
)

# Figure 1: disk 0 holds A,C,E,F; disk 1 holds b,d.  Cache K=4, F=2.
A, B_, C, D_, E, F_ = "A", "b", "C", "d", "E", "F"
FIG1_SEQUENCE = [A, B_, C, D_, E, F_]
FIG1_DISK = {A: 0, C: 0, E: 0, F_: 0, B_: 1, D_: 1}.__getitem__
FIG1_CACHE = (A, B_, D_, F_)


class TestFigure1:
    def test_aggressive_takes_seven_time_units(self):
        """Figure 1(a): the greedy schedule costs 7 units."""
        run = run_aggressive_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, batch_size=1, initial_cache=FIG1_CACHE,
        )
        assert run.elapsed == 7
        assert run.stall == 1

    def test_fixed_horizon_no_better_than_aggressive_here(self):
        run = run_fixed_horizon_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, horizon=2, initial_cache=FIG1_CACHE,
        )
        assert run.elapsed >= 7

    def test_demand_is_worst(self):
        run = run_demand_model(
            FIG1_SEQUENCE, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=FIG1_DISK, initial_cache=FIG1_CACHE,
        )
        assert run.elapsed >= 7


class TestModelSemantics:
    def one_disk(self, _b):
        return 0

    def test_all_hits_cost_one_unit_each(self):
        run = run_demand_model(
            [1, 1, 1], cache_blocks=2, fetch_time=5, num_disks=1,
            disk_of=self.one_disk, initial_cache=(1,),
        )
        assert run.elapsed == 3
        assert run.stall == 0
        assert run.fetches == 0

    def test_demand_miss_stalls_full_fetch(self):
        run = run_demand_model(
            [1], cache_blocks=1, fetch_time=5, num_disks=1,
            disk_of=self.one_disk,
        )
        assert run.elapsed == 6  # 5 stall + 1 reference
        assert run.stall == 5

    def test_elapsed_equals_references_plus_stall(self):
        blocks = [1, 2, 3, 1, 2, 3, 4]
        for runner in (run_demand_model, run_aggressive_model):
            run = runner(
                blocks, cache_blocks=3, fetch_time=3, num_disks=1,
                disk_of=self.one_disk,
            )
            assert run.elapsed == len(blocks) + run.stall

    def test_aggressive_overlaps_fetch_with_compute(self):
        # After the cold miss on 1, block 2 is prefetched during the hits.
        blocks = [1, 1, 1, 1, 1, 1, 2]
        run = run_aggressive_model(
            blocks, cache_blocks=2, fetch_time=3, num_disks=1,
            disk_of=self.one_disk,
        )
        # Only the cold-start stall on block 1 remains.
        assert run.stall == 3

    def test_single_disk_serializes(self):
        blocks = [1, 2]
        run = run_aggressive_model(
            blocks, cache_blocks=2, fetch_time=4, num_disks=1,
            disk_of=self.one_disk,
        )
        # Both fetched back to back: 2 arrives at t=8; stall = 8 - 1 hit...
        assert run.elapsed == pytest.approx(2 + run.stall)
        assert run.stall >= 4

    def test_two_disks_parallelize(self):
        blocks = [1, 2]
        serial = run_aggressive_model(
            blocks, cache_blocks=2, fetch_time=4, num_disks=1,
            disk_of=self.one_disk,
        )
        parallel = run_aggressive_model(
            blocks, cache_blocks=2, fetch_time=4, num_disks=2,
            disk_of=lambda b: b % 2,
        )
        assert parallel.elapsed < serial.elapsed

    def test_events_record_victims(self):
        blocks = [1, 2, 3, 1]
        run = run_aggressive_model(
            blocks, cache_blocks=2, fetch_time=2, num_disks=1,
            disk_of=self.one_disk,
        )
        assert run.fetches == len(run.events)
        # First two fetches use free buffers; any later fetch evicts.
        free_buffer_fetches = [e for e in run.events if e.victim is None]
        assert len(free_buffer_fetches) == 2

    def test_final_cache_within_capacity(self):
        blocks = list(range(10))
        run = run_aggressive_model(
            blocks, cache_blocks=4, fetch_time=2, num_disks=2,
            disk_of=lambda b: b % 2,
        )
        assert len(run.final_cache) <= 4

    def test_fixed_horizon_model_respects_horizon(self):
        blocks = list(range(8))
        run = run_fixed_horizon_model(
            blocks, cache_blocks=10, fetch_time=2, num_disks=1,
            disk_of=self.one_disk, horizon=3,
        )
        for event in run.events:
            assert event.target_position - event.issue_cursor <= 3

    def test_initial_cache_validated(self):
        with pytest.raises(ValueError):
            run_demand_model(
                [1], cache_blocks=1, fetch_time=1, num_disks=1,
                disk_of=self.one_disk, initial_cache=(1, 2),
            )

"""Golden results: optimized runs must be bit-identical to pre-PR outputs.

The hot-path optimization work (deque FCFS queue, cylinder-keyed SSTF,
timeline sort caching, missing-scan memoization, profiler hooks) promises
to change *performance only*.  This test pins SHA-256 digests of the full
``SimulationResult`` serialization — every float at full precision, plus
the recorded timeline where enabled — for all five hinted policies on two
small workloads across all three disk scheduling disciplines.  Any change
to a digest means an optimization altered simulated behaviour and must be
treated as a bug (or, for an intentional model change, regenerated with an
explanation in the PR).

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_results.py --regen
"""

import dataclasses
import hashlib
import json

import pytest

from repro.core import SimConfig, Simulator, make_policy
from repro.trace import build as build_workload
from repro.trace import cache_blocks_for

#: Trace scale for the golden cells — big enough to exercise eviction
#: pressure, stalls, and scheduler reordering; small enough to stay fast.
SCALE = 0.3

FIVE_POLICIES = (
    "demand", "fixed-horizon", "aggressive", "reverse-aggressive", "forestall"
)

#: (trace, policy, disks, discipline, record_timeline)
CELLS = (
    [("ld", policy, 2, "cscan", False) for policy in FIVE_POLICIES]
    + [("cscope1", policy, 4, "cscan", False) for policy in FIVE_POLICIES]
    + [
        ("ld", "forestall", 3, "fcfs", False),
        ("ld", "aggressive", 2, "sstf", False),
        ("cscope1", "demand", 2, "fcfs", False),
        ("ld", "forestall", 2, "cscan", True),
    ]
)


def cell_id(cell) -> str:
    trace, policy, disks, discipline, timeline = cell
    suffix = "+timeline" if timeline else ""
    return f"{trace}/{policy}/d{disks}/{discipline}{suffix}"


def run_cell(cell, observer=None) -> str:
    """Run one cell and digest its complete serialized outcome.

    ``observer`` lets tests/test_obs.py assert the read-only guarantee:
    digests must be identical with a ``repro.obs.Observer`` attached.
    """
    trace_name, policy, disks, discipline, record_timeline = cell
    trace = build_workload(trace_name, scale=SCALE)
    config = SimConfig(
        cache_blocks=cache_blocks_for(trace_name, SCALE),
        discipline=discipline,
        record_timeline=record_timeline,
    )
    sim = Simulator(trace, make_policy(policy), disks, config,
                    observer=observer)
    result = sim.run()
    payload = dataclasses.asdict(result)
    if record_timeline:
        payload["timeline"] = sim.timeline.events
    # json renders floats via repr: exact, so any ULP drift changes the digest.
    serialized = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


#: Digests captured before this PR's optimizations (seed behaviour).
EXPECTED = {
    "ld/demand/d2/cscan": "07f52fd9602600bcacdb5ce0b918ea4477194172ec4fbc4d90fa1662480f3f85",
    "ld/fixed-horizon/d2/cscan": "c99fa88d0d92f43b766444edf327d50e2c9f55e5e06996322de74c6960592c5c",
    "ld/aggressive/d2/cscan": "43ce72110a0df603f689dceb732a9976b3579ab4610b5abb91622b716566c4c1",
    "ld/reverse-aggressive/d2/cscan": "5f9e3449de055e0ab418a993ec587176b4e6163af193e5d961336cada7ca8272",
    "ld/forestall/d2/cscan": "06ecf3c71a743b8888394248fa26e68eabb664b827022ed4a8bbefec83cde78f",
    "cscope1/demand/d4/cscan": "67939f7854bc131b8b8e96eb9e3b5262f651d813963fd1d1b540d40177821c36",
    "cscope1/fixed-horizon/d4/cscan": "64238cc3e4ca7704d8247a3bd5a44144bca01d20e9c93ab043dedf9b6601664c",
    "cscope1/aggressive/d4/cscan": "546b71b8fadc7f4aebe5d84d929d717619a676419d6e840eca6712f1aac1c654",
    "cscope1/reverse-aggressive/d4/cscan": "14ffc70166f270b23bee4bae7b53feaeafb029765259b374a3486ab3c44bde56",
    "cscope1/forestall/d4/cscan": "5df8a6db9d6f6132218f0579903d174945f37a8a00bf15bb452024433039febe",
    "ld/forestall/d3/fcfs": "ed8ab323f42851611806b943661704717fa852dd8f2873d997b11895cf6808d1",
    "ld/aggressive/d2/sstf": "6d41b8282bb9c1edbe7daed98dd2bcf783ed5b0d225020853ab1ebf6303e95f6",
    "cscope1/demand/d2/fcfs": "694bf6fb04877357170d1d2a12c46413d379283634a5cf716dbaad4fe466e683",
    "ld/forestall/d2/cscan+timeline": "076b736df92c72f5d66d5e0d71b1a297f290d906cff70665580879e967631b87",
}


@pytest.mark.parametrize("cell", CELLS, ids=cell_id)
def test_results_bit_identical_to_seed(cell):
    assert run_cell(cell) == EXPECTED[cell_id(cell)], (
        f"{cell_id(cell)}: SimulationResult serialization changed — an "
        "optimization altered simulated behaviour (see docs/PERFORMANCE.md)"
    )


def test_every_cell_has_a_pinned_digest():
    assert {cell_id(c) for c in CELLS} == set(EXPECTED)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        print("EXPECTED = {")
        for cell in CELLS:
            print(f'    "{cell_id(cell)}": "{run_cell(cell)}",')
        print("}")
    else:
        sys.exit("usage: python tests/test_golden_results.py --regen")

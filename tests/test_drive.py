"""Detailed drive model: service-time composition and readahead caching."""

import pytest

from repro.disk.drive import DiskDrive, ServiceBreakdown
from repro.disk.geometry import HP97560


@pytest.fixture
def drive():
    return DiskDrive()


class TestServiceBreakdown:
    def test_total_is_sum_of_components(self):
        b = ServiceBreakdown(
            overhead=1.0, seek=2.0, rotation=3.0, transfer=4.0, cache_wait=0.5
        )
        assert b.total == pytest.approx(10.5)

    def test_first_access_pays_overhead_and_transfer(self, drive):
        b = drive.service(0, 0.0)
        assert b.overhead == HP97560.controller_overhead_ms
        assert b.transfer == pytest.approx(HP97560.block_media_transfer_ms)
        assert not b.cache_hit

    def test_rotation_bounded_by_one_revolution(self, drive):
        for lbn in (0, 7, 1000, 54321):
            fresh = DiskDrive()
            b = fresh.service(lbn, 0.0)
            assert 0 <= b.rotation < HP97560.rotation_ms

    def test_same_cylinder_no_seek(self, drive):
        drive.service(0, 0.0)
        b = drive.service(0, 1000.0)  # far in the future, cache long gone? no-
        # block 0 stays in no cache (readahead covers blocks AFTER 0), so this
        # re-read is mechanical but needs no seek (same cylinder, same track).
        assert b.seek == 0.0

    def test_cross_cylinder_seek_charged(self, drive):
        drive.service(0, 0.0)
        far = HP97560.blocks_per_cylinder * 500  # 500 cylinders away
        b = drive.service(far, 100.0)
        assert b.seek > 8.0  # long-seek regime

    def test_head_switch_within_cylinder(self, drive):
        drive.service(0, 0.0)
        # Block 5 is on track 1 of cylinder 0.
        b = drive.service(5, 1000.0)
        if not b.cache_hit:
            assert b.seek == HP97560.head_switch_ms


class TestReadaheadCache:
    def test_sequential_read_hits_cache(self, drive):
        first = drive.service(10, 0.0)
        second = drive.service(11, first.total + 5.0)
        assert second.cache_hit
        assert second.transfer == pytest.approx(HP97560.block_bus_transfer_ms)
        assert second.seek == 0.0 and second.rotation == 0.0

    def test_cache_hit_much_faster_than_miss(self, drive):
        miss = drive.service(10, 0.0)
        hit = drive.service(11, miss.total + 5.0)
        assert hit.total < miss.total

    def test_immediate_next_block_waits_for_media(self, drive):
        first = drive.service(10, 0.0)
        second = drive.service(11, first.total)  # request the instant it lands
        assert second.cache_hit
        assert second.cache_wait > 0.0

    def test_cache_span_limited_to_cache_blocks(self, drive):
        drive.service(10, 0.0)
        beyond = 10 + HP97560.cache_blocks + 1
        b = drive.service(beyond, 100.0)
        assert not b.cache_hit

    def test_cache_does_not_serve_backwards(self, drive):
        drive.service(10, 0.0)
        b = drive.service(9, 100.0)
        assert not b.cache_hit

    def test_new_mechanical_read_restarts_readahead(self, drive):
        drive.service(10, 0.0)
        drive.service(5000, 100.0)  # jump away; old span dropped
        b = drive.service(11, 200.0)  # would have hit the old span
        assert not b.cache_hit

    def test_readahead_follows_latest_mechanical_read(self, drive):
        drive.service(10, 0.0)
        drive.service(5000, 100.0)
        b = drive.service(5001, 200.0)
        assert b.cache_hit

    def test_readahead_disabled(self):
        drive = DiskDrive(readahead=False)
        first = drive.service(10, 0.0)
        second = drive.service(11, first.total + 5.0)
        assert not second.cache_hit

    def test_hit_counters(self, drive):
        drive.service(10, 0.0)
        drive.service(11, 50.0)
        drive.service(12, 100.0)
        assert drive.requests_served == 3
        assert drive.cache_hits == 2


class TestRealismEnvelope:
    def test_random_access_averages_near_paper_values(self):
        """Random single-block reads across the disk should average in the
        teens of milliseconds (Table 1 lists 22.8 ms worst-ish average; the
        paper's measured traces see 13-19 ms)."""
        import random

        rng = random.Random(42)
        drive = DiskDrive()
        t = 0.0
        samples = []
        for _ in range(300):
            lbn = rng.randrange(HP97560.total_blocks)
            b = drive.service(lbn, t)
            samples.append(b.total)
            t += b.total + 1.0
        mean = sum(samples) / len(samples)
        assert 10.0 < mean < 26.0

    def test_sequential_access_averages_3_to_4ms(self):
        """Section 4.2: sequential access yields 3-4 ms average responses."""
        drive = DiskDrive()
        t = 0.0
        samples = []
        for lbn in range(1000, 1400):
            b = drive.service(lbn, t)
            samples.append(b.total)
            t += b.total + 1.0  # 1 ms compute between requests
        mean = sum(samples) / len(samples)
        assert 1.5 < mean < 5.0

    def test_cylinder_tracking(self, drive):
        far = HP97560.blocks_per_cylinder * 700
        drive.service(far, 0.0)
        assert drive.cylinder == HP97560.block_to_cylinder(far)
        assert drive.cylinder > 0

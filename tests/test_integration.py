"""Integration: full workloads through the full stack, checking the
paper's qualitative findings (section 1.4's summary of results)."""

import pytest

import repro
from repro.analysis.experiments import ExperimentSetting, run_one

SCALE = 0.15  # small but structure-preserving


@pytest.fixture(scope="module")
def setting():
    return ExperimentSetting(scale=SCALE)


def elapsed(setting, trace, policy, disks, **kw):
    return run_one(setting, trace, policy, disks, **kw).elapsed_ms


class TestFinding1PrefetchingBeatsDemand:
    """All four algorithms significantly outperform demand fetching."""

    @pytest.mark.parametrize("trace", ["postgres-select", "cscope2", "ld"])
    @pytest.mark.parametrize(
        "policy", ["fixed-horizon", "aggressive", "forestall"]
    )
    def test_beats_demand(self, setting, trace, policy):
        demand = elapsed(setting, trace, "demand", 2)
        other = elapsed(setting, trace, policy, 2)
        assert other < demand


class TestFinding2NearLinearStallReduction:
    """Prefetchers achieve near-linear I/O overhead reduction until the
    application becomes compute-bound."""

    def test_stall_decreases_with_disks(self, setting):
        stalls = [
            run_one(setting, "postgres-select", "aggressive", d).stall_ms
            for d in (1, 2, 4)
        ]
        assert stalls[0] > stalls[1] > stalls[2]

    def test_elapsed_floor_is_compute_plus_driver(self, setting):
        # H stays at the device value 62 here: for this trace (nearly every
        # reference misses) the horizon is what feeds all eight disks.
        result = run_one(
            setting, "postgres-select", "fixed-horizon", 8, horizon=62
        )
        floor = result.compute_ms + result.driver_ms
        assert result.elapsed_ms < floor * 1.15


class TestFinding4OneOfThemTracksReverseAggressive:
    """In any situation, fixed horizon or aggressive performs close to the
    (tuned) reverse aggressive."""

    @pytest.mark.parametrize("disks", [1, 4])
    def test_best_practical_close_to_reverse(self, setting, disks):
        from repro.analysis.experiments import tuned_reverse_aggressive

        trace = "cscope2"
        reverse = tuned_reverse_aggressive(
            setting, trace, disks, fetch_times=(2, 8, 32)
        )
        best = min(
            elapsed(setting, trace, "fixed-horizon", disks),
            elapsed(setting, trace, "aggressive", disks),
        )
        assert best <= reverse.elapsed_ms * 1.25


class TestFinding5ForestallTracksTheBest:
    """Forestall performs close to the better of FH/aggressive everywhere."""

    @pytest.mark.parametrize("trace", ["cscope2", "postgres-select", "synth"])
    @pytest.mark.parametrize("disks", [1, 3])
    def test_forestall_near_best(self, setting, trace, disks):
        best = min(
            elapsed(setting, trace, "fixed-horizon", disks),
            elapsed(setting, trace, "aggressive", disks),
        )
        forestall = elapsed(setting, trace, "forestall", disks)
        assert forestall <= best * 1.12


class TestFinding7FixedHorizonLightestLoad:
    """Fixed horizon places the least I/O load on the disks."""

    @pytest.mark.parametrize("trace", ["synth", "cscope2", "glimpse"])
    def test_fh_fewest_fetches(self, setting, trace):
        fh = run_one(setting, trace, "fixed-horizon", 2)
        agg = run_one(setting, trace, "aggressive", 2)
        assert fh.fetches <= agg.fetches

    def test_aggressive_higher_utilization(self, setting):
        fh = run_one(setting, "postgres-select", "fixed-horizon", 4)
        agg = run_one(setting, "postgres-select", "aggressive", 4)
        assert agg.disk_utilization >= fh.disk_utilization


class TestCrossoverBehaviour:
    """I/O-bound: aggressive wins; compute-bound: fixed horizon wins
    (the Figure 4 crossover)."""

    def test_io_bound_end(self, setting):
        agg = elapsed(setting, "synth", "aggressive", 1)
        fh = elapsed(setting, "synth", "fixed-horizon", 1)
        assert agg < fh

    def test_compute_bound_end(self, setting):
        agg = elapsed(setting, "synth", "aggressive", 4)
        fh = elapsed(setting, "synth", "fixed-horizon", 4)
        assert fh < agg


class TestPublicApi:
    def test_run_simulation_defaults(self):
        trace = repro.build_workload("ld", scale=0.1)
        result = repro.run_simulation(trace, policy="forestall", num_disks=2,
                                      cache_blocks=128)
        assert result.policy_name == "forestall"
        assert result.num_disks == 2

    def test_run_simulation_policy_instance(self):
        trace = repro.build_workload("ld", scale=0.1)
        policy = repro.FixedHorizon(horizon=16)
        result = repro.run_simulation(trace, policy=policy, num_disks=1,
                                      cache_blocks=128)
        assert "fixed-horizon" in result.policy_name

    def test_unknown_policy_rejected(self):
        trace = repro.build_workload("ld", scale=0.1)
        with pytest.raises(ValueError, match="unknown policy"):
            repro.run_simulation(trace, policy="lru")

    def test_default_cache_uses_paper_value(self):
        trace = repro.build_workload("dinero", scale=0.05)
        result = repro.run_simulation(trace, num_disks=1)
        # dinero's paper cache is 512 blocks (unscaled default path)
        assert result.cache_blocks == 512

"""The public API surface: everything README promises is importable."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "run_simulation", "build_workload", "make_policy",
            "Simulator", "SimConfig", "SimulationResult", "Trace",
            "PrefetchPolicy", "DemandFetching", "FixedHorizon",
            "Aggressive", "ReverseAggressive", "Forestall",
            "HintQuality", "MultiProcessSimulator",
            "StaticAllocator", "CostBenefitAllocator",
            "POLICIES", "TABLE3", "WORKLOADS", "cache_blocks_for",
        ],
    )
    def test_symbol_exported(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_policy_registry_complete(self):
        assert set(repro.POLICIES) == {
            "demand", "fixed-horizon", "aggressive", "reverse-aggressive",
            "forestall", "lru-demand", "seq-readahead", "stride-prefetch",
        }

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.disk
        import repro.theory
        import repro.trace

        assert repro.analysis.miss_ratio_curve
        assert repro.core.Timeline
        assert repro.disk.ZonedGeometry
        assert repro.theory.optimal_elapsed
        assert repro.trace.trace_io.loads


class TestRunSimulationContract:
    def test_returns_simulation_result(self):
        trace = repro.build_workload("ld", scale=0.05)
        result = repro.run_simulation(trace, num_disks=1, cache_blocks=64)
        assert isinstance(result, repro.SimulationResult)

    def test_config_and_cache_override_precedence(self):
        trace = repro.build_workload("ld", scale=0.05)
        config = repro.SimConfig(cache_blocks=999)
        result = repro.run_simulation(
            trace, num_disks=1, cache_blocks=64, config=config
        )
        # explicit cache_blocks wins over the config's value
        assert result.cache_blocks == 64

    def test_policy_kwargs_forwarded(self):
        trace = repro.build_workload("ld", scale=0.05)
        result = repro.run_simulation(
            trace, policy="fixed-horizon", num_disks=1, cache_blocks=64,
            horizon=7,
        )
        assert "H=7" in result.policy_name

"""Timeline recording and derived views."""

import pytest

from repro.core import SimConfig, Simulator, make_policy
from repro.core.timeline import (
    FETCH_DONE,
    FETCH_ISSUED,
    STALL_END,
    STALL_START,
    StallEpisode,
    Timeline,
)
from tests.conftest import make_trace, simple_config


def record_run(blocks, policy="fixed-horizon", disks=1, cache=8, **kw):
    trace = make_trace(blocks, compute_ms=2.0)
    config = simple_config(cache_blocks=cache).with_(record_timeline=True)
    sim = Simulator(trace, make_policy(policy, **kw), disks, config)
    result = sim.run()
    return sim.timeline, result


class TestTimelineBasics:
    def test_disabled_by_default(self):
        trace = make_trace([0, 1])
        sim = Simulator(trace, make_policy("demand"), 1, simple_config())
        sim.run()
        assert sim.timeline is None

    def test_events_recorded_when_enabled(self):
        timeline, result = record_run(list(range(6)))
        kinds = {kind for _t, kind, _b, _d in timeline.events}
        assert FETCH_ISSUED in kinds
        assert FETCH_DONE in kinds

    def test_fetch_events_match_fetch_count(self):
        timeline, result = record_run(list(range(10)))
        issued = [e for e in timeline.events if e[1] == FETCH_ISSUED]
        done = [e for e in timeline.events if e[1] == FETCH_DONE]
        assert len(issued) == result.fetches
        assert len(done) == result.fetches


class TestStallAccounting:
    def test_episode_total_equals_result_stall(self):
        """The timeline and the engine account stalls independently; they
        must agree to the microsecond."""
        for policy in ("demand", "fixed-horizon", "aggressive"):
            timeline, result = record_run(
                list(range(15)) * 2, policy=policy, cache=6
            )
            total = sum(e.duration_ms for e in timeline.stall_episodes())
            assert total == pytest.approx(result.stall_ms, abs=1e-6)

    def test_episodes_have_positive_duration(self):
        timeline, _result = record_run(list(range(12)))
        for episode in timeline.stall_episodes():
            assert episode.duration_ms >= 0
            assert episode.end_ms >= episode.start_ms

    def test_summary_fields(self):
        timeline, result = record_run(list(range(10)))
        summary = timeline.summary()
        assert summary["fetches"] == result.fetches
        assert summary["stall_total_ms"] == pytest.approx(
            result.stall_ms, abs=1e-3
        )
        assert 0 < summary["disk_balance"] <= 1.0


class TestDerivedViews:
    def test_per_disk_fetch_balance_under_striping(self):
        timeline, _result = record_run(list(range(20)), disks=2, cache=30)
        per_disk = timeline.per_disk_fetches()
        assert set(per_disk) == {0, 1}
        assert per_disk[0] == per_disk[1]  # even blocks alternate disks

    def test_busy_intervals_cover_service(self):
        timeline, result = record_run(list(range(8)), cache=12)
        spans = timeline.busy_intervals(0)
        assert spans
        busy = sum(end - start for start, end in spans)
        # 8 fetches x 10 ms service, allowing queueing overlap
        assert busy >= 8 * 10.0 - 1e-6

    def test_lead_times_positive(self):
        timeline, _result = record_run(list(range(8)))
        leads = timeline.fetch_lead_times()
        assert leads
        assert all(v > 0 for v in leads.values())


class TestManualTimeline:
    def test_interleaved_stalls_parse(self):
        timeline = Timeline()
        timeline.record(0.0, STALL_START, 5)
        timeline.record(3.0, STALL_END, 5)
        timeline.record(10.0, STALL_START, 7)
        timeline.record(11.5, STALL_END, 7)
        episodes = timeline.stall_episodes()
        assert [e.block for e in episodes] == [5, 7]
        assert episodes[1].duration_ms == pytest.approx(1.5)

    def test_unclosed_stall_ignored(self):
        timeline = Timeline()
        timeline.record(0.0, STALL_START, 5)
        assert timeline.stall_episodes() == []

    def test_empty_summary(self):
        summary = Timeline().summary()
        assert summary["stall_episodes"] == 0
        assert summary["disk_balance"] == 1.0


class TestSortedCache:
    def test_sorted_view_is_time_ordered(self):
        timeline = Timeline()
        timeline.record(5.0, FETCH_ISSUED, 1, 0)
        timeline.record(1.0, FETCH_ISSUED, 2, 0)
        timeline.record(3.0, FETCH_DONE, 2, 0)
        assert [e[0] for e in timeline.sorted_events()] == [1.0, 3.0, 5.0]

    def test_view_cached_until_next_record(self):
        timeline = Timeline()
        timeline.record(2.0, FETCH_ISSUED, 1, 0)
        timeline.record(1.0, FETCH_ISSUED, 2, 0)
        first = timeline.sorted_events()
        assert timeline.sorted_events() is first  # no re-sort between records

    def test_record_invalidates_cache(self):
        timeline = Timeline()
        timeline.record(2.0, FETCH_ISSUED, 1, 0)
        stale = timeline.sorted_events()
        timeline.record(0.5, FETCH_ISSUED, 2, 0)
        fresh = timeline.sorted_events()
        assert fresh is not stale
        assert fresh[0][0] == 0.5

    def test_direct_append_also_invalidates(self):
        # Consumers (and tests) sometimes build timelines by appending to
        # ``events`` directly; the count key must catch that too.
        timeline = Timeline()
        timeline.record(2.0, FETCH_ISSUED, 1, 0)
        timeline.sorted_events()
        timeline.events.append((0.25, FETCH_ISSUED, 3, 0))
        assert timeline.sorted_events()[0][0] == 0.25

    def test_busy_intervals_unaffected_by_unsorted_arrival(self):
        timeline = Timeline()
        timeline.record(10.0, FETCH_ISSUED, 1, 0)
        timeline.record(12.0, FETCH_DONE, 1, 0)
        timeline.record(4.0, FETCH_ISSUED, 2, 0)  # late arrival, earlier time
        timeline.record(6.0, FETCH_DONE, 2, 0)
        assert timeline.busy_intervals(0) == [(4.0, 6.0), (10.0, 12.0)]

"""Fault injection: transient errors, fail-slow spindles, disk death,
retries, mirrored failover, and degraded (partial-data) mode."""

import pytest

from repro.core import SimConfig, Simulator, make_policy
from repro.core.timeline import FAILOVER, FAULT_INJECTED, FETCH_RETRY
from repro.faults import (
    DiskFailure,
    ErrorWindow,
    FaultSchedule,
    SlowWindow,
    UnrecoverableReadError,
)
from tests.conftest import make_trace, run, simple_config


def fault_sim(blocks, faults, policy="demand", num_disks=1, cache_blocks=4,
              compute_ms=1.0, access_ms=10.0, record_timeline=False,
              mirrored=False, **policy_kwargs):
    trace = make_trace(blocks, compute_ms)
    config = simple_config(
        cache_blocks=cache_blocks, access_ms=access_ms, faults=faults,
        record_timeline=record_timeline, mirrored=mirrored,
    )
    return Simulator(trace, make_policy(policy, **policy_kwargs),
                     num_disks, config)


def fault_run(blocks, faults, **kwargs):
    return fault_sim(blocks, faults, **kwargs).run()


def event_kinds(sim):
    return {event[1] for event in sim.timeline.events}


# -- schedule semantics -------------------------------------------------------


class TestSchedule:
    def test_null_by_default(self):
        assert FaultSchedule().is_null

    def test_any_fault_source_breaks_null(self):
        assert not FaultSchedule(read_error_rate=0.1).is_null
        assert not FaultSchedule(
            error_windows=(ErrorWindow(0.0, 10.0),)).is_null
        assert not FaultSchedule(slow_windows=(SlowWindow(2.0),)).is_null
        assert not FaultSchedule(
            disk_failures=(DiskFailure(disk=0),)).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(max_retries=-1)
        with pytest.raises(ValueError):
            FaultSchedule(retry_backoff_ms=-1.0)
        with pytest.raises(ValueError):
            FaultSchedule(fail_fast_ms=0.0)
        with pytest.raises(ValueError):
            SlowWindow(factor=0.0)
        with pytest.raises(ValueError):
            ErrorWindow(10.0, 5.0)

    def test_death_time(self):
        schedule = FaultSchedule(disk_failures=(DiskFailure(disk=1, at_ms=50.0),))
        assert schedule.death_time(1) == 50.0
        assert schedule.death_time(0) is None
        assert not schedule.is_dead(1, 49.9)
        assert schedule.is_dead(1, 50.0)
        assert not schedule.is_dead(0, 1e9)

    def test_slow_factor_windows(self):
        schedule = FaultSchedule(slow_windows=(
            SlowWindow(3.0, disk=0, start_ms=10.0, end_ms=20.0),
            SlowWindow(2.0),  # all disks, forever
        ))
        assert schedule.slow_factor(1, 15.0) == 2.0
        assert schedule.slow_factor(0, 5.0) == 2.0
        assert schedule.slow_factor(0, 15.0) == 6.0  # windows compound
        assert schedule.slow_factor(0, 25.0) == 2.0

    def test_error_rate_windows(self):
        schedule = FaultSchedule(
            read_error_rate=0.01,
            error_windows=(ErrorWindow(10.0, 20.0, rate=1.0, disk=1),),
        )
        assert schedule.error_rate(0, 15.0) == 0.01
        assert schedule.error_rate(1, 15.0) == 1.0
        assert schedule.error_rate(1, 25.0) == 0.01

    def test_draws_are_deterministic_and_stateless(self):
        a = FaultSchedule(read_error_rate=0.5, seed=3)
        b = FaultSchedule(read_error_rate=0.5, seed=3)
        draws = [a.draw_error(0, seq, 0.0) for seq in range(200)]
        assert draws == [b.draw_error(0, seq, 0.0) for seq in range(200)]
        # Roughly the requested rate, and seed-sensitive.
        assert 60 <= sum(draws) <= 140
        c = FaultSchedule(read_error_rate=0.5, seed=4)
        assert draws != [c.draw_error(0, seq, 0.0) for seq in range(200)]


# -- engine: transparency and retries ----------------------------------------


class TestTransientErrors:
    def test_null_schedule_is_bit_identical(self):
        blocks = [0, 1, 2, 3, 0, 1, 4, 5]
        base = run(blocks, policy="forestall", num_disks=2)
        nulled = fault_run(blocks, FaultSchedule(), policy="forestall",
                           num_disks=2)
        assert nulled.elapsed_ms == base.elapsed_ms
        assert nulled.stall_ms == base.stall_ms
        assert nulled.fetches == base.fetches
        assert nulled.faults_injected == 0

    def test_demand_retry_recovers(self):
        # Every read in [0, 25) ms fails; the retry layer re-issues until
        # the window has passed.  The run completes with data intact.
        faults = FaultSchedule(
            error_windows=(ErrorWindow(0.0, 25.0),),
            max_retries=10, retry_backoff_ms=1.0,
        )
        sim = fault_sim([0, 1, 2], faults, record_timeline=True)
        result = sim.run()
        result.check_accounting()
        assert result.faults_injected >= 1
        assert result.retry_ms > 0
        assert result.extras["transient_errors"] == result.faults_injected
        kinds = event_kinds(sim)
        assert FAULT_INJECTED in kinds
        assert FETCH_RETRY in kinds

    def test_retry_backoff_is_exponential(self):
        # Three failures before success: backoffs 1, 2, 4 ms plus three
        # failed 10 ms services => retry_ms == 37.
        faults = FaultSchedule(
            error_windows=(ErrorWindow(0.0, 31.0),),
            max_retries=10, retry_backoff_ms=1.0,
        )
        result = fault_run([0], faults, compute_ms=0.0)
        assert result.extras["transient_errors"] == 3
        assert result.retry_ms == pytest.approx(37.0)

    def test_unrecoverable_after_retry_budget(self):
        faults = FaultSchedule(read_error_rate=1.0, max_retries=2)
        with pytest.raises(UnrecoverableReadError) as exc:
            fault_run([0, 1], faults)
        assert exc.value.attempts == 3  # initial try + 2 retries

    def test_max_retries_zero_fails_first_error(self):
        faults = FaultSchedule(read_error_rate=1.0, max_retries=0)
        with pytest.raises(UnrecoverableReadError):
            fault_run([0], faults)

    def test_failed_prefetch_is_abandoned_then_demand_missed(self):
        # Disk 1 errors every read before t=15ms.  With aggressive
        # prefetching and long compute, block 1's prefetch lands in the
        # window and is abandoned; the block surfaces later as a demand
        # miss (inside the window it retries, after it succeeds).
        faults = FaultSchedule(
            error_windows=(ErrorWindow(0.0, 15.0, disk=1),),
            max_retries=10,
        )
        result = fault_run([0, 1], faults, policy="aggressive",
                           num_disks=2, compute_ms=30.0)
        result.check_accounting()
        assert result.extras["abandoned_prefetches"] >= 1
        assert result.extras["unreadable_references"] == 0

    def test_accounting_identity_with_errors(self):
        faults = FaultSchedule(read_error_rate=0.3, seed=9, max_retries=50)
        for policy in ("demand", "fixed-horizon", "aggressive", "forestall"):
            result = fault_run(list(range(12)) * 3, faults, policy=policy,
                               num_disks=2, cache_blocks=6)
            result.check_accounting()


class TestFailSlow:
    def test_slow_disk_raises_elapsed(self):
        healthy = fault_run([0, 1, 2, 3], None)
        slowed = fault_run(
            [0, 1, 2, 3],
            FaultSchedule(slow_windows=(SlowWindow(5.0, disk=0),)),
        )
        assert slowed.elapsed_ms > healthy.elapsed_ms
        assert slowed.extras["slowed_requests"] == 4
        slowed.check_accounting()

    def test_slow_window_only_inside_interval(self):
        faults = FaultSchedule(
            slow_windows=(SlowWindow(10.0, start_ms=0.0, end_ms=5.0),),
        )
        # First fetch starts at t≈0 (inside), later ones outside.
        result = fault_run([0, 1, 2], faults)
        assert result.extras["slowed_requests"] == 1


# -- disk death: degraded mode and mirrored failover -------------------------


class TestDiskDeath:
    def test_unmirrored_death_degrades_not_crashes(self):
        faults = FaultSchedule(disk_failures=(DiskFailure(disk=1, at_ms=0.0),))
        sim = fault_sim([0, 1, 2, 3], faults, num_disks=2,
                        record_timeline=True)
        result = sim.run()
        result.check_accounting()
        # Blocks 1 and 3 live only on the dead disk: both references are
        # reported unreadable, the rest of the run proceeds.
        assert result.degraded
        assert result.extras["unreadable_references"] == 2
        assert result.extras["lost_blocks"] == 2
        assert result.extras["dead_errors"] == 2
        assert FAULT_INJECTED in event_kinds(sim)

    def test_mid_run_death_loses_only_the_remainder(self):
        # Disk 1 dies at 25 ms: block 1 (fetched around t=11) survives,
        # block 3 (fetched around t=33) is lost.
        faults = FaultSchedule(disk_failures=(DiskFailure(disk=1, at_ms=25.0),))
        result = fault_run([0, 1, 2, 3], faults, num_disks=2)
        assert result.extras["unreadable_references"] == 1

    def test_mirrored_failover_serves_everything(self):
        faults = FaultSchedule(disk_failures=(DiskFailure(disk=0, at_ms=0.0),))
        result = fault_run([0, 1, 2, 3] * 2, faults, num_disks=4,
                           mirrored=True, record_timeline=True)
        result.check_accounting()
        assert not result.degraded
        assert result.extras["unreadable_references"] == 0
        assert result.extras["lost_blocks"] == 0
        assert result.stall_ms > 0 or result.elapsed_ms > 0  # run completed

    def test_mirrored_mid_run_failover_reroutes_queued_reads(self):
        # The spindle dies while requests for it are queued: each queued
        # read fail-fasts, fails over to the twin, and still completes.
        faults = FaultSchedule(disk_failures=(DiskFailure(disk=0, at_ms=15.0),))
        sim = fault_sim(list(range(16)), faults, policy="aggressive",
                        num_disks=4, cache_blocks=16, mirrored=True,
                        record_timeline=True)
        result = sim.run()
        result.check_accounting()
        assert result.extras["unreadable_references"] == 0
        assert result.failover_reads >= 1
        assert result.retry_ms > 0
        assert FAILOVER in event_kinds(sim)

    def test_both_twins_dead_degrades(self):
        # Disks 0 and 2 are mirror twins (twin = home + d/2): killing both
        # makes every block homed on pair 0 unreachable.
        faults = FaultSchedule(disk_failures=(
            DiskFailure(disk=0, at_ms=0.0), DiskFailure(disk=2, at_ms=0.0),
        ))
        result = fault_run(list(range(8)), faults, num_disks=4,
                           cache_blocks=8, mirrored=True)
        result.check_accounting()
        assert result.degraded
        assert result.extras["unreadable_references"] > 0


# -- results surface ----------------------------------------------------------


class TestResultSurface:
    def test_fault_fields_serialized_only_when_faulty(self):
        clean = run([0, 1])
        assert "faults_injected" not in clean.to_dict()
        assert "DEGRADED" not in str(clean)
        faulty = fault_run(
            [0, 1, 2, 3],
            FaultSchedule(disk_failures=(DiskFailure(disk=1, at_ms=0.0),)),
            num_disks=2,
        )
        assert "faults" not in clean.to_dict()
        payload = faulty.to_dict()
        assert payload["faults"] == faulty.faults_injected > 0
        assert "DEGRADED" in str(faulty)

    def test_determinism_across_runs(self):
        faults = FaultSchedule(read_error_rate=0.2, seed=5, max_retries=50)
        first = fault_run(list(range(10)) * 2, faults, policy="forestall",
                          num_disks=2, cache_blocks=6)
        second = fault_run(list(range(10)) * 2, faults, policy="forestall",
                           num_disks=2, cache_blocks=6)
        assert first.elapsed_ms == second.elapsed_ms
        assert first.extras == second.extras

"""Shared fixtures: tiny deterministic traces and simulator configs."""

import pytest

from repro.core import SimConfig, Simulator, make_policy
from repro.trace import Trace


def make_trace(blocks, compute_ms=1.0, name="tiny"):
    """A trace with uniform compute gaps; block ids map straight to disks
    (block % num_disks) because integer blocks are placed identically."""
    if isinstance(compute_ms, (int, float)):
        compute_ms = [float(compute_ms)] * len(blocks)
    return Trace(name=name, blocks=list(blocks), compute_ms=compute_ms)


def simple_config(cache_blocks=4, access_ms=10.0, sequential_ms=None, **kw):
    """Uniform 10 ms fetches, no readahead effects: deterministic timing."""
    return SimConfig(
        cache_blocks=cache_blocks,
        disk_model="simple",
        simple_access_ms=access_ms,
        simple_sequential_ms=sequential_ms,
        **kw,
    )


def run(blocks, policy="demand", num_disks=1, cache_blocks=4,
        compute_ms=1.0, access_ms=10.0, config=None, **policy_kwargs):
    """One-call simulation helper for unit tests."""
    trace = make_trace(blocks, compute_ms)
    if config is None:
        config = simple_config(cache_blocks=cache_blocks, access_ms=access_ms)
    sim = Simulator(trace, make_policy(policy, **policy_kwargs), num_disks, config)
    return sim.run()


@pytest.fixture
def tiny_run():
    return run

"""The supervised runner: plans, journals, pool supervision, bit-identity.

The load-bearing guarantees (docs/RUNNER.md):

* **Bit-identity** — a plan executed on the parallel pool, resumed from a
  journal, or interrupted by SIGTERM and resumed produces exactly the
  digests of an uninterrupted serial run; verified here against the 14
  pinned golden cells of ``tests/test_golden_results.py``.
* **Supervision** — timeouts, worker crashes, and in-cell exceptions
  become structured failure records while every other cell completes;
  crashes are retried with backoff, deterministic exceptions are not.
* **Durability** — every journal record is fsynced before the runner
  moves on; a torn final line is skipped, not fatal.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core.results import SimulationResult
from repro.obs import MetricsRegistry
from repro.runner import (
    Cell,
    Journal,
    RunReport,
    execute_cell,
    execute_cells,
    plan_hash,
    run_plan,
    sweep_cells,
    tuned_reverse_cell,
    validate_names,
    write_json_atomic,
)
from repro.runner.execute import CELL_KINDS
from repro.runner.runner import (
    EXIT_FAILED_CELLS,
    EXIT_INTERRUPTED,
    EXIT_OK,
)

from tests import test_golden_results as golden

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def golden_plan():
    """The 14 golden cells as a runner plan (stock policy parameters, so
    digests are directly comparable to the pinned values)."""
    cells = []
    for trace, policy, disks, discipline, timeline in golden.CELLS:
        overrides = {"record_timeline": True} if timeline else {}
        cells.append(Cell(
            trace=trace, policy=policy, disks=disks, scale=golden.SCALE,
            discipline=discipline, scaled_defaults=False,
            config_overrides=overrides,
        ))
    return cells


GOLDEN_DIGESTS = set(golden.EXPECTED.values())


def fake_result(tag="fake"):
    return SimulationResult(
        trace_name=tag, policy_name="demand", num_disks=1, cache_blocks=4,
        fetches=1, compute_ms=1.0, driver_ms=0.5, stall_ms=0.0,
        elapsed_ms=1.5, average_fetch_ms=0.5, disk_utilization=0.1,
    )


# -- test cell kinds (inherited by fork workers) ----------------------------------------

def _kind_sleep(cell, profiler=None, observer=None, trace_cache=None):
    time.sleep(float(cell.params["sleep_s"]))
    return fake_result("slept"), "digest-slept"


def _kind_crash_once(cell, profiler=None, observer=None, trace_cache=None):
    sentinel = cell.params["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(3)  # hard crash: no exception record, just a dead worker
    return fake_result("recovered"), "digest-recovered"


def _kind_always_fail(cell, profiler=None, observer=None, trace_cache=None):
    raise RuntimeError("injected deterministic failure")


def _kind_always_crash(cell, profiler=None, observer=None, trace_cache=None):
    os._exit(3)


def _kind_fixed(cell, profiler=None, observer=None, trace_cache=None):
    return fake_result("fixed"), "digest-fixed"


def _kind_instant(cell, profiler=None, observer=None, trace_cache=None):
    return fake_result("instant"), f"digest-{cell.params['n']}"


@pytest.fixture
def test_kinds():
    extra = {
        "sleep": _kind_sleep,
        "crash-once": _kind_crash_once,
        "always-crash": _kind_always_crash,
        "always-fail": _kind_always_fail,
        "instant": _kind_instant,
    }
    CELL_KINDS.update(extra)
    yield extra
    for name in extra:
        CELL_KINDS.pop(name, None)


def kind_cell(kind, **params):
    return Cell(trace="ld", policy="demand", disks=1, kind=kind,
                params=params)


# -- plans and hashes -------------------------------------------------------------------


class TestPlan:
    def test_config_hash_is_stable_and_param_sensitive(self):
        a = Cell(trace="ld", policy="demand", disks=2)
        b = Cell(trace="ld", policy="demand", disks=2)
        c = Cell(trace="ld", policy="demand", disks=4)
        assert a.config_hash == b.config_hash
        assert a.config_hash != c.config_hash

    def test_config_hash_ignores_kwarg_insertion_order(self):
        a = Cell(trace="ld", policy="aggressive", disks=2,
                 policy_kwargs={"batch_size": 8, "horizon": 4})
        b = Cell(trace="ld", policy="aggressive", disks=2,
                 policy_kwargs={"horizon": 4, "batch_size": 8})
        assert a.config_hash == b.config_hash

    def test_plan_hash_is_order_sensitive(self):
        a = Cell(trace="ld", policy="demand", disks=1)
        b = Cell(trace="ld", policy="demand", disks=2)
        assert plan_hash([a, b]) != plan_hash([b, a])

    def test_cell_id_mirrors_golden_naming(self):
        cell = Cell(trace="cscope1", policy="demand", disks=4)
        assert cell.cell_id == "cscope1/demand/d4/cscan"

    def test_sweep_cells_order_matches_historical_loop(self):
        class Setting:
            scale = 0.1
            discipline = "cscan"
            cpu_speedup = 1.0
            cache_blocks = None
            disk_model = "hp97560"
            seed = None

        cells = sweep_cells(Setting(), "ld", ("demand", "forestall"), (1, 2))
        assert [(c.disks, c.policy) for c in cells] == [
            (1, "demand"), (1, "forestall"), (2, "demand"), (2, "forestall"),
        ]


class TestValidation:
    def test_unknown_trace_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid traces.*cscope1"):
            validate_names("nonesuch", "demand")

    def test_unknown_policy_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid policies.*aggressive"):
            validate_names("ld", "lru")

    def test_run_one_rejects_unknown_policy_up_front(self):
        from repro.analysis.experiments import ExperimentSetting, run_one
        setting = ExperimentSetting(scale=0.05)
        with pytest.raises(ValueError, match="valid policies"):
            run_one(setting, "ld", "lru", 1)

    def test_empty_fetch_time_grid_is_a_clear_error(self):
        class Setting:
            scale = 0.1
            discipline = "cscan"
            cpu_speedup = 1.0
            cache_blocks = None
            disk_model = "hp97560"
            seed = None

        with pytest.raises(ValueError, match="fetch_times grid is empty"):
            tuned_reverse_cell(Setting(), "ld", 2, fetch_times=())
        with pytest.raises(ValueError, match="batch_sizes grid is empty"):
            tuned_reverse_cell(Setting(), "ld", 2, batch_sizes=())

    def test_unknown_cell_kind(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            execute_cell(kind_cell("no-such-kind"))


# -- journal durability -----------------------------------------------------------------


class TestJournal:
    def test_append_then_records_roundtrip(self, tmp_path):
        journal = Journal(str(tmp_path / "run"))
        journal.append({"kind": "cell", "hash": "h1", "status": "ok"})
        journal.append({"kind": "cell", "hash": "h2", "status": "failed"})
        journal.close()
        records = journal.records()
        assert [r["hash"] for r in records] == ["h1", "h2"]
        assert all(r["v"] == 1 for r in records)

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = Journal(str(tmp_path / "run"))
        journal.append({"kind": "cell", "hash": "h1", "status": "ok"})
        journal.close()
        with open(journal.journal_path, "a") as handle:
            handle.write('{"kind": "cell", "hash": "h2", "sta')  # killed here
        assert [r["hash"] for r in journal.records()] == ["h1"]
        assert set(journal.completed()) == {"h1"}

    def test_completed_excludes_failures_and_failures_exclude_retried(
            self, tmp_path):
        journal = Journal(str(tmp_path / "run"))
        journal.append({"kind": "cell", "hash": "h1", "status": "failed"})
        journal.append({"kind": "cell", "hash": "h1", "status": "ok"})
        journal.append({"kind": "cell", "hash": "h2", "status": "failed"})
        journal.close()
        assert set(journal.completed()) == {"h1"}
        assert [r["hash"] for r in journal.failures()] == ["h2"]

    def test_manifest_atomic_roundtrip(self, tmp_path):
        journal = Journal(str(tmp_path / "run"))
        journal.write_manifest({"status": "running", "cells": 3})
        manifest = journal.read_manifest()
        assert manifest["status"] == "running"
        assert manifest["v"] == 1
        assert not [
            name for name in os.listdir(journal.directory)
            if name.endswith(".tmp")
        ]

    def test_write_json_atomic_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_atomic(str(path), {"b": 2, "a": 1})
        assert json.loads(path.read_text()) == {"a": 1, "b": 2}
        assert os.listdir(tmp_path) == ["out.json"]


# -- supervision: timeouts, crashes, failures -------------------------------------------


class TestSupervision:
    def test_timeout_fires_and_other_cells_complete(self, test_kinds, tmp_path):
        plan = [
            kind_cell("sleep", sleep_s=30.0),
            kind_cell("instant", n=1),
            kind_cell("instant", n=2),
        ]
        report = run_plan(
            plan, journal_dir=str(tmp_path / "run"), jobs=2, timeout_s=1.0,
            install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_FAILED_CELLS
        assert report.completed == 2
        (failure,) = report.failures
        assert failure["failure"] == "timeout"
        assert failure["error"]["type"] == "CellTimeout"
        assert "exceeded the per-cell timeout" in failure["error"]["message"]
        assert report.counters["timeouts"] == 1
        assert report.counters["respawns"] >= 1

    def test_timeout_does_not_fire_on_fast_cells(self, test_kinds, tmp_path):
        plan = [kind_cell("instant", n=1), kind_cell("instant", n=2)]
        report = run_plan(
            plan, journal_dir=str(tmp_path / "run"), jobs=2, timeout_s=30.0,
            install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_OK
        assert report.counters["timeouts"] == 0
        assert report.counters["respawns"] == 0

    def test_crashed_worker_retries_then_succeeds(self, test_kinds, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        plan = [kind_cell("crash-once", sentinel=sentinel),
                kind_cell("instant", n=1)]
        report = run_plan(
            plan, journal_dir=str(tmp_path / "run"), jobs=2,
            retry_backoff_s=0.05, install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_OK
        assert os.path.exists(sentinel)
        assert report.counters["crashes"] == 1
        assert report.counters["retries"] == 1
        assert report.counters["respawns"] == 1
        crash_hash = plan[0].config_hash
        assert report.records[crash_hash]["status"] == "ok"
        assert report.records[crash_hash]["attempt"] == 2

    def test_permanently_crashing_cell_exhausts_retries(
            self, test_kinds, tmp_path):
        plan = [kind_cell("always-crash"), kind_cell("instant", n=1)]
        report = run_plan(
            plan, journal_dir=str(tmp_path / "run"), jobs=2, max_retries=1,
            retry_backoff_s=0.05, install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_FAILED_CELLS
        assert report.completed == 1  # the healthy cell still finished
        (failure,) = report.failures
        assert failure["failure"] == "crash"
        assert failure["error"]["type"] == "WorkerCrashed"
        assert failure["attempt"] == 2  # initial + 1 retry
        assert report.counters["crashes"] == 2

    def test_in_cell_exception_is_not_retried(self, test_kinds, tmp_path):
        plan = [kind_cell("always-fail"), kind_cell("instant", n=1)]
        report = run_plan(
            plan, journal_dir=str(tmp_path / "run"), jobs=1,
            install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_FAILED_CELLS
        (failure,) = report.failures
        assert failure["failure"] == "exception"
        assert failure["error"]["type"] == "RuntimeError"
        assert "injected deterministic failure" in failure["error"]["message"]
        assert "RuntimeError" in failure["error"]["traceback"]
        assert failure["attempt"] == 1  # deterministic: retrying is futile
        assert report.counters["retries"] == 0

    def test_runner_counters_reach_metrics(self, test_kinds, tmp_path):
        metrics = MetricsRegistry()
        run_plan(
            [kind_cell("instant", n=1)], journal_dir=str(tmp_path / "run"),
            jobs=1, metrics=metrics, install_signal_handlers=False,
        )
        counters = metrics.to_dict()["counters"]
        assert counters["runner.cells_total"] == 1
        assert counters["runner.ok"] == 1
        assert counters["runner.dispatched"] == 1


# -- journal hardening: mid-file corruption, stale tmp sweep ----------------------------


class TestJournalHardening:
    def test_malformed_midfile_lines_are_skipped_and_counted(self, tmp_path):
        journal = Journal(str(tmp_path / "run"))
        journal.append({"kind": "cell", "hash": "h1", "status": "ok"})
        journal.append({"kind": "cell", "hash": "h2", "status": "ok"})
        journal.close()
        # Corrupt the middle of the file, not just the tail: a partial
        # overwrite or bad sector, not a torn final append.
        with open(journal.journal_path) as handle:
            lines = handle.readlines()
        lines.insert(1, '{"kind": "cell", "hash": "h-torn", "sta\n')
        lines.insert(2, "\x00\x00garbage\x00\n")
        with open(journal.journal_path, "w") as handle:
            handle.writelines(lines)
        assert [r["hash"] for r in journal.records()] == ["h1", "h2"]
        assert journal.skipped_lines == 2
        assert set(journal.completed()) == {"h1", "h2"}

    def test_skipped_lines_reach_runner_metrics(self, test_kinds, tmp_path):
        journal_dir = str(tmp_path / "run")
        plan = [kind_cell("instant", n=1)]
        run_plan(plan, journal_dir=journal_dir, jobs=1,
                 install_signal_handlers=False)
        with open(os.path.join(journal_dir, "journal.jsonl"), "a") as handle:
            handle.write('{"kind": "cell", "hash": "h-torn", "sta\n')
        metrics = MetricsRegistry()
        resumed = run_plan(plan, journal_dir=journal_dir, jobs=1, resume=True,
                           metrics=metrics, install_signal_handlers=False)
        assert resumed.skipped == 1
        counters = metrics.to_dict()["counters"]
        assert counters["runner.journal_skipped_lines"] == 1

    def test_stale_tmp_files_are_swept_on_open(self, tmp_path):
        from repro.runner import sweep_stale_tmp

        run_dir = tmp_path / "run"
        run_dir.mkdir()
        # The write_json_atomic naming scheme: .<name>.<pid>.tmp
        stale = run_dir / ".manifest.json.12345.tmp"
        stale.write_text('{"half": ')
        keeper = run_dir / "manifest.json"
        keeper.write_text("{}")
        journal = Journal(str(run_dir))
        journal.append({"kind": "cell", "hash": "h1", "status": "ok"})
        journal.close()
        assert not stale.exists()
        assert keeper.exists()
        assert journal.swept_tmp == 1
        # Idempotent and selective: nothing left to sweep.
        assert sweep_stale_tmp(str(run_dir)) == 0

    def test_sweep_reaches_runner_metrics(self, test_kinds, tmp_path):
        journal_dir = tmp_path / "run"
        journal_dir.mkdir()
        (journal_dir / ".manifest.json.999.tmp").write_text("{")
        metrics = MetricsRegistry()
        run_plan([kind_cell("instant", n=1)], journal_dir=str(journal_dir),
                 jobs=1, metrics=metrics, install_signal_handlers=False)
        assert metrics.to_dict()["counters"]["runner.journal_swept_tmp"] == 1


# -- fake-clock scheduling: backoff values, timeout/respawn ordering --------------------


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class StubWorker:
    """A worker stand-in for scheduling tests: no process, no pipe."""

    def __init__(self, worker_id=0):
        self.id = worker_id
        self.task = None
        self.started_at = 0.0
        self.killed = False
        self.dispatched = []

    @property
    def busy(self):
        return self.task is not None

    def dispatch(self, cell, attempt, now, meta=None):
        self.task = (cell, attempt, meta)
        self.started_at = now
        self.dispatched.append((cell.config_hash, attempt, now))

    def kill(self):
        self.killed = True


class TestPoolScheduling:
    """The pool's retry/backoff/timeout arithmetic under a fake clock —
    no real processes, no real sleeps, exact expected values."""

    def make_pool(self, clock, **kwargs):
        from repro.runner.pool import SupervisedPool

        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("retry_backoff_s", 0.5)
        return SupervisedPool(clock=clock, **kwargs)

    def test_backoff_is_exponential_from_base(self):
        pool = self.make_pool(FakeClock(), retry_backoff_s=0.5)
        assert [pool.backoff_s(a) for a in (1, 2, 3, 4)] == [
            0.5, 1.0, 2.0, 4.0,
        ]

    def test_retry_waits_out_backoff_on_the_clock(self, test_kinds):
        clock = FakeClock(now=100.0)
        pool = self.make_pool(clock)
        cell = kind_cell("instant", n=1)
        pool._schedule_retry(cell, attempt=1)  # crashed on attempt 1
        assert pool.counters["retries"] == 1
        # Backoff for attempt 1 is 0.5s: not ready at +0.49, ready at +0.5.
        clock.advance(0.49)
        assert pool._next_ready(clock()) is None
        clock.advance(0.01)
        ready = pool._next_ready(clock())
        assert ready is not None
        ready_cell, attempt, _meta = ready
        assert ready_cell.config_hash == cell.config_hash
        assert attempt == 2

    def test_second_retry_doubles_the_wait(self, test_kinds):
        clock = FakeClock(now=50.0)
        pool = self.make_pool(clock)
        cell = kind_cell("instant", n=1)
        pool._schedule_retry(cell, attempt=2)
        clock.advance(0.99)  # attempt-2 backoff is 1.0s
        assert pool._next_ready(clock()) is None
        clock.advance(0.01)
        assert pool._next_ready(clock()) is not None

    def test_backing_off_retry_does_not_block_fresh_work(self, test_kinds):
        clock = FakeClock(now=10.0)
        pool = self.make_pool(clock)
        retry = kind_cell("instant", n=1)
        fresh = kind_cell("instant", n=2)
        pool._schedule_retry(retry, attempt=1)  # head of the queue, gated
        pool.submit(fresh)
        ready = pool._next_ready(clock())
        assert ready is not None and ready[0].config_hash == fresh.config_hash
        # The gated retry is still queued, untouched.
        assert pool.queue_depth() == 1

    def test_timeout_kills_respawns_then_dispatches_next(self, test_kinds):
        clock = FakeClock(now=0.0)
        pool = self.make_pool(clock, timeout_s=5.0)
        replacement = StubWorker(worker_id=99)
        pool._spawn = lambda: replacement  # no real processes
        worker = StubWorker(worker_id=0)
        pool._workers = [worker]

        slow = kind_cell("sleep", sleep_s=99.0)
        nxt = kind_cell("instant", n=1)
        pool.submit(slow)
        pool.submit(nxt)
        pool._dispatch(clock())
        assert worker.task is not None
        assert worker.started_at == 0.0

        emitted = []
        clock.advance(5.0)  # exactly at the limit: not expired yet
        pool._expire_timeouts(emitted.append)
        assert not worker.killed and not emitted

        clock.advance(0.01)  # past the limit: kill, record, respawn
        pool._expire_timeouts(emitted.append)
        assert worker.killed
        (record,) = emitted
        assert record["failure"] == "timeout"
        assert record["hash"] == slow.config_hash
        assert "exceeded the per-cell timeout" in record["error"]["message"]
        assert pool.counters["timeouts"] == 1
        assert pool.counters["respawns"] == 1
        # The replacement worker is in place and immediately usable: the
        # next dispatch puts the next cell on it with a fresh start time.
        assert pool._workers == [replacement]
        pool._dispatch(clock())
        assert replacement.task == (nxt, 1, None)
        assert replacement.started_at == clock.now

    def test_dispatch_to_freshly_dead_worker_requeues_and_respawns(
            self, test_kinds):
        """A worker SIGKILLed between the liveness check and the pipe
        send must not crash the supervisor: the cell is requeued at the
        SAME attempt (the death was not its failure) and the corpse is
        replaced."""
        clock = FakeClock(now=0.0)
        pool = self.make_pool(clock)
        replacement = StubWorker(worker_id=99)
        pool._spawn = lambda: replacement

        class DeadWorker(StubWorker):
            def dispatch(self, cell, attempt, now, meta=None):
                raise BrokenPipeError(32, "Broken pipe")

        corpse = DeadWorker(worker_id=0)
        pool._workers = [corpse]
        cell = kind_cell("instant", n=1)
        pool.submit(cell)

        pool._dispatch(clock())
        assert corpse.killed
        assert pool._workers == [replacement]
        assert pool.counters["respawns"] == 1
        assert pool.counters["dispatched"] == 0
        assert pool.counters["retries"] == 0  # no retry budget consumed
        # The cell went back to the head of the queue, immediately ready,
        # and the next dispatch lands it on the replacement at attempt 1.
        assert pool.queue_depth() == 1
        pool._dispatch(clock())
        assert replacement.task == (cell, 1, None)
        assert pool.counters["dispatched"] == 1


# -- cancellation (real processes) ------------------------------------------------------


class TestPoolCancellation:
    def run_serve(self, pool, emit):
        import threading

        thread = threading.Thread(target=pool.serve, args=(emit,))
        thread.start()
        return thread

    def test_cancel_pending_cell_drops_it_before_dispatch(self, test_kinds):
        from repro.runner.pool import SupervisedPool

        pool = SupervisedPool(jobs=1)
        records = []
        slow = kind_cell("sleep", sleep_s=0.4)
        queued = kind_cell("instant", n=1)
        pool.submit(slow)
        pool.submit(queued)
        thread = self.run_serve(pool, records.append)
        try:
            assert pool.cancel(queued.config_hash) is True
            deadline = time.monotonic() + 30.0
            while len(records) < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            pool.request_stop()
            thread.join(timeout=30.0)
        by_hash = {r["hash"]: r for r in records}
        assert by_hash[slow.config_hash]["status"] == "ok"
        cancelled = by_hash[queued.config_hash]
        assert cancelled["failure"] == "cancelled"
        assert cancelled["error"]["type"] == "CellCancelled"
        assert pool.counters["cancelled"] == 1

    def test_cancel_running_cell_kills_and_respawns(self, test_kinds):
        from repro.runner.pool import SupervisedPool

        pool = SupervisedPool(jobs=1)
        records = []
        stuck = kind_cell("sleep", sleep_s=60.0)
        after = kind_cell("instant", n=2)
        pool.submit(stuck)
        thread = self.run_serve(pool, records.append)
        try:
            deadline = time.monotonic() + 30.0
            while pool.counters["dispatched"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert pool.cancel(stuck.config_hash) is True
            pool.submit(after)  # the respawned worker picks this up
            while len(records) < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            pool.request_stop()
            thread.join(timeout=30.0)
        by_hash = {r["hash"]: r for r in records}
        assert by_hash[stuck.config_hash]["failure"] == "cancelled"
        assert by_hash[after.config_hash]["status"] == "ok"
        assert pool.counters["respawns"] >= 1

    def test_cancel_unknown_hash_is_a_noop(self, test_kinds):
        from repro.runner.pool import SupervisedPool

        pool = SupervisedPool(jobs=1)
        assert pool.cancel("no-such-hash") is False
        assert pool.counters["cancelled"] == 0


# -- resume -----------------------------------------------------------------------------


class TestResume:
    def test_resume_skips_completed_and_reruns_failed(
            self, test_kinds, tmp_path):
        journal_dir = str(tmp_path / "run")
        plan = [kind_cell("always-fail"), kind_cell("instant", n=1)]
        first = run_plan(plan, journal_dir=journal_dir, jobs=1,
                         install_signal_handlers=False)
        assert first.exit_code == EXIT_FAILED_CELLS

        # Second run: the failed cell is retried, the ok cell skipped.
        CELL_KINDS["always-fail"] = _kind_fixed  # "fixed" between runs
        second = run_plan(
            plan, journal_dir=journal_dir, jobs=1, resume=True,
            install_signal_handlers=False,
        )
        assert second.exit_code == EXIT_OK
        assert second.skipped == 1
        assert second.completed == 2

    def test_resumed_results_are_reconstructed_in_plan_order(self, tmp_path):
        journal_dir = str(tmp_path / "run")
        plan = [
            Cell(trace="ld", policy="demand", disks=d, scale=0.05)
            for d in (1, 2)
        ]
        first = run_plan(plan, journal_dir=journal_dir, jobs=1,
                         install_signal_handlers=False)
        resumed = run_plan(plan, journal_dir=journal_dir, jobs=1, resume=True,
                           install_signal_handlers=False)
        assert resumed.skipped == 2
        firsts = first.results()
        seconds = resumed.results()
        assert all(isinstance(r, SimulationResult) for r in seconds)
        # Reconstructed results are bit-identical to the live originals.
        for a, b in zip(firsts, seconds):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_without_resume_completed_cells_rerun(self, test_kinds, tmp_path):
        journal_dir = str(tmp_path / "run")
        plan = [kind_cell("instant", n=1)]
        run_plan(plan, journal_dir=journal_dir, jobs=1,
                 install_signal_handlers=False)
        again = run_plan(plan, journal_dir=journal_dir, jobs=1,
                         install_signal_handlers=False)
        assert again.skipped == 0
        assert again.completed == 1


# -- bit-identity against the golden cells ----------------------------------------------


class TestBitIdentity:
    def test_serial_plan_reproduces_golden_digests(self):
        outcomes = execute_cells(golden_plan())
        for golden_cell, outcome in zip(golden.CELLS, outcomes):
            assert outcome.digest == golden.EXPECTED[golden.cell_id(golden_cell)]

    def test_parallel_pool_reproduces_golden_digests(self, tmp_path):
        report = run_plan(
            golden_plan(), journal_dir=str(tmp_path / "run"), jobs=2,
            install_signal_handlers=False,
        )
        assert report.exit_code == EXIT_OK
        assert set(report.digests.values()) == GOLDEN_DIGESTS

    def test_interrupted_then_resumed_matches_serial(self, tmp_path):
        """The headline property: SIGTERM mid-sweep + --resume == serial.

        A subprocess starts the golden plan on two workers, is SIGTERMed
        mid-flight (graceful drain, exit 75), and the journal is resumed
        in-process.  The union of digests must be exactly the 14 pinned
        golden values — no cell lost, none duplicated, none altered.
        """
        journal_dir = str(tmp_path / "run")
        driver = textwrap.dedent(
            """
            import sys
            sys.path[:0] = [r"{repo}", r"{repo}/src"]
            from tests.test_runner import golden_plan
            from repro.runner import run_plan
            report = run_plan(golden_plan(), journal_dir=r"{journal}", jobs=2)
            sys.exit(report.exit_code)
            """
        ).format(repo=REPO_ROOT, journal=journal_dir)
        proc = subprocess.Popen(
            [sys.executable, "-c", driver], cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        # Let a few cells land in the journal, then interrupt.
        deadline = time.monotonic() + 60.0
        journal = Journal(journal_dir)
        while time.monotonic() < deadline and proc.poll() is None:
            if len(journal.completed()) >= 2:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60.0)
        stderr = proc.stderr.read().decode()

        interrupted = journal.completed()
        if proc.returncode == EXIT_INTERRUPTED:
            # The interesting case: some cells done, some not.
            assert 0 < len(interrupted) < len(golden.CELLS), stderr
        else:
            # The sweep can win the race on a fast machine; then the
            # journal must already be complete.
            assert proc.returncode == EXIT_OK, stderr
            assert len(interrupted) == len(golden.CELLS)

        resumed = run_plan(
            golden_plan(), journal_dir=journal_dir, jobs=2, resume=True,
            install_signal_handlers=False,
        )
        assert resumed.exit_code == EXIT_OK
        assert resumed.skipped == len(interrupted)
        assert set(resumed.digests.values()) == GOLDEN_DIGESTS
        # And the full-precision reconstructions match the pinned digests
        # cell by cell, in plan order.
        for golden_cell, result in zip(golden.CELLS, resumed.results()):
            assert result is not None, golden.cell_id(golden_cell)


# -- signals ----------------------------------------------------------------------------


class TestSignals:
    def test_sigterm_drains_and_exits_75(self, test_kinds, tmp_path):
        journal_dir = str(tmp_path / "run")
        driver = textwrap.dedent(
            """
            import sys, time
            sys.path[:0] = [r"{repo}", r"{repo}/src"]
            from tests.test_runner import kind_cell, _kind_sleep, _kind_instant
            from repro.runner import run_plan
            from repro.runner.execute import CELL_KINDS
            CELL_KINDS["sleep"] = _kind_sleep
            CELL_KINDS["instant"] = _kind_instant
            plan = [kind_cell("sleep", sleep_s=0.6)] + [
                kind_cell("instant", n=i) for i in range(50)
            ]
            print("ready", flush=True)
            report = run_plan(plan, journal_dir=r"{journal}", jobs=1)
            sys.exit(report.exit_code)
            """
        ).format(repo=REPO_ROOT, journal=journal_dir)
        proc = subprocess.Popen(
            [sys.executable, "-c", driver], cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        assert proc.stdout.readline().strip() == b"ready"
        time.sleep(0.3)  # inside the first (sleeping) cell
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=30.0)
        assert proc.returncode == EXIT_INTERRUPTED, stderr.decode()
        journal = Journal(journal_dir)
        # The in-flight cell drained (it is in the journal) and the
        # manifest records the interruption for `repro-sim runs`.
        assert len(journal.completed()) >= 1
        assert journal.read_manifest()["status"] == "interrupted"


# -- CLI --------------------------------------------------------------------------------


class TestCli:
    def test_supervised_sweep_then_runs_list_and_show(self, capsys, tmp_path):
        from repro.cli import main
        journal_dir = str(tmp_path / "run")
        code = main([
            "sweep", "-t", "ld", "-p", "demand,forestall", "-d", "1,2",
            "--scale", "0.05", "--jobs", "2", "--journal", journal_dir,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "demand" in out and "forestall" in out
        assert "elapsed_s" in out

        code = main(["runs", "list", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out

        code = main(["runs", "show", journal_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "ld/demand/d1" in out

    def test_sweep_resume_skips_completed(self, capsys, tmp_path):
        from repro.cli import main
        journal_dir = str(tmp_path / "run")
        argv = [
            "sweep", "-t", "ld", "-p", "demand", "-d", "1",
            "--scale", "0.05", "--jobs", "1", "--journal", journal_dir,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume" in out.lower()

    def test_legacy_sweep_unchanged(self, capsys):
        from repro.cli import main
        code = main([
            "sweep", "-t", "ld", "-p", "demand", "-d", "1", "--scale", "0.05",
        ])
        assert code == 0
        assert "elapsed_s" in capsys.readouterr().out

"""DiskGeometry: Table 1 constants and address arithmetic."""

import pytest

from repro.disk.geometry import HP97560, DiskGeometry


class TestHP97560Constants:
    def test_table1_sector_size(self):
        assert HP97560.sector_size == 512

    def test_table1_sectors_per_track(self):
        assert HP97560.sectors_per_track == 72

    def test_table1_tracks_per_cylinder(self):
        assert HP97560.tracks_per_cylinder == 19

    def test_table1_cylinders(self):
        assert HP97560.cylinders == 1962

    def test_table1_rpm(self):
        assert HP97560.rpm == 4002

    def test_table1_cache_size(self):
        assert HP97560.cache_bytes == 128 * 1024

    def test_rotation_time_is_about_15ms(self):
        assert HP97560.rotation_ms == pytest.approx(14.99, abs=0.01)

    def test_cache_holds_16_blocks(self):
        assert HP97560.cache_blocks == 16

    def test_total_capacity_exceeds_1gb(self):
        # 1962 * 19 * 72 * 512 bytes ~ 1.37 GB
        assert HP97560.total_sectors * HP97560.sector_size > 10**9

    def test_block_is_16_sectors(self):
        assert HP97560.sectors_per_block == 16


class TestDerivedQuantities:
    def test_sector_time(self):
        assert HP97560.sector_time_ms == pytest.approx(
            HP97560.rotation_ms / 72
        )

    def test_block_media_transfer_is_16_sector_times(self):
        assert HP97560.block_media_transfer_ms == pytest.approx(
            16 * HP97560.sector_time_ms
        )

    def test_block_bus_transfer_at_10mbps(self):
        assert HP97560.block_bus_transfer_ms == pytest.approx(0.8192)

    def test_blocks_per_cylinder(self):
        assert HP97560.blocks_per_cylinder == (72 * 19) // 16

    def test_media_slower_than_bus(self):
        # The drive reads media slower than SCSI-II moves it, so transfers
        # overlap and media time dominates.
        assert HP97560.block_media_transfer_ms > HP97560.block_bus_transfer_ms


class TestAddressArithmetic:
    def test_block_zero_at_origin(self):
        assert HP97560.block_to_cylinder(0) == 0
        assert HP97560.block_to_track(0) == 0
        assert HP97560.block_rotational_offset(0) == 0

    def test_blocks_advance_through_track(self):
        # 72 sectors / 16 per block = 4.5 blocks per track: block 4 straddles
        # into track 1.
        assert HP97560.block_rotational_offset(1) == 16
        assert HP97560.block_rotational_offset(4) == 64

    def test_track_boundary(self):
        # Block 5 starts at sector 80 -> track 1, offset 8.
        assert HP97560.block_to_track(5) == 1
        assert HP97560.block_rotational_offset(5) == 8

    def test_cylinder_boundary(self):
        # 1368 sectors/cylinder at 16 sectors/block: block 85 *starts* at
        # sector 1360 (still cylinder 0, straddling); block 86 is cylinder 1.
        assert HP97560.block_to_cylinder(85) == 0
        assert HP97560.block_to_cylinder(86) == 1

    def test_last_block_is_addressable(self):
        last = HP97560.total_blocks - 1
        assert HP97560.block_to_cylinder(last) < HP97560.cylinders

    def test_out_of_range_block_rejected(self):
        with pytest.raises(ValueError):
            HP97560.block_to_cylinder(HP97560.total_blocks)
        with pytest.raises(ValueError):
            HP97560.block_to_cylinder(-1)


class TestCustomGeometry:
    def test_block_size_must_divide_sectors(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_size=1000)

    def test_small_geometry_block_math(self):
        geom = DiskGeometry(
            sectors_per_track=8, tracks_per_cylinder=2, cylinders=4,
            block_size=2048,  # 4 sectors
        )
        assert geom.sectors_per_block == 4
        assert geom.blocks_per_cylinder == 4
        assert geom.total_blocks == 16
        assert geom.block_to_cylinder(5) == 1


class TestIBM0661:
    def test_published_shape(self):
        from repro.disk.geometry import IBM0661

        assert IBM0661.cylinders == 949
        assert IBM0661.tracks_per_cylinder == 14
        assert IBM0661.sectors_per_track == 48
        # ~320 MB class drive
        capacity_mb = IBM0661.total_sectors * 512 / 1e6
        assert 280 < capacity_mb < 380

    def test_faster_rotation_than_hp(self):
        from repro.disk.geometry import HP97560, IBM0661

        assert IBM0661.rotation_ms < HP97560.rotation_ms

    def test_engine_accepts_ibm_model(self):
        from tests.conftest import make_trace
        from repro.core import SimConfig, Simulator, make_policy

        trace = make_trace(list(range(10)))
        config = SimConfig(cache_blocks=16, disk_model="ibm0661")
        result = Simulator(trace, make_policy("demand"), 2, config).run()
        assert result.fetches == 10


class TestZonedGeometry:
    def _zoned(self):
        from repro.disk.geometry import HP97560_ZONED

        return HP97560_ZONED

    def test_zone_cylinders_must_sum(self):
        from repro.disk.geometry import Zone, ZonedGeometry

        with pytest.raises(ValueError, match="zone cylinders"):
            ZonedGeometry(zones=(Zone(100, 72),))

    def test_outer_zone_streams_faster(self):
        g = self._zoned()
        inner_block = g.total_blocks - 1
        assert g.media_transfer_ms(0) < g.media_transfer_ms(inner_block)

    def test_cylinder_mapping_monotone(self):
        g = self._zoned()
        samples = [g.block_to_cylinder(b) for b in range(0, g.total_blocks, 997)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))
        assert samples[-1] < g.cylinders

    def test_rotational_fraction_in_unit_interval(self):
        g = self._zoned()
        for lbn in (0, 7, 50_000, g.total_blocks - 1):
            assert 0.0 <= g.rotational_fraction(lbn) < 1.0

    def test_capacity_close_to_flat_model(self):
        from repro.disk.geometry import HP97560

        g = self._zoned()
        assert abs(g.total_blocks - HP97560.total_blocks) < HP97560.total_blocks * 0.02

    def test_zone_boundaries_addressable(self):
        g = self._zoned()
        boundary = g._zone_starts[1][0]
        assert g.block_to_cylinder(boundary - 1) < g.block_to_cylinder(boundary) + 1
        # first block of zone 2 sits at that zone's first cylinder
        assert g.block_to_cylinder(boundary) == g._zone_starts[1][1]

    def test_engine_accepts_zoned_model(self):
        from tests.conftest import make_trace
        from repro.core import SimConfig, Simulator, make_policy

        trace = make_trace(list(range(12)))
        config = SimConfig(cache_blocks=16, disk_model="hp97560-zoned")
        result = Simulator(trace, make_policy("aggressive"), 2, config).run()
        assert result.fetches >= 12

"""Striped layout, file placement, and the DiskArray container."""

import pytest

from repro.disk.array import (
    PLACEMENT_GROUP_BLOCKS,
    DiskArray,
    Placement,
    StripedLayout,
)
from repro.disk.simple import SimpleDrive


class TestStripedLayout:
    def test_one_block_stripe_unit(self):
        layout = StripedLayout(4)
        assert [layout.disk_of(g) for g in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_per_disk_addresses_advance(self):
        layout = StripedLayout(4)
        assert [layout.lbn_of(g) for g in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_single_disk_identity(self):
        layout = StripedLayout(1)
        assert layout.disk_of(12345) == 0
        assert layout.lbn_of(12345) == 12345

    def test_striping_balances_sequential_runs(self):
        layout = StripedLayout(3)
        counts = [0, 0, 0]
        for g in range(300):
            counts[layout.disk_of(g)] += 1
        assert counts == [100, 100, 100]


class TestPlacement:
    def test_plain_blocks_placed_identically(self):
        p = Placement(total_blocks=100000)
        assert p.place(42) == 42

    def test_plain_blocks_wrap_modulo_capacity(self):
        p = Placement(total_blocks=1000)
        assert p.place(1234) == 234

    def test_file_blocks_get_group_start(self):
        p = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 10, seed=7)
        g = p.place((0, 0))
        assert g % PLACEMENT_GROUP_BLOCKS == 0  # group-aligned start

    def test_file_offsets_are_contiguous(self):
        p = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 10, seed=7)
        base = p.place((3, 0))
        assert p.place((3, 5)) == base + 5

    def test_same_file_same_start_across_calls(self):
        p = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 10, seed=7)
        assert p.place((1, 0)) == p.place((1, 0))

    def test_seed_determinism(self):
        a = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 10, seed=3)
        b = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 10, seed=3)
        assert a.place((5, 2)) == b.place((5, 2))

    def test_different_seeds_usually_differ(self):
        a = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 50, seed=1)
        b = Placement(total_blocks=PLACEMENT_GROUP_BLOCKS * 50, seed=2)
        placements_a = [a.place((f, 0)) for f in range(20)]
        placements_b = [b.place((f, 0)) for f in range(20)]
        assert placements_a != placements_b


class TestDiskArray:
    def _array(self, disks=2):
        return DiskArray(
            disks,
            drive_factory=lambda: SimpleDrive(access_ms=10.0),
            discipline="fcfs",
        )

    def test_requires_at_least_one_disk(self):
        with pytest.raises(ValueError):
            DiskArray(0)

    def test_submit_and_start(self):
        array = self._array()
        array.submit(0, block=7, lbn=7)
        started = array.start_next(0, now=0.0)
        assert started is not None
        request, completion, breakdown = started
        assert request.block == 7
        assert completion == pytest.approx(10.0)

    def test_one_request_in_service_per_disk(self):
        array = self._array()
        array.submit(0, 1, 1)
        array.submit(0, 2, 2)
        assert array.start_next(0, 0.0) is not None
        assert array.start_next(0, 0.0) is None  # busy
        array.complete(0)
        assert array.start_next(0, 10.0) is not None

    def test_complete_without_service_raises(self):
        array = self._array()
        with pytest.raises(RuntimeError):
            array.complete(0)

    def test_queue_length_visibility(self):
        array = self._array()
        array.submit(1, 5, 5)
        array.submit(1, 6, 6)
        assert array.queue_length(1) == 2
        array.start_next(1, 0.0)
        assert array.queue_length(1) == 1

    def test_busy_time_accumulates(self):
        array = self._array()
        array.submit(0, 1, 1)
        array.start_next(0, 0.0)
        array.complete(0)
        assert array.busy_time[0] == pytest.approx(10.0)
        assert array.busy_time[1] == 0.0

    def test_average_service_and_utilization(self):
        array = self._array()
        for i in range(3):
            array.submit(0, i, i)
        t = 0.0
        for _ in range(3):
            _, completion, _ = array.start_next(0, t)
            array.complete(0)
            t = completion
        assert array.average_service_ms() == pytest.approx(10.0)
        assert array.utilization(elapsed_ms=60.0) == pytest.approx(
            30.0 / (2 * 60.0)
        )

    def test_utilization_zero_elapsed(self):
        assert self._array().utilization(0.0) == 0.0

    def test_idle_disk_reports_idle(self):
        array = self._array()
        assert array.is_idle(0)
        array.submit(0, 1, 1)
        array.start_next(0, 0.0)
        assert not array.is_idle(0)

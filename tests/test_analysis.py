"""Analysis layer: experiment drivers and table renderers."""

import pytest

from repro.analysis.experiments import (
    PAPER_DISK_COUNTS,
    ExperimentSetting,
    baseline_rows,
    compare_disciplines,
    default_scale,
    run_one,
    scaled_policy_kwargs,
    sweep_policies,
    tuned_reverse_aggressive,
)
from repro.analysis.tables import (
    format_appendix_table,
    format_breakdown_table,
    format_elapsed_grid,
    format_table,
)


@pytest.fixture(scope="module")
def setting():
    return ExperimentSetting(scale=0.1)


class TestExperimentSetting:
    def test_trace_cached_across_calls(self, setting):
        assert setting.trace("ld") is setting.trace("ld")

    def test_cache_follows_paper_choice(self):
        s = ExperimentSetting(scale=1.0)
        assert s.cache_for("dinero") == 512
        assert s.cache_for("glimpse") == 1280

    def test_cache_override(self):
        s = ExperimentSetting(scale=1.0, cache_blocks=640)
        assert s.cache_for("glimpse") == 640

    def test_sim_config_reflects_discipline(self):
        s = ExperimentSetting(discipline="fcfs")
        assert s.sim_config("ld").discipline == "fcfs"

    def test_paper_disk_counts(self):
        assert PAPER_DISK_COUNTS == (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16)


class TestScaledPolicyKwargs:
    def test_full_scale_injects_nothing(self):
        assert scaled_policy_kwargs("aggressive", 1, 1.0) == {}

    def test_horizon_scaled_for_fh(self):
        kw = scaled_policy_kwargs("fixed-horizon", 1, 0.25)
        assert kw == {"horizon": 15}

    def test_batch_scaled_for_aggressive(self):
        kw = scaled_policy_kwargs("aggressive", 1, 0.25)
        assert kw == {"batch_size": 20}

    def test_forestall_gets_both(self):
        kw = scaled_policy_kwargs("forestall", 2, 0.5)
        assert kw == {"horizon": 31, "batch_size": 20}

    def test_reverse_uses_forward_batch_name(self):
        kw = scaled_policy_kwargs("reverse-aggressive", 1, 0.5)
        assert "forward_batch_size" in kw

    def test_floors_respected(self):
        kw = scaled_policy_kwargs("forestall", 16, 0.01)
        assert kw["horizon"] >= 8
        assert kw["batch_size"] >= 4


class TestDrivers:
    def test_run_one_returns_result(self, setting):
        result = run_one(setting, "ld", "demand", 1)
        assert result.trace_name.startswith("ld")
        assert result.num_disks == 1

    def test_sweep_covers_grid(self, setting):
        results = sweep_policies(setting, "ld", ["demand", "aggressive"], [1, 2])
        assert len(results) == 4
        assert {r.num_disks for r in results} == {1, 2}

    def test_baseline_rows_shape(self, setting):
        table = baseline_rows(
            setting, "ld", [1, 2],
            policies=("fixed-horizon", "aggressive"), tuned_reverse=False,
        )
        assert set(table) == {"fixed-horizon", "aggressive"}
        assert len(table["aggressive"]) == 2

    def test_tuned_reverse_picks_minimum(self, setting):
        best = tuned_reverse_aggressive(
            setting, "ld", 1, fetch_times=(2, 64)
        )
        for fetch_time in (2, 64):
            candidate = run_one(
                setting, "ld", "reverse-aggressive", 1,
                fetch_time_estimate=fetch_time,
            )
            assert best.elapsed_ms <= candidate.elapsed_ms + 1e-9
        assert best.policy_name == "reverse-aggressive"

    def test_compare_disciplines_rows(self, setting):
        rows = compare_disciplines(setting, "ld", "aggressive", [1, 2])
        assert len(rows) == 2
        for disks, cscan, fcfs, improvement in rows:
            assert cscan.num_disks == disks
            expected = 100.0 * (fcfs.elapsed_ms - cscan.elapsed_ms) / fcfs.elapsed_ms
            assert improvement == pytest.approx(expected)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "0.4")
        assert default_scale() == 0.4
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_scale() == 1.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(("a", "b"), [(1, 2.5), (10, 3.25)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty_rows(self):
        out = format_table(("x",), [])
        assert "x" in out

    def test_breakdown_table_lists_components(self, setting):
        result = run_one(setting, "ld", "demand", 1)
        out = format_breakdown_table([result], title="T")
        assert out.startswith("T\n")
        for col in ("cpu_s", "driver_s", "stall_s", "elapsed_s"):
            assert col in out

    def test_appendix_table_sections(self, setting):
        table = baseline_rows(
            setting, "ld", [1], policies=("demand",), tuned_reverse=False
        )
        out = format_appendix_table(table, [1])
        assert "demand" in out
        assert "fetches" in out
        assert "elapsed time (sec)" in out

    def test_elapsed_grid(self):
        out = format_elapsed_grid(
            {"F=4": [1.0, 2.0], "F=8": [3.0, 4.0]},
            row_label="fetch", col_labels=[1, 2], title="grid",
        )
        assert "grid" in out
        assert "F=8" in out

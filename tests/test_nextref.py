"""Next-reference index and the furthest-future eviction heap."""

import pytest

from repro.core.nextref import (
    EvictionHeap,
    NextRefIndex,
    first_missing_positions,
    first_missing_positions_batched,
)


class TestNextRefIndex:
    def test_positions_collected_per_block(self):
        index = NextRefIndex([1, 2, 1, 3, 1])
        assert index.positions[1] == [0, 2, 4]
        assert index.positions[3] == [3]

    def test_next_use_at_cursor_zero(self):
        index = NextRefIndex([5, 6, 5])
        assert index.next_use(5, 0) == 0
        assert index.next_use(6, 0) == 1

    def test_next_use_advances_with_cursor(self):
        index = NextRefIndex([5, 6, 5])
        assert index.next_use(5, 1) == 2
        assert index.next_use(5, 3) == index.never

    def test_unknown_block_is_never_sentinel(self):
        index = NextRefIndex([1, 2, 3])
        assert index.next_use(99, 0) == index.never

    def test_never_sentinel_is_exact_int_past_the_end(self):
        # The sentinel is len(blocks): an exact integer that compares
        # greater than every real position — no float identity involved.
        index = NextRefIndex([1, 2, 3])
        assert index.never == 3
        assert isinstance(index.next_use(99, 0), int)

    def test_next_use_exactly_at_position(self):
        index = NextRefIndex([7, 8, 7])
        assert index.next_use(7, 2) == 2

    def test_cold_query_any_cursor_order(self):
        index = NextRefIndex([1, 2, 1, 2, 1])
        assert index.next_use_cold(1, 4) == 4
        assert index.next_use_cold(1, 0) == 0  # backwards is fine cold
        assert index.next_use_cold(2, 4) == index.never

    def test_backwards_cursor_answers_exactly(self):
        # The old pointer-based index silently returned a too-late position
        # when the cursor moved backwards for a previously-queried block
        # (see TestMonotoneCursorRegression); the rewrite falls back to a
        # bisect and stays exact.
        index = NextRefIndex([7, 7, 7])
        assert index.next_use(7, 2) == 2
        assert index.next_use(7, 0) == 0
        assert index.next_use(7, 1) == 1
        index2 = NextRefIndex([1, 2, 1, 2, 1])
        assert index2.next_use(1, 4) == 4
        assert index2.next_use(1, 1) == 2
        assert index2.next_use(1, 0) == 0

    def test_distinct_blocks(self):
        index = NextRefIndex([1, 1, 2, 3, 3, 3])
        assert index.distinct_blocks == 3

    def test_len_is_reference_count(self):
        assert len(NextRefIndex([4, 4, 4])) == 3


class TestEvictionHeap:
    def _setup(self, blocks, resident):
        index = NextRefIndex(blocks)
        resident_set = set(resident)
        heap = EvictionHeap(index, resident_set)
        for block in resident_set:
            heap.push(block, 0)
        return index, resident_set, heap

    def test_picks_furthest_next_use(self):
        # refs: a=0, b=1, c=5; resident all -> victim is c (furthest).
        _, _, heap = self._setup([1, 2, 9, 9, 9, 3], resident=[1, 2, 3])
        assert heap.best_victim(0) == 3

    def test_never_referenced_again_is_best(self):
        _, _, heap = self._setup([1, 2, 3], resident=[1, 2, 7])
        assert heap.best_victim(0) == 7

    def test_stale_entries_revalidated_after_cursor_moves(self):
        blocks = [1, 2, 1, 2]
        index, resident, heap = self._setup(blocks, resident=[1, 2])
        # At cursor 0: next uses 1->0, 2->1, so 2 is victim.
        assert heap.best_victim(0) == 2
        # After consuming both once (cursor 2): 1->2, 2->3: still 2.
        heap.push(1, 2)
        heap.push(2, 2)
        assert heap.best_victim(2) == 2
        # At cursor 3, block 1 never again (INF), block 2 at 3 -> victim 1.
        heap.push(1, 3)
        heap.push(2, 3)
        assert heap.best_victim(3) == 1

    def test_evicted_blocks_skipped(self):
        _, resident, heap = self._setup([1, 2, 3], resident=[1, 2, 3])
        resident.discard(3)
        victim = heap.best_victim(0)
        assert victim in (1, 2)

    def test_exclude_does_not_lose_entries(self):
        _, _, heap = self._setup([1, 2, 3], resident=[1, 2, 3])
        first = heap.best_victim(0, exclude={3})
        assert first == 2
        # 3 must still be discoverable afterwards.
        assert heap.best_victim(0) == 3

    def test_empty_heap_returns_none(self):
        _, _, heap = self._setup([1], resident=[])
        assert heap.best_victim(0) is None


class TestFirstMissingPositions:
    def test_yields_missing_in_order(self):
        blocks = [1, 2, 3, 2, 4]
        present = {2}
        got = list(
            first_missing_positions(blocks, 0, lambda b: b in present, limit=10)
        )
        assert got == [0, 2, 4]

    def test_deduplicates_blocks(self):
        blocks = [7, 7, 7]
        got = list(first_missing_positions(blocks, 0, lambda b: False, limit=10))
        assert got == [0]

    def test_respects_limit(self):
        blocks = list(range(100))
        got = list(first_missing_positions(blocks, 0, lambda b: False, limit=5))
        assert got == [0, 1, 2, 3, 4]

    def test_max_count(self):
        blocks = list(range(100))
        got = list(
            first_missing_positions(
                blocks, 0, lambda b: False, limit=100, max_count=3
            )
        )
        assert len(got) == 3

    def test_starts_at_cursor(self):
        blocks = [1, 2, 3]
        got = list(first_missing_positions(blocks, 1, lambda b: False, limit=10))
        assert got == [1, 2]

    # -- boundary audit: the batched scan must match these exactly ---------

    def test_cursor_at_end_yields_nothing(self):
        blocks = [1, 2, 3]
        got = list(
            first_missing_positions(blocks, len(blocks), lambda b: False, limit=10)
        )
        assert got == []

    def test_cursor_past_end_yields_nothing(self):
        blocks = [1, 2, 3]
        got = list(
            first_missing_positions(blocks, 99, lambda b: False, limit=10)
        )
        assert got == []

    def test_limit_zero_yields_nothing(self):
        got = list(first_missing_positions([1, 2], 0, lambda b: False, limit=0))
        assert got == []

    def test_limit_caps_window_not_count(self):
        # limit bounds how far ahead the scan looks (cursor + limit), while
        # max_count bounds how many positions are reported within it.
        blocks = [1, 1, 2, 3, 4]
        got = list(first_missing_positions(blocks, 0, lambda b: False, limit=3))
        assert got == [0, 2]  # position 1 is a duplicate, 3 is past limit

    def test_max_count_stops_before_limit_exhausted(self):
        blocks = [1, 2, 3, 4]
        got = list(
            first_missing_positions(
                blocks, 0, lambda b: False, limit=10, max_count=2
            )
        )
        assert got == [0, 1]

    def test_max_count_zero_behaves_like_unbounded(self):
        # max_count=0 can never satisfy found >= max_count after a yield,
        # so the first missing position is still reported.  Pinned: the
        # check happens after yielding, not before.
        blocks = [1, 2]
        got = list(
            first_missing_positions(
                blocks, 0, lambda b: False, limit=10, max_count=0
            )
        )
        assert got == [0]

    def test_duplicate_suppression_is_per_call(self):
        # The seen-set resets each call: a block suppressed as a duplicate
        # in one call is reported again by the next call.
        blocks = [7, 7, 7]
        first = list(first_missing_positions(blocks, 0, lambda b: False, limit=10))
        assert first == [0]
        second = list(first_missing_positions(blocks, 1, lambda b: False, limit=10))
        assert second == [1]

    def test_present_blocks_filtered_not_deduplicated(self):
        # A present block is skipped without entering the seen set, so a
        # later occurrence is re-tested (and still skipped while present).
        blocks = [5, 6, 5]
        got = list(
            first_missing_positions(blocks, 0, lambda b: b == 5, limit=10)
        )
        assert got == [1]

    def test_limit_window_clamps_to_length(self):
        blocks = [1, 2]
        got = list(first_missing_positions(blocks, 1, lambda b: False, limit=999))
        assert got == [1]


class TestFirstMissingPositionsBatched:
    """The batched variant must agree with the generator on every case."""

    CASES = [
        ([], 0, 10, None),
        ([1, 2, 3], 0, 10, None),
        ([1, 2, 3], 3, 10, None),
        ([1, 2, 3], 99, 10, None),
        ([1, 1, 2, 3, 4], 0, 3, None),
        ([7, 7, 7], 0, 10, None),
        ([7, 7, 7], 1, 10, None),
        ([1, 2, 3, 4], 0, 10, 2),
        ([1, 2], 0, 10, 0),
        ([5, 6, 5], 0, 10, None),
        ([1, 2], 1, 999, None),
        ([1, 2], 0, 0, None),
    ]

    def test_matches_reference_generator(self):
        for blocks, cursor, limit, max_count in self.CASES:
            present = {2, 5}
            is_present = lambda b: b in present
            expected = list(
                first_missing_positions(blocks, cursor, is_present, limit, max_count)
            )
            got = first_missing_positions_batched(
                blocks, cursor, is_present, limit, max_count
            )
            assert got == expected, (blocks, cursor, limit, max_count)


class TestMonotoneCursorRegression:
    """The pre-rewrite pointer walk answered backwards queries wrongly.

    The old ``next_use`` advanced a per-block pointer monotonically and
    never rewound it, so querying a smaller cursor after a larger one
    silently returned a too-late position instead of the correct one.
    ``_old_next_use`` below is that implementation, verbatim in miniature;
    the test documents the wrong answer it gives and asserts the rewritten
    index returns the right one.
    """

    @staticmethod
    def _old_next_use(positions, pointers, block, cursor, infinite):
        plist = positions.get(block)
        if plist is None:
            return infinite
        pointer = pointers.get(block, 0)
        while pointer < len(plist) and plist[pointer] < cursor:
            pointer += 1
        pointers[block] = pointer
        if pointer == len(plist):
            return infinite
        return plist[pointer]

    def test_old_code_returns_wrong_answer_backwards(self):
        positions = {7: [0, 1, 2]}
        pointers = {}
        # Forward query advances the pointer past positions 0 and 1...
        assert self._old_next_use(positions, pointers, 7, 2, None) == 2
        # ...so the backwards query returns 2 even though 0 is correct.
        assert self._old_next_use(positions, pointers, 7, 0, None) == 2

    def test_new_index_detects_regression_and_answers_exactly(self):
        index = NextRefIndex([7, 7, 7])
        assert index.next_use(7, 2) == 2
        assert index.next_use(7, 0) == 0  # old code said 2

    def test_interleaved_backwards_and_forwards(self):
        blocks = [3, 1, 3, 2, 3, 1, 3]
        index = NextRefIndex(blocks)
        for cursor in [5, 1, 6, 0, 4, 2, 3, 0, 6]:
            for block in [1, 2, 3, 9]:
                expected = next(
                    (
                        p
                        for p in range(cursor, len(blocks))
                        if blocks[p] == block
                    ),
                    index.never,
                )
                assert index.next_use(block, cursor) == expected

    def test_dead_pointer_attribute_is_gone(self):
        assert not hasattr(NextRefIndex([1]), "_last_cursor")

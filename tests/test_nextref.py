"""Next-reference index and the furthest-future eviction heap."""

import pytest

from repro.core.nextref import (
    INFINITE,
    EvictionHeap,
    NextRefIndex,
    first_missing_positions,
)


class TestNextRefIndex:
    def test_positions_collected_per_block(self):
        index = NextRefIndex([1, 2, 1, 3, 1])
        assert index.positions[1] == [0, 2, 4]
        assert index.positions[3] == [3]

    def test_next_use_at_cursor_zero(self):
        index = NextRefIndex([5, 6, 5])
        assert index.next_use(5, 0) == 0
        assert index.next_use(6, 0) == 1

    def test_next_use_advances_with_cursor(self):
        index = NextRefIndex([5, 6, 5])
        assert index.next_use(5, 1) == 2
        assert index.next_use(5, 3) is INFINITE

    def test_unknown_block_is_infinite(self):
        index = NextRefIndex([1, 2, 3])
        assert index.next_use(99, 0) is INFINITE

    def test_next_use_exactly_at_position(self):
        index = NextRefIndex([7, 8, 7])
        assert index.next_use(7, 2) == 2

    def test_cold_query_any_cursor_order(self):
        index = NextRefIndex([1, 2, 1, 2, 1])
        assert index.next_use_cold(1, 4) == 4
        assert index.next_use_cold(1, 0) == 0  # backwards is fine cold
        assert index.next_use_cold(2, 4) is INFINITE

    def test_distinct_blocks(self):
        index = NextRefIndex([1, 1, 2, 3, 3, 3])
        assert index.distinct_blocks == 3

    def test_len_is_reference_count(self):
        assert len(NextRefIndex([4, 4, 4])) == 3


class TestEvictionHeap:
    def _setup(self, blocks, resident):
        index = NextRefIndex(blocks)
        resident_set = set(resident)
        heap = EvictionHeap(index, resident_set)
        for block in resident_set:
            heap.push(block, 0)
        return index, resident_set, heap

    def test_picks_furthest_next_use(self):
        # refs: a=0, b=1, c=5; resident all -> victim is c (furthest).
        _, _, heap = self._setup([1, 2, 9, 9, 9, 3], resident=[1, 2, 3])
        assert heap.best_victim(0) == 3

    def test_never_referenced_again_is_best(self):
        _, _, heap = self._setup([1, 2, 3], resident=[1, 2, 7])
        assert heap.best_victim(0) == 7

    def test_stale_entries_revalidated_after_cursor_moves(self):
        blocks = [1, 2, 1, 2]
        index, resident, heap = self._setup(blocks, resident=[1, 2])
        # At cursor 0: next uses 1->0, 2->1, so 2 is victim.
        assert heap.best_victim(0) == 2
        # After consuming both once (cursor 2): 1->2, 2->3: still 2.
        heap.push(1, 2)
        heap.push(2, 2)
        assert heap.best_victim(2) == 2
        # At cursor 3, block 1 never again (INF), block 2 at 3 -> victim 1.
        heap.push(1, 3)
        heap.push(2, 3)
        assert heap.best_victim(3) == 1

    def test_evicted_blocks_skipped(self):
        _, resident, heap = self._setup([1, 2, 3], resident=[1, 2, 3])
        resident.discard(3)
        victim = heap.best_victim(0)
        assert victim in (1, 2)

    def test_exclude_does_not_lose_entries(self):
        _, _, heap = self._setup([1, 2, 3], resident=[1, 2, 3])
        first = heap.best_victim(0, exclude={3})
        assert first == 2
        # 3 must still be discoverable afterwards.
        assert heap.best_victim(0) == 3

    def test_empty_heap_returns_none(self):
        _, _, heap = self._setup([1], resident=[])
        assert heap.best_victim(0) is None


class TestFirstMissingPositions:
    def test_yields_missing_in_order(self):
        blocks = [1, 2, 3, 2, 4]
        present = {2}
        got = list(
            first_missing_positions(blocks, 0, lambda b: b in present, limit=10)
        )
        assert got == [0, 2, 4]

    def test_deduplicates_blocks(self):
        blocks = [7, 7, 7]
        got = list(first_missing_positions(blocks, 0, lambda b: False, limit=10))
        assert got == [0]

    def test_respects_limit(self):
        blocks = list(range(100))
        got = list(first_missing_positions(blocks, 0, lambda b: False, limit=5))
        assert got == [0, 1, 2, 3, 4]

    def test_max_count(self):
        blocks = list(range(100))
        got = list(
            first_missing_positions(
                blocks, 0, lambda b: False, limit=100, max_count=3
            )
        )
        assert len(got) == 3

    def test_starts_at_cursor(self):
        blocks = [1, 2, 3]
        got = list(first_missing_positions(blocks, 1, lambda b: False, limit=10))
        assert got == [1, 2]

"""The open-loop load generator (src/repro/loadgen.py): seeded plan
determinism, request mapping, and a short live run against the service.
"""

import asyncio
import json

import pytest

from repro.loadgen import (
    DEFAULT_MIX,
    Arrival,
    LoadgenConfig,
    _Report,
    _request_for,
    build_plan,
    run_loadgen,
)
from repro.svc import NetChaosSchedule, ServiceConfig, ServiceServer, \
    SimulationService
from repro.svc.service import cell_from_spec

from tests.test_runner import test_kinds  # noqa: F401


INSTANT_SPEC = {"trace": "ld", "policy": "demand", "disks": 1,
                "kind": "instant", "params": {"n": 7}}


class TestBuildPlan:
    def test_same_seed_same_plan_and_fingerprint(self):
        config = LoadgenConfig(rate_per_s=50.0, duration_s=2.0, seed=9)
        plan_a, print_a = build_plan(config)
        plan_b, print_b = build_plan(
            LoadgenConfig(rate_per_s=50.0, duration_s=2.0, seed=9)
        )
        assert plan_a == plan_b
        assert print_a == print_b

    def test_different_seed_different_fingerprint(self):
        base = dict(rate_per_s=50.0, duration_s=2.0)
        _, print_a = build_plan(LoadgenConfig(seed=1, **base))
        _, print_b = build_plan(LoadgenConfig(seed=2, **base))
        assert print_a != print_b

    def test_arrivals_respect_rate_and_duration(self):
        config = LoadgenConfig(rate_per_s=100.0, duration_s=3.0, seed=4)
        arrivals, _ = build_plan(config)
        assert all(0.0 < a.at_s < 3.0 for a in arrivals)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))
        # Open loop at rate R for D seconds: ~R*D arrivals.
        assert 200 <= len(arrivals) <= 400

    def test_mix_controls_the_kind_distribution(self):
        config = LoadgenConfig(rate_per_s=200.0, duration_s=2.0, seed=0,
                               mix={"cells": 1.0})
        arrivals, _ = build_plan(config)
        assert arrivals and all(a.kind == "cells" for a in arrivals)


class TestConfigValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            LoadgenConfig(rate_per_s=0.0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            LoadgenConfig(duration_s=-1.0)

    def test_unknown_mix_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mix kind"):
            LoadgenConfig(mix={"cells": 0.5, "teapots": 0.5})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            LoadgenConfig(mix={})

    def test_zero_weight_mix_rejected(self):
        with pytest.raises(ValueError, match="sum to > 0"):
            LoadgenConfig(mix={"cells": 0.0})

    def test_default_mix_is_valid(self):
        assert LoadgenConfig().mix == DEFAULT_MIX


class TestRequestMapping:
    def test_cells_is_a_post(self):
        config = LoadgenConfig(specs=[dict(INSTANT_SPEC)])
        method, path, body = _request_for(
            config, Arrival(0, 0.0, "cells", 0)
        )
        assert (method, path) == ("POST", "/v1/cells")
        assert json.loads(body) == INSTANT_SPEC

    def test_results_targets_the_spec_hash(self):
        config = LoadgenConfig(specs=[dict(INSTANT_SPEC)])
        method, path, body = _request_for(
            config, Arrival(0, 0.0, "results", 0)
        )
        expected = cell_from_spec(INSTANT_SPEC).config_hash
        assert (method, body) == ("GET", None)
        assert path == f"/v1/results/{expected}"

    def test_read_kinds_are_gets(self):
        config = LoadgenConfig()
        for kind, path in (("status", "/v1/status"),
                           ("metrics", "/v1/metrics"),
                           ("healthz", "/v1/healthz")):
            method, got, body = _request_for(
                config, Arrival(0, 0.0, kind, 0)
            )
            assert (method, got, body) == ("GET", path, None)


class TestReportLedger:
    def test_digest_ledger_collects_per_hash(self):
        report = _Report()
        payload = {"record": {"hash": "h1", "digest": "d1", "status": "ok"}}
        report.record("cells", 200, 5.0, {}, payload)
        report.record("cells", 200, 6.0, {}, payload)
        assert report.digests == {"h1": {"d1"}}

    def test_conflicting_digests_are_visible(self):
        report = _Report()
        report.record("cells", 200, 5.0, {},
                      {"record": {"hash": "h1", "digest": "d1"}})
        report.record("results", 200, 5.0, {},
                      {"record": {"hash": "h1", "digest": "d2"}})
        assert report.digests["h1"] == {"d1", "d2"}

    def test_retry_after_counted(self):
        report = _Report()
        report.record("cells", 429, 1.0, {"retry-after": "2"}, {})
        assert report.retry_after_present == 1
        assert report.status_counts == {"429": 1}


def loadgen_test(scenario, tmp_path, **config_kwargs):
    """Run ``scenario(service, port)`` with a live hardened server."""

    async def main():
        config = ServiceConfig(store_dir=str(tmp_path / "store"), jobs=1,
                               **config_kwargs)
        service = SimulationService(config)
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await scenario(service, server.bound_port)
        finally:
            await server.stop()
            await service.drain("signal")

    return asyncio.run(main())


class TestLiveRun:
    def test_run_produces_a_consistent_report(self, test_kinds, tmp_path):
        async def scenario(service, port):
            config = LoadgenConfig(
                port=port, rate_per_s=40.0, duration_s=1.0, seed=3,
                mix={"cells": 0.4, "results": 0.3, "healthz": 0.3},
                specs=[dict(INSTANT_SPEC)],
            )
            report = await run_loadgen(config)
            _, fingerprint = build_plan(config)
            assert report["plan"]["fingerprint"] == fingerprint
            assert report["plan"]["arrivals"] > 0
            total = sum(report["status_counts"].values())
            errors = sum(report["errors"].values())
            assert total + errors == report["plan"]["arrivals"]
            assert report["completed"] == report["plan"]["arrivals"]
            # Instant cells all succeed; every digest agrees.
            assert report["digest_conflicts"] == []
            assert report["status_counts"].get("200", 0) > 0
            for kind, summary in report["latency_ms"].items():
                assert summary["p50_ms"] <= summary["p99_ms"] <= \
                    summary["max_ms"]
            return report

        loadgen_test(scenario, tmp_path)

    def test_client_side_chaos_drops_are_deterministic(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            chaos = NetChaosSchedule(seed=5, drop_fraction=1.0)
            config = LoadgenConfig(
                port=port, rate_per_s=30.0, duration_s=0.5, seed=1,
                mix={"healthz": 1.0}, chaos=chaos,
            )
            report = await run_loadgen(config)
            # Every planned connection was dropped client-side; the
            # server never saw a request.
            assert report["chaos_dropped"] == report["plan"]["arrivals"]
            assert report["status_counts"] == {}
            assert report["plan"]["chaos"]["drop_fraction"] == 1.0
            return report

        loadgen_test(scenario, tmp_path)

    def test_shed_statuses_surface_in_the_report(self, test_kinds, tmp_path):
        async def scenario(service, port):
            config = LoadgenConfig(
                port=port, rate_per_s=60.0, duration_s=1.0, seed=2,
                mix={"cells": 1.0}, specs=[dict(INSTANT_SPEC)],
            )
            report = await run_loadgen(config)
            # burst=1 and no refill to speak of: nearly every compute
            # request after the first is rate-limited with 429.
            assert report["shed"].get("429", 0) > 0
            assert report["retry_after_present"] > 0
            assert report["digest_conflicts"] == []
            return report

        loadgen_test(scenario, tmp_path, rate_limit_per_s=0.001,
                     rate_limit_burst=1)

"""repro.obs: the observability layer.

Four guarantees under test:

1. **Read-only** — every golden-digest cell produces a bit-identical
   result with an :class:`~repro.obs.Observer` attached.
2. **Zero overhead when off** — an unobserved simulator carries no
   instance-level shadows of the instrumented methods.
3. **Exact stall attribution** — per-cause stall times sum back to
   ``stall_ms`` with residual below ``1e-6`` ms (relative) on every
   policy × trace × discipline cell, healthy or faulted.
4. **Faithful export** — the Chrome ``trace_event`` timeline re-parses to
   the same busy time, utilization, and event counts the simulation
   reported (mirroring ``bench_table4_utilization``'s inputs).
"""

import json
import math

import pytest

import repro
from repro.analysis.experiments import ExperimentSetting, run_one
from repro.analysis.tables import format_stall_table, format_utilization_table
from repro.core import SimConfig, Simulator, make_policy
from repro.faults import DiskFailure, FaultSchedule
from repro.obs import (
    Observer,
    STALL_CAUSES,
    chrome_trace,
    iter_jsonl_rows,
    render_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs import events as ev
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, occupancy_buckets
from repro.trace import build as build_workload, cache_blocks_for

from tests.conftest import make_trace, simple_config
from tests.test_golden_results import CELLS, EXPECTED, cell_id, run_cell

FIVE_POLICIES = (
    "demand", "fixed-horizon", "aggressive", "reverse-aggressive", "forestall"
)


def observed_run(trace_name, policy, disks, scale=0.2, observer=None, **over):
    """One observed simulation at test scale; returns (result, observer)."""
    if observer is None:
        observer = Observer()
    result = run_one(
        ExperimentSetting(scale=scale), trace_name, policy, disks,
        config_overrides=over or None, observer=observer,
    )
    return result, observer


# -- guarantee 1: observed runs are bit-identical ---------------------------------------


class TestGoldenWithObserver:
    @pytest.mark.parametrize("cell", CELLS, ids=cell_id)
    def test_digest_unchanged_with_observer(self, cell):
        assert run_cell(cell, observer=Observer()) == EXPECTED[cell_id(cell)]


# -- guarantee 2: zero overhead when off ------------------------------------------------

#: Methods the observer shadows on the simulator instance.
SHADOWED_SIM = (
    "_app_step", "_wake_app", "_disk_complete", "_fault_complete",
    "_retry_fetch", "_abandon_fetch", "issue_fetch", "write_allocate",
    "_build_result",
)
SHADOWED_ARRAY = ("submit", "start_next")
SHADOWED_POLICY = ("before_reference", "on_disk_idle", "on_miss", "on_evict")


class TestZeroOverhead:
    def test_unobserved_simulator_has_no_shadows(self):
        trace = make_trace([0, 1, 2, 3] * 4)
        sim = Simulator(trace, make_policy("demand"), 1, simple_config())
        sim.run()
        for name in SHADOWED_SIM:
            assert name not in sim.__dict__, name
        for name in SHADOWED_ARRAY:
            assert name not in sim.array.__dict__, name
        for name in SHADOWED_POLICY:
            assert name not in sim.policy.__dict__, name

    def test_observed_simulator_has_all_shadows(self):
        trace = make_trace([0, 1, 2, 3] * 4)
        sim = Simulator(trace, make_policy("demand"), 1, simple_config(),
                        observer=Observer())
        for name in SHADOWED_SIM:
            assert name in sim.__dict__, name
        for name in SHADOWED_ARRAY:
            assert name in sim.array.__dict__, name
        for name in SHADOWED_POLICY:
            assert name in sim.policy.__dict__, name

    def test_observer_attaches_exactly_once(self):
        observer = Observer()
        trace = make_trace([0, 1, 2, 3])
        Simulator(trace, make_policy("demand"), 1, simple_config(),
                  observer=observer)
        with pytest.raises(RuntimeError, match="exactly one"):
            Simulator(trace, make_policy("demand"), 1, simple_config(),
                      observer=observer)


# -- guarantee 3: stall attribution is exact --------------------------------------------


def assert_attribution_exact(result, observer):
    breakdown = result.stall_breakdown
    assert set(breakdown) == set(STALL_CAUSES)
    assert all(ms >= 0.0 for ms in breakdown.values())
    residual = abs(result.stall_ms - math.fsum(breakdown.values()))
    assert residual <= 1e-6 * max(1.0, result.stall_ms)
    # Episode records tell the same story as the per-cause totals.
    by_episode = {cause: 0.0 for cause in STALL_CAUSES}
    for episode in observer.stall_episodes:
        by_episode[episode.cause] += episode.duration_ms
    for cause in STALL_CAUSES:
        assert by_episode[cause] == pytest.approx(breakdown[cause], abs=1e-9)


class TestStallAttribution:
    @pytest.mark.parametrize("policy", FIVE_POLICIES)
    @pytest.mark.parametrize("trace_name", ("ld", "cscope1"))
    @pytest.mark.parametrize("discipline", ("cscan", "fcfs"))
    def test_residual_vanishes_on_grid(self, policy, trace_name, discipline):
        result, observer = observed_run(
            trace_name, policy, 2, discipline=discipline
        )
        assert_attribution_exact(result, observer)
        # Healthy hardware: the fault buckets stay empty.
        assert result.stall_breakdown[ev.CAUSE_FAULT_RETRY] == 0.0
        assert result.stall_breakdown[ev.CAUSE_FAILOVER] == 0.0

    def test_demand_policy_stalls_are_demand_misses(self):
        result, observer = observed_run("ld", "demand", 2)
        assert_attribution_exact(result, observer)
        breakdown = result.stall_breakdown
        assert breakdown[ev.CAUSE_DEMAND_MISS] == pytest.approx(
            result.stall_ms, rel=1e-9
        )
        assert breakdown[ev.CAUSE_PREFETCH_TOO_LATE] == 0.0

    def test_prefetchers_stall_on_late_prefetches(self):
        result, observer = observed_run("ld", "forestall", 2)
        assert_attribution_exact(result, observer)
        breakdown = result.stall_breakdown
        if result.stall_ms > 0:
            assert breakdown[ev.CAUSE_PREFETCH_TOO_LATE] > 0.0

    def test_transient_errors_attribute_to_fault_retry(self):
        faults = FaultSchedule(read_error_rate=0.05, seed=7)
        result, observer = observed_run("ld", "forestall", 2, faults=faults)
        assert_attribution_exact(result, observer)
        assert result.faults_injected > 0
        assert result.stall_breakdown[ev.CAUSE_FAULT_RETRY] > 0.0

    def test_mirrored_disk_death_attributes_failover(self):
        faults = FaultSchedule(disk_failures=(DiskFailure(disk=0, at_ms=500.0),))
        result, observer = observed_run(
            "ld", "aggressive", 4, faults=faults, mirrored=True
        )
        assert_attribution_exact(result, observer)
        assert result.failover_reads + result.extras.get("failover_writes", 0) > 0
        assert observer.metrics.counter("fetch.failovers").value > 0

    def test_episode_records_are_well_formed(self):
        result, observer = observed_run("ld", "fixed-horizon", 2)
        assert len(observer.stall_episodes) == observer.metrics.counter(
            "stall.episodes"
        ).value
        for episode in observer.stall_episodes:
            assert episode.cause in STALL_CAUSES
            assert episode.duration_ms >= 0.0
            assert episode.end_ms >= episode.start_ms
        worst = observer.worst_stalls(3)
        assert len(worst) == min(3, len(observer.stall_episodes))
        assert worst == sorted(
            worst, key=lambda r: (-r.duration_ms, r.start_ms)
        )

    def test_unobserved_result_has_empty_breakdown(self):
        result = run_one(ExperimentSetting(scale=0.2), "ld", "demand", 2)
        assert result.stall_breakdown == {}


# -- counters and result cross-checks ---------------------------------------------------


class TestCountersMatchResult:
    def test_counters_agree_with_result(self):
        result, observer = observed_run("ld", "forestall", 2)
        counters = observer.metrics.counters
        assert counters["app.references"].value == result.references
        assert (
            counters["app.hits"].value + counters["app.misses"].value
            == result.references - counters["app.unreadable"].value
        )
        assert (
            counters["fetch.issued.demand"].value
            + counters["fetch.issued.prefetch"].value
            == result.fetches
        )
        assert counters["fetch.completed"].value == result.fetches

    def test_busy_time_matches_result_bit_for_bit(self):
        result, observer = observed_run("cscope1", "aggressive", 4)
        for disk, busy in enumerate(observer.busy_ms_per_disk):
            assert min(busy, result.elapsed_ms) == result.per_disk_busy_ms[disk]

    def test_utilization_gauges_match_result(self):
        result, observer = observed_run("ld", "aggressive", 2)
        gauges = observer.metrics.gauges
        mean = sum(
            gauges[f"disk.utilization.d{d}"].value for d in range(2)
        ) / 2.0
        assert mean == pytest.approx(result.disk_utilization, rel=1e-12)


# -- guarantee 4: exports round-trip ----------------------------------------------------

#: Inputs mirrored from benchmarks/bench_table4_utilization.py.
TABLE4_TRACE = "postgres-select"
TABLE4_POLICIES = ("demand", "fixed-horizon", "aggressive", "reverse-aggressive")


class TestChromeTraceRoundTrip:
    @pytest.mark.parametrize("policy", TABLE4_POLICIES)
    def test_busy_spans_reproduce_table4_utilization(self, policy, tmp_path):
        disks = 4
        observer = Observer()
        result = run_one(
            ExperimentSetting(scale=0.25), TABLE4_TRACE, policy, disks,
            observer=observer,
        )
        path = tmp_path / f"{policy}.trace.json"
        write_chrome_trace(observer, str(path))
        document = json.loads(path.read_text())

        rows = document["traceEvents"]
        data_rows = [r for r in rows if r["ph"] != "M"]
        # Event count: every exported row maps to a recorded event kind.
        expected = sum(
            1 for e in observer.events
            if e.kind in (ev.DISK_BUSY, ev.STALL_END, ev.CACHE_OCCUPANCY,
                          ev.QUEUE_DEPTH)
        )
        assert len(data_rows) == expected

        # Per-track timestamps are monotone (sorted export).
        by_track = {}
        for row in data_rows:
            by_track.setdefault((row["pid"], row["tid"]), []).append(row["ts"])
        for stamps in by_track.values():
            assert stamps == sorted(stamps)

        # Summing the exact-ms busy spans per disk track reproduces the
        # simulation's per-disk busy time and hence Table 4's utilization.
        busy = [0.0] * disks
        for row in data_rows:
            if row.get("cat") == ev.DISK_BUSY:
                busy[row["tid"] - 1] += row["args"]["service_ms"]
        elapsed = document["otherData"]["elapsed_ms"]
        assert elapsed == result.elapsed_ms
        for disk in range(disks):
            assert min(busy[disk], elapsed) == result.per_disk_busy_ms[disk]
        utilization = sum(min(b, elapsed) for b in busy) / (disks * elapsed)
        assert utilization == pytest.approx(result.disk_utilization, rel=1e-12)

        # The stall breakdown rides along in the metadata, still exact.
        breakdown = document["otherData"]["stall_breakdown_ms"]
        assert math.fsum(breakdown.values()) == pytest.approx(
            result.stall_ms, abs=1e-6 * max(1.0, result.stall_ms)
        )

    def test_metadata_names_all_tracks(self):
        _result, observer = observed_run("ld", "forestall", 2)
        document = chrome_trace(observer)
        names = [
            r["args"]["name"] for r in document["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        assert names == ["application", "disk 0", "disk 1"]

    def test_full_export_includes_reference_instants(self):
        _result, observer = observed_run("ld", "demand", 1)
        lean = chrome_trace(observer)["traceEvents"]
        full = chrome_trace(observer, full=True)["traceEvents"]
        assert len(full) > len(lean)
        assert any(r.get("name") == ev.REF_HIT for r in full)
        assert not any(r.get("name") == ev.REF_HIT for r in lean)

    def test_stamp_adds_capture_time_only_when_asked(self):
        _result, observer = observed_run("ld", "demand", 1)
        assert "captured_unix_s" not in chrome_trace(observer)["otherData"]
        stamped = chrome_trace(observer, stamp=True)["otherData"]
        assert stamped["captured_unix_s"] > 0


class TestJsonlExport:
    def test_rows_parse_and_cover_everything(self, tmp_path):
        result, observer = observed_run("ld", "forestall", 2)
        path = tmp_path / "run.jsonl"
        write_jsonl(observer, str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        assert rows[0]["events"] == len(observer.events)
        by_type = {}
        for row in rows:
            by_type.setdefault(row["type"], []).append(row)
        assert len(by_type["event"]) == len(observer.events)
        assert len(by_type["counter"]) == len(observer.metrics.counters)
        assert len(by_type["histogram"]) == len(observer.metrics.histograms)
        assert by_type["result"][0]["stall_ms"] == result.stall_ms
        assert math.fsum(
            by_type["stall_breakdown"][0]["stall_breakdown_ms"].values()
        ) == pytest.approx(result.stall_ms, abs=1e-6 * max(1.0, result.stall_ms))

    def test_iter_rows_matches_file(self, tmp_path):
        _result, observer = observed_run("ld", "demand", 1)
        rows = list(iter_jsonl_rows(observer))
        path = tmp_path / "run.jsonl"
        write_jsonl(observer, str(path))
        assert len(path.read_text().splitlines()) == len(rows)


# -- events -----------------------------------------------------------------------------


class TestEvents:
    def test_as_dict_omits_sentinel_fields(self):
        event = ev.Event(1.5, ev.REF_HIT, block=7)
        row = event.as_dict()
        assert row == {"t_ms": 1.5, "kind": ev.REF_HIT, "block": 7}

    def test_as_dict_keeps_set_fields(self):
        event = ev.Event(2.0, ev.STALL_END, block=3, dur_ms=4.5, cursor=9,
                         cause=ev.CAUSE_DEMAND_MISS)
        row = event.as_dict()
        assert row["dur_ms"] == 4.5
        assert row["cause"] == ev.CAUSE_DEMAND_MISS

    def test_all_emitted_kinds_are_vocabulary(self):
        _result, observer = observed_run("ld", "forestall", 2)
        assert {e.kind for e in observer.events} <= ev.KINDS

    def test_stall_causes_are_closed_vocabulary(self):
        assert set(STALL_CAUSES) == {
            ev.CAUSE_ALL_DISKS_BUSY, ev.CAUSE_PREFETCH_TOO_LATE,
            ev.CAUSE_DEMAND_MISS, ev.CAUSE_FAULT_RETRY, ev.CAUSE_FAILOVER,
        }


# -- metrics ----------------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("g")
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert (gauge.value, gauge.min, gauge.max, gauge.samples) == (
            7.0, -1.0, 7.0, 3
        )

    def test_histogram_bounds_are_inclusive(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 2.0, 4.0, 4.0001):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.overflow == 1
        assert hist.count == 5

    def test_histogram_accepts_infinite_observations(self):
        hist = Histogram("h", (1.0,))
        hist.observe(float("inf"))
        assert hist.overflow == 1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))

    def test_occupancy_buckets_end_at_capacity(self):
        bounds = occupancy_buckets(384)
        assert bounds[-1] == 384.0
        assert bounds == sorted(bounds)
        # A full cache lands in the last bucket, not overflow.
        hist = Histogram("occ", bounds)
        hist.observe(384.0)
        assert hist.overflow == 0

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1.0,)) is registry.histogram("h")
        with pytest.raises(ValueError, match="bounds required"):
            registry.histogram("missing")

    def test_registry_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", (1.0,)).observe(0.5)
        payload = registry.to_dict()
        assert payload["counters"] == {"a": 1}
        assert payload["gauges"]["g"]["value"] == 2.0
        assert payload["histograms"]["h"]["count"] == 1


# -- report and tables ------------------------------------------------------------------


class TestReport:
    def test_report_renders_all_sections(self):
        _result, observer = observed_run("ld", "forestall", 2)
        report = render_report(observer, top=3)
        for needle in (
            "stall attribution:", "disk utilization:", "counters (non-zero):",
            "histograms:", "stall episodes:",
        ):
            assert needle in report
        assert "prefetch-too-late" in report

    def test_report_requires_a_completed_run(self):
        with pytest.raises(ValueError, match="finished run"):
            render_report(Observer())

    def test_stall_table_without_observer_says_so(self):
        result = run_one(ExperimentSetting(scale=0.2), "ld", "demand", 1)
        assert "without an observer" in format_stall_table(result)

    def test_utilization_table_rows(self):
        result, _observer = observed_run("ld", "aggressive", 2)
        table = format_utilization_table(result)
        assert "disk 0" in table and "disk 1" in table and "mean" in table


# -- public API wiring ------------------------------------------------------------------


class TestPublicApi:
    def test_run_simulation_accepts_observer(self):
        trace = build_workload("ld", scale=0.2)
        observer = Observer()
        result = repro.run_simulation(
            trace, policy="forestall", num_disks=2,
            cache_blocks=cache_blocks_for("ld", 0.2), observer=observer,
        )
        assert observer.result is result
        assert result.stall_breakdown
        assert_attribution_exact(result, observer)

    def test_observer_exported_from_repro_obs(self):
        import repro.obs as obs

        for name in (
            "Observer", "MetricsRegistry", "Event", "STALL_CAUSES",
            "chrome_trace", "write_chrome_trace", "write_jsonl",
            "iter_jsonl_rows", "render_report", "StallRecord",
        ):
            assert hasattr(obs, name), name

    def test_observer_to_dict_is_json_ready(self):
        _result, observer = observed_run("ld", "demand", 1)
        payload = observer.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["events"] == len(observer.events)
        assert payload["result"]["stall_ms"] == observer.result.stall_ms

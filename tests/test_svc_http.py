"""The service's HTTP front end, driven over real sockets.

Each test starts a :class:`ServiceServer` on an ephemeral port inside one
event loop and speaks raw HTTP/1.1 through ``asyncio.open_connection`` —
the same framing any external client uses, so header casing, status
lines, Content-Length bodies, and the chunked event stream are all
exercised for real.
"""

import asyncio
import json

from repro.svc import ServiceConfig, ServiceServer, SimulationService

from tests.test_runner import kind_cell, test_kinds  # noqa: F401


async def fetch(port, method, path, body=None, timeout_s=30.0,
                extra_headers=None):
    """One HTTP exchange: ``(status, headers, body)``.

    The body is parsed JSON for ``application/json`` responses (the
    default everywhere) and the decoded text otherwise (the Prometheus
    exposition of ``/v1/metrics``).
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    request_headers = f"Content-Length: {len(payload)}\r\n"
    for name, value in (extra_headers or {}).items():
        request_headers += f"{name}: {value}\r\n"
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"{request_headers}\r\n"
    ).encode() + payload
    writer.write(request)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout_s)
    writer.close()
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if not body_bytes.strip():
        parsed = None
    elif headers.get("content-type", "").startswith("application/json"):
        parsed = json.loads(body_bytes)
    else:
        parsed = body_bytes.decode()
    return status, headers, parsed


def http_test(scenario, **config_kwargs):
    """Run ``scenario(service, port)`` against a live server in tmp dirs
    supplied by the caller via config_kwargs["store_dir"]."""

    async def main():
        config = ServiceConfig(**config_kwargs)
        service = SimulationService(config)
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await scenario(service, server.bound_port)
        finally:
            await server.stop()
            await service.drain("signal")

    return asyncio.run(main())


SPEC = {"trace": "ld", "policy": "demand", "disks": 1, "scale": 0.05}


class TestHttpSurface:
    def test_healthz_metrics_status_store(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(port, "GET", "/v1/healthz")
            assert status == 200 and payload["ok"] is True
            status, _, payload = await fetch(port, "GET", "/v1/status")
            assert status == 200
            assert payload["breaker"]["state"] == "closed"
            status, _, payload = await fetch(port, "GET", "/v1/metrics")
            assert status == 200 and "counters" in payload
            status, _, payload = await fetch(port, "GET", "/v1/store")
            assert status == 200 and payload["resident"] == 0

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_post_cell_compute_then_store_hit(self, test_kinds, tmp_path):
        async def scenario(service, port):
            cell = kind_cell("instant", n=5)
            spec = {"trace": cell.trace, "policy": cell.policy,
                    "disks": cell.disks, "kind": "instant",
                    "params": {"n": 5}}
            status, _, first = await fetch(port, "POST", "/v1/cells", spec)
            assert status == 200
            assert first["served"] == "computed"
            assert first["record"]["digest"] == "digest-5"
            status, _, second = await fetch(port, "POST", "/v1/cells", spec)
            assert status == 200
            assert second["served"] == "store"
            # Served bytes are identical either way.
            assert second["record"] == first["record"]
            status, _, got = await fetch(
                port, "GET", "/v1/results/" + first["record"]["hash"]
            )
            assert status == 200 and got["record"] == first["record"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_results_miss_is_404_and_never_computes(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(port, "GET", "/v1/results/feed")
            assert status == 404 and "error" in payload
            assert service.pool.counters["dispatched"] == 0

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_bad_specs_and_bad_requests_are_400(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(
                port, "POST", "/v1/cells", dict(SPEC, trace="nope")
            )
            assert status == 400 and "unknown trace" in payload["error"]
            status, _, payload = await fetch(port, "POST", "/v1/cells")
            assert status == 400 and "JSON body" in payload["error"]
            # Raw garbage body.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /v1/cells HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 3\r\n\r\n{{{"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_unknown_path_404_wrong_method_405(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, _ = await fetch(port, "GET", "/v2/nope")
            assert status == 404
            status, _, _ = await fetch(port, "POST", "/v1/healthz")
            assert status == 405
            status, _, _ = await fetch(port, "GET", "/v1/cells")
            assert status == 405

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_failure_record_maps_to_500(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(
                port, "POST", "/v1/cells",
                {"trace": "ld", "policy": "demand", "disks": 1,
                 "kind": "always-fail"},
            )
            assert status == 500
            assert payload["record"]["failure"] == "exception"
            assert "injected deterministic failure" in (
                payload["record"]["error"]["message"]
            )

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_queue_full_is_429_with_retry_after(self, test_kinds, tmp_path):
        async def scenario(service, port):
            slow = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "sleep", "params": {"sleep_s": 0.6}}
            task = asyncio.ensure_future(
                fetch(port, "POST", "/v1/cells", slow)
            )
            await asyncio.sleep(0.1)
            status, headers, payload = await fetch(
                port, "POST", "/v1/cells", dict(slow, params={"sleep_s": 0.7})
            )
            assert status == 429
            assert "admission queue full" in payload["error"]
            assert int(headers["retry-after"]) >= 1
            status, _, first = await task
            assert status == 200 and first["record"]["status"] == "ok"

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1,
                  queue_limit=1)

    def test_request_timeout_is_504(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(
                port, "POST", "/v1/cells",
                {"trace": "ld", "policy": "demand", "disks": 1,
                 "kind": "sleep", "params": {"sleep_s": 60.0}},
            )
            assert status == 504
            assert "timed out" in payload["error"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1,
                  request_timeout_s=0.3)

    def test_sweep_bundle_reports_hit_ratio(self, test_kinds, tmp_path):
        async def scenario(service, port):
            specs = [
                {"trace": "ld", "policy": "demand", "disks": 1,
                 "kind": "instant", "params": {"n": n}}
                for n in (1, 2)
            ]
            status, _, first = await fetch(
                port, "POST", "/v1/sweeps", {"cells": specs}
            )
            assert status == 200
            assert first["counts"]["computed"] == 2
            # The identical sweep again: pure store hits, zero new work.
            dispatched = service.pool.counters["dispatched"]
            status, _, again = await fetch(
                port, "POST", "/v1/sweeps", {"cells": specs}
            )
            assert status == 200
            assert again["counts"]["store"] == 2
            assert again["counts"]["computed"] == 0
            assert service.pool.counters["dispatched"] == dispatched
            by_hash = {c["hash"]: c for c in again["cells"]}
            for entry in first["cells"]:
                assert by_hash[entry["hash"]]["digest"] == entry["digest"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=2)

    def test_sweep_body_validation(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, _ = await fetch(port, "POST", "/v1/sweeps", {})
            assert status == 400
            status, _, _ = await fetch(
                port, "POST", "/v1/sweeps", {"cells": []}
            )
            assert status == 400

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_event_stream_carries_progress(self, test_kinds, tmp_path):
        async def scenario(service, port):
            spec = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "instant", "params": {"n": 3}}
            status, _, _ = await fetch(port, "POST", "/v1/cells", spec)
            assert status == 200
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /v1/events?since=0 HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(
                reader.readuntil(b'"served": "computed"'), 10
            )
            writer.close()
            assert b"Transfer-Encoding: chunked" in raw
            assert b'"type": "record"' in raw
            assert b'"status": "ok"' in raw

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_healthz_503_when_draining(self, test_kinds, tmp_path):
        async def scenario(service, port):
            service.draining = True
            status, _, payload = await fetch(port, "GET", "/v1/healthz")
            assert status == 503 and payload["draining"] is True
            status, _, _ = await fetch(port, "POST", "/v1/cells", SPEC)
            assert status == 503

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)


class TestServeForever:
    def test_deadline_drains_with_exit_76(self, test_kinds, tmp_path):
        from repro.svc import serve_async

        async def main():
            config = ServiceConfig(store_dir=str(tmp_path / "store"), jobs=1)
            return await serve_async(
                config, host="127.0.0.1", port=0, deadline_s=0.3
            )

        assert asyncio.run(main()) == 76


class TestTelemetryHttp:
    """ISSUE 9's HTTP surface: content-negotiated metrics, correlation
    headers, the merged trace endpoint, and exclusive event resumption."""

    def test_metrics_json_default_preserved(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, headers, payload = await fetch(port, "GET", "/v1/metrics")
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            assert isinstance(payload, dict) and "counters" in payload

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_metrics_negotiates_prometheus_text(self, test_kinds, tmp_path):
        from repro.obs import validate_exposition

        async def scenario(service, port):
            spec = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "instant", "params": {"n": 8}}
            status, _, _ = await fetch(port, "POST", "/v1/cells", spec)
            assert status == 200
            for how in (
                {"extra_headers": {"Accept": "text/plain"}},
                {"extra_headers": {
                    "Accept": "application/openmetrics-text"}},
            ):
                status, headers, text = await fetch(
                    port, "GET", "/v1/metrics", **how
                )
                assert status == 200
                assert headers["content-type"].startswith(
                    "text/plain; version=0.0.4"
                )
                assert isinstance(text, str)
                assert validate_exposition(text) == []
                assert "repro_svc_requests_total 1" in text
            # The query parameter wins regardless of Accept.
            status, headers, text = await fetch(
                port, "GET", "/v1/metrics?format=prometheus"
            )
            assert status == 200 and isinstance(text, str)
            assert validate_exposition(text) == []
            # Scrape-time gauges are refreshed on every export.
            assert "repro_svc_store_hit_ratio 0" in text
            status, _, payload = await fetch(
                port, "GET", "/v1/metrics?format=json",
                extra_headers={"Accept": "text/plain"},
            )
            assert status == 200 and isinstance(payload, dict)

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_every_response_carries_a_correlation_id(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            _, first_headers, _ = await fetch(port, "GET", "/v1/healthz")
            _, second_headers, _ = await fetch(port, "GET", "/v1/status")
            first = first_headers["x-correlation-id"]
            second = second_headers["x-correlation-id"]
            assert first and second and first != second
            # Errors carry one too.
            status, headers, _ = await fetch(port, "GET", "/v1/nope")
            assert status == 404 and headers["x-correlation-id"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_trace_endpoint_404_when_tracing_off(self, test_kinds, tmp_path):
        async def scenario(service, port):
            status, _, payload = await fetch(port, "GET", "/v1/trace")
            assert status == 404 and "--trace" in payload["error"]

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

    def test_trace_endpoint_serves_the_merged_document(
            self, test_kinds, tmp_path):
        async def scenario(service, port):
            spec = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "instant", "params": {"n": 6}}
            status, headers, payload = await fetch(
                port, "POST", "/v1/cells", spec
            )
            assert status == 200
            corr_id = headers["x-correlation-id"]
            status, _, doc = await fetch(port, "GET", "/v1/trace")
            assert status == 200
            events = doc["traceEvents"]
            svc_names = {
                row["name"] for row in events if row.get("cat") == "svc"
            }
            assert "http.parse" in svc_names
            assert "worker.execute" in svc_names
            # The computed request's spans are linked by the same ID the
            # response header reported.
            assert any(
                row.get("args", {}).get("corr_id") == corr_id
                for row in events if row.get("cat") == "svc"
            )
            assert doc["otherData"]["source"] == "repro.obs.svc"
            assert "captured_unix_s" in doc["otherData"]

        http_test(
            scenario, store_dir=str(tmp_path / "store"), jobs=1, trace=True
        )

    def test_events_since_is_exclusive_over_http(self, test_kinds, tmp_path):
        async def scenario(service, port):
            spec = {"trace": "ld", "policy": "demand", "disks": 1,
                    "kind": "instant", "params": {"n": 4}}
            status, _, _ = await fetch(port, "POST", "/v1/cells", spec)
            assert status == 200
            last_seq = (await service.events_since(0))[-1]["seq"]
            # Draining ends the stream once the buffer is exhausted, so
            # the whole chunked body can be read to EOF.
            service.draining = True

            async def read_stream(since):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET /v1/events?since={since} HTTP/1.1\r\n"
                    "Host: t\r\n\r\n".encode()
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), 10)
                writer.close()
                body = raw.partition(b"\r\n\r\n")[2]
                events = []
                for line in body.split(b"\r\n"):
                    if line.startswith(b"{"):
                        events.append(json.loads(line))
                return events

            # Resuming from the last seq seen replays nothing ...
            assert await read_stream(last_seq) == []
            # ... and from one before it replays exactly the last event.
            tail = await read_stream(last_seq - 1)
            assert [event["seq"] for event in tail] == [last_seq]
            # Every replayed event names its originating request.
            full = await read_stream(0)
            assert [e["seq"] for e in full] == list(
                range(1, last_seq + 1)
            )
            typed = [e for e in full
                     if e["type"] in ("queued", "record", "request")]
            assert typed and all("corr_id" in event for event in typed)

        http_test(scenario, store_dir=str(tmp_path / "store"), jobs=1)

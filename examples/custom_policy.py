#!/usr/bin/env python3
"""Write your own prefetching/caching policy against the public API.

Implements *sequential readahead* — the classic file-system heuristic the
paper's related-work section contrasts with hint-based prefetching: on
every fetch, also prefetch the next N blocks of the same file, evicting by
the optimal rule.  Pitting it against the hint-based algorithms on two
workloads shows why hints matter: readahead shines on purely sequential
traces and collapses on index-driven ones.

Run:  python examples/custom_policy.py
"""

import repro
from repro.core.nextref import INFINITE
from repro.core.policy import PrefetchPolicy


class SequentialReadahead(PrefetchPolicy):
    """Demand fetching plus N-block same-file readahead (no hints used)."""

    def __init__(self, depth: int = 8):
        super().__init__()
        self.depth = depth

    @property
    def name(self) -> str:
        return f"readahead({self.depth})"

    def on_miss(self, cursor: int, now: float) -> None:
        block = self.sim.blocks[cursor]
        self._fetch(block, cursor)
        for successor in range(block + 1, block + 1 + self.depth):
            if not self._same_file(block, successor):
                break
            if self.sim.cache.present_or_coming(successor):
                continue
            if not self._fetch(successor, cursor):
                break

    def _same_file(self, block: int, successor: int) -> bool:
        files = self.sim.trace.files or {}
        if block not in files or successor not in files:
            return successor in self.sim.index.positions
        return files[block][0] == files[successor][0]

    def _fetch(self, block: int, cursor: int) -> bool:
        if block not in self.sim.index.positions:
            return False  # never referenced; don't pollute the cache
        victim = self.choose_victim(cursor)
        next_use = self.sim.index.next_use(block, cursor)
        if victim is not None:
            victim_use = self.sim.index.next_use(victim, cursor)
            if victim_use is not INFINITE and next_use is not INFINITE \
                    and victim_use <= next_use:
                return False  # do no harm
        self.issue(block, victim)
        return True


def main() -> None:
    for trace_name in ("dinero", "postgres-select"):
        trace = repro.build_workload(trace_name)
        print(f"\n{trace.name} ({trace.description}):")
        for policy in (
            SequentialReadahead(depth=8),
            "fixed-horizon",
            "forestall",
        ):
            result = repro.run_simulation(trace, policy=policy, num_disks=2)
            print(f"  {result.policy_name:<18} elapsed {result.elapsed_s:>8.2f}s "
                  f"stall {result.stall_s:>7.2f}s fetches {result.fetches}")
    print("\nHeuristic readahead keeps up on the sequential trace and falls")
    print("behind once accesses are index-driven — the paper's case for")
    print("application hints in one table.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one workload under every algorithm.

Builds the paper's `ld` trace (the Ultrix link-editor), runs it through
demand fetching and the four prefetching/caching algorithms on a 4-disk
array, and prints the elapsed-time breakdown the paper's figures use.

Run:  python examples/quickstart.py [trace-name] [num-disks]
"""

import sys

import repro


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "ld"
    num_disks = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    trace = repro.build_workload(trace_name)
    print(f"trace {trace.name}: {trace.reads} reads over "
          f"{trace.distinct_blocks} distinct blocks, "
          f"{trace.compute_time_s:.1f}s of compute\n")

    print(f"{'policy':<20} {'elapsed':>9} {'compute':>9} "
          f"{'driver':>8} {'stall':>8} {'fetches':>8} {'util':>6}")
    for policy in ("demand", "fixed-horizon", "aggressive",
                   "reverse-aggressive", "forestall"):
        result = repro.run_simulation(trace, policy=policy,
                                      num_disks=num_disks)
        print(f"{result.policy_name:<20} {result.elapsed_s:>8.2f}s "
              f"{result.compute_s:>8.2f}s {result.driver_s:>7.2f}s "
              f"{result.stall_s:>7.2f}s {result.fetches:>8} "
              f"{result.disk_utilization:>6.2f}")

    print("\nReading the table: elapsed == compute + driver + stall.")
    print("Prefetchers trade extra fetches (driver time) for stall time;")
    print("which side wins depends on how I/O-bound the workload is.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bring your own workload: build a Trace from scratch and evaluate it.

Models a small media server: one large video file streamed sequentially
while a metadata index is consulted every few frames — a hint-friendly
pattern the paper's motivation section calls out (multimedia servers).
Demonstrates the BlockSpace / Trace construction API and a cache-size
sensitivity sweep.

Run:  python examples/custom_workload.py
"""

import random

import repro
from repro.trace import Trace
from repro.trace.synthetic import BlockSpace, exponential_gaps


def build_media_trace(frames: int = 4000, seed: int = 11) -> Trace:
    rng = random.Random(seed)
    space = BlockSpace()
    video = space.new_file(frames)       # streamed once, sequentially
    index = space.new_file(32)           # hot metadata blocks

    blocks = []
    for frame_number, frame_block in enumerate(video):
        blocks.append(frame_block)
        if frame_number % 8 == 0:        # periodic index lookup
            blocks.append(rng.choice(index))
    compute_ms = exponential_gaps(len(blocks), mean_ms=2.0, rng=rng)
    return Trace(
        name="media-server",
        blocks=blocks,
        compute_ms=compute_ms,
        files=space.files,
        description="sequential video stream with hot index lookups",
    )


def main() -> None:
    trace = build_media_trace()
    print(f"{trace.name}: {trace.reads} reads, "
          f"{trace.distinct_blocks} distinct blocks, "
          f"{trace.compute_time_s:.1f}s compute\n")

    print("cache-size sensitivity (2 disks, forestall vs demand):")
    print(f"{'cache blocks':>12} {'demand':>10} {'forestall':>10} {'speedup':>8}")
    for cache_blocks in (64, 256, 1024):
        demand = repro.run_simulation(
            trace, policy="demand", num_disks=2, cache_blocks=cache_blocks
        )
        forestall = repro.run_simulation(
            trace, policy="forestall", num_disks=2, cache_blocks=cache_blocks
        )
        speedup = demand.elapsed_ms / forestall.elapsed_ms
        print(f"{cache_blocks:>12} {demand.elapsed_s:>9.2f}s "
              f"{forestall.elapsed_s:>9.2f}s {speedup:>7.2f}x")

    print("\nStreaming workloads barely need cache, but they love")
    print("prefetching: forestall hides nearly every fetch behind compute.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cache sizing from first principles: miss-ratio curves vs simulation.

The paper's Table 7 sweeps cache sizes empirically.  The locality toolkit
can predict the *shape* of that sweep without running the simulator:
Mattson's miss-ratio curve says how many fetches an LRU cache of each size
would take, and the simulated demand-fetch elapsed time tracks it.  The
prefetchers then show how much of the remaining miss cost they can hide.

Run:  python examples/cache_sizing.py [trace-name]
"""

import sys

import repro
from repro.analysis.locality import miss_ratio_curve, sequentiality


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "glimpse"
    trace = repro.build_workload(trace_name, scale=0.5)
    distinct = trace.distinct_blocks
    sizes = [max(16, distinct // 8), max(16, distinct // 4),
             max(16, distinct // 2), distinct]

    print(f"{trace.name}: {trace.references} refs, {distinct} distinct, "
          f"sequentiality {sequentiality(trace.blocks):.2f}\n")

    curve = miss_ratio_curve(trace.blocks, sizes)
    print(f"{'cache':>7} {'LRU miss%':>10} {'LRU-demand':>10} "
          f"{'forestall':>10} {'hidden':>7}")
    for size in sizes:
        demand = repro.run_simulation(trace, policy="lru-demand",
                                      num_disks=2, cache_blocks=size)
        forestall = repro.run_simulation(trace, policy="forestall",
                                         num_disks=2, cache_blocks=size)
        io_cost = demand.elapsed_ms - demand.compute_ms
        hidden = 1.0 - (
            (forestall.elapsed_ms - forestall.compute_ms) / io_cost
            if io_cost > 0 else 0.0
        )
        predicted = curve[size] * trace.references
        print(f"{size:>7} {100 * curve[size]:>9.1f}% "
              f"{demand.elapsed_s:>9.2f}s {forestall.elapsed_s:>9.2f}s "
              f"{100 * hidden:>6.1f}%   (predicted {predicted:.0f} vs "
              f"{demand.fetches} fetches)")

    print("\nThe LRU miss curve predicts where extra buffers stop paying;")
    print("the 'hidden' column is how much of the remaining I/O cost the")
    print("prefetcher overlaps with compute — the paper's whole thesis.")


if __name__ == "__main__":
    main()

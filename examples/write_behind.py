#!/usr/bin/env python3
"""Writes and write-behind: the paper's other future-work axis.

The paper simulates reads only, arguing that "write behind strategies can
mask update latency".  The engine supports write references with
write-behind flushing, so we can check that claim: a read-modify-write
workload (read a block, compute, write it back — a database page update
pattern) should run barely slower than its read-only twin, because dirty
blocks drain to disk asynchronously when they are evicted.

Run:  python examples/write_behind.py
"""

import random

import repro
from repro.trace import Trace
from repro.trace.synthetic import BlockSpace, exponential_gaps


def build_update_workload(pages: int = 3000, update_fraction: float = 0.4,
                          seed: int = 21):
    rng = random.Random(seed)
    space = BlockSpace()
    relation = space.new_file(pages)
    blocks, writes = [], []
    for page in relation:
        blocks.append(page)
        writes.append(False)            # read the page
        if rng.random() < update_fraction:
            blocks.append(page)
            writes.append(True)         # write it back
    gaps = exponential_gaps(len(blocks), mean_ms=2.0, rng=rng)
    read_write = Trace("page-updates", blocks, gaps, files=space.files,
                       writes=writes)
    read_only = Trace("page-reads", blocks, gaps, files=space.files)
    return read_write, read_only


def main() -> None:
    read_write, read_only = build_update_workload()
    print(f"{read_write.name}: {read_write.reads} reads + "
          f"{read_write.write_count} writes over "
          f"{read_write.distinct_blocks} pages\n")

    print(f"{'workload':<14} {'policy':<14} {'elapsed':>9} {'stall':>8} "
          f"{'flushes':>8}")
    for trace in (read_only, read_write):
        for policy in ("demand", "forestall"):
            result = repro.run_simulation(trace, policy=policy, num_disks=2,
                                          cache_blocks=512)
            flushes = result.extras.get("flushes", 0)
            print(f"{trace.name:<14} {policy:<14} {result.elapsed_s:>8.2f}s "
                  f"{result.stall_s:>7.2f}s {flushes:>8}")

    rw = repro.run_simulation(read_write, policy="forestall", num_disks=2,
                              cache_blocks=512)
    ro = repro.run_simulation(read_only, policy="forestall", num_disks=2,
                              cache_blocks=512)
    overhead = 100.0 * (rw.elapsed_ms - ro.elapsed_ms) / ro.elapsed_ms
    sync_cost = rw.extras["writes"] * rw.average_fetch_ms / 1000.0
    print(f"\nwrite-behind overhead: {overhead:.1f}% "
          f"(synchronous writes would have added ~{sync_cost:.1f}s)")


if __name__ == "__main__":
    main()

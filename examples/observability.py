#!/usr/bin/env python3
"""Looking inside a run: stall episodes, disk activity, and attribution.

The paper's tables compress each run to six numbers.  Two tools recover
the time axis:

* ``record_timeline=True`` keeps raw stall/fetch events on the engine;
* a ``repro.obs.Observer`` adds typed events, metrics, and an *exact*
  decomposition of stall time into causes, plus Perfetto export
  (see docs/OBSERVABILITY.md).

Run:  python examples/observability.py [trace-name] [num-disks]
"""

import sys

import repro
from repro.analysis.tables import format_stall_table
from repro.core import SimConfig, Simulator, make_policy
from repro.obs import Observer, write_chrome_trace
from repro.trace import cache_blocks_for


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "ld"
    num_disks = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    trace = repro.build_workload(trace_name, scale=0.5)
    config = SimConfig(
        cache_blocks=cache_blocks_for(trace_name, 0.5),
        record_timeline=True,
    )

    for policy_name in ("fixed-horizon", "forestall"):
        policy = make_policy(policy_name, horizon=31)
        sim = Simulator(trace, policy, num_disks, config)
        result = sim.run()
        timeline = sim.timeline
        summary = timeline.summary()
        episodes = sorted(
            timeline.stall_episodes(),
            key=lambda e: e.duration_ms, reverse=True,
        )

        print(f"{result.policy_name} on {trace.name}, {num_disks} disks:")
        print(f"  elapsed {result.elapsed_s:.2f}s, "
              f"{summary['stall_episodes']} stall episodes totalling "
              f"{summary['stall_total_ms'] / 1000:.2f}s "
              f"(mean {summary['stall_mean_ms']:.1f} ms, "
              f"max {summary['stall_max_ms']:.1f} ms)")
        print(f"  fetch load balance across disks: "
              f"{summary['disk_balance']:.2f} "
              f"(1.0 = perfectly even)")
        if episodes:
            worst = episodes[0]
            print(f"  worst stall: block {worst.block} for "
                  f"{worst.duration_ms:.1f} ms at t={worst.start_ms:.0f} ms")
        for disk in range(num_disks):
            spans = timeline.busy_intervals(disk)
            busy = sum(end - start for start, end in spans)
            print(f"  disk {disk}: {len(spans)} busy spans, "
                  f"{busy / 1000:.2f}s of service")
        print()

    print("Forestall's episodes should be fewer and shorter: it starts")
    print("fetching exactly when the i*F' > d_i test proves a stall is")
    print("otherwise inevitable.")

    # -- the observer: why did it stall, not just how long ------------------
    observer = Observer()
    sim = Simulator(
        trace, make_policy("forestall", horizon=31), num_disks,
        SimConfig(cache_blocks=cache_blocks_for(trace_name, 0.5)),
        observer=observer,
    )
    result = sim.run()
    print()
    print("forestall with an Observer attached (result is bit-identical):")
    print(format_stall_table(result))
    worst = observer.worst_stalls(1)
    if worst:
        episode = worst[0]
        print(f"  worst stall: block {episode.block} for "
              f"{episode.duration_ms:.1f} ms — cause: {episode.cause}")
    out_path = f"{trace_name}.trace.json"
    write_chrome_trace(observer, out_path)
    print(f"  timeline written to {out_path} — open at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Looking inside a run: stall episodes and disk activity.

The paper's tables compress each run to six numbers.  With
``record_timeline=True`` the engine keeps the time axis, so you can see
*why* a configuration stalls: how many episodes, how long, on which
blocks, and how evenly the fetch load spread across the array.

Run:  python examples/observability.py [trace-name] [num-disks]
"""

import sys

import repro
from repro.core import SimConfig, Simulator, make_policy
from repro.trace import cache_blocks_for


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "ld"
    num_disks = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    trace = repro.build_workload(trace_name, scale=0.5)
    config = SimConfig(
        cache_blocks=cache_blocks_for(trace_name, 0.5),
        record_timeline=True,
    )

    for policy_name in ("fixed-horizon", "forestall"):
        policy = make_policy(policy_name, horizon=31)
        sim = Simulator(trace, policy, num_disks, config)
        result = sim.run()
        timeline = sim.timeline
        summary = timeline.summary()
        episodes = sorted(
            timeline.stall_episodes(),
            key=lambda e: e.duration_ms, reverse=True,
        )

        print(f"{result.policy_name} on {trace.name}, {num_disks} disks:")
        print(f"  elapsed {result.elapsed_s:.2f}s, "
              f"{summary['stall_episodes']} stall episodes totalling "
              f"{summary['stall_total_ms'] / 1000:.2f}s "
              f"(mean {summary['stall_mean_ms']:.1f} ms, "
              f"max {summary['stall_max_ms']:.1f} ms)")
        print(f"  fetch load balance across disks: "
              f"{summary['disk_balance']:.2f} "
              f"(1.0 = perfectly even)")
        if episodes:
            worst = episodes[0]
            print(f"  worst stall: block {worst.block} for "
                  f"{worst.duration_ms:.1f} ms at t={worst.start_ms:.0f} ms")
        for disk in range(num_disks):
            spans = timeline.busy_intervals(disk)
            busy = sum(end - start for start, end in spans)
            print(f"  disk {disk}: {len(spans)} busy spans, "
                  f"{busy / 1000:.2f}s of service")
        print()

    print("Forestall's episodes should be fewer and shorter: it starts")
    print("fetching exactly when the i*F' > d_i test proves a stall is")
    print("otherwise inevitable.")


if __name__ == "__main__":
    main()

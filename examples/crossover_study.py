#!/usr/bin/env python3
"""The crossover study: who wins as the disk array grows?

Reproduces the paper's central result on any built-in workload: with few
disks the application is I/O-bound and *aggressive* prefetching wins; with
many disks it turns compute-bound and *fixed horizon*'s low driver overhead
wins; *forestall* hugs the best of both.  Prints one elapsed-time row per
array size and marks the winner.

Run:  python examples/crossover_study.py [trace-name]
"""

import sys

import repro

POLICIES = ("fixed-horizon", "aggressive", "forestall")
DISK_COUNTS = (1, 2, 3, 4, 6, 8, 12)


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "cscope2"
    trace = repro.build_workload(trace_name)
    print(f"crossover study on {trace.name} "
          f"({trace.reads} reads, {trace.compute_time_s:.1f}s compute)\n")

    header = f"{'disks':>5}  " + "  ".join(f"{p:>18}" for p in POLICIES)
    print(header + f"  {'winner':>18}")
    for disks in DISK_COUNTS:
        elapsed = {}
        for policy in POLICIES:
            result = repro.run_simulation(trace, policy=policy,
                                          num_disks=disks)
            elapsed[policy] = result.elapsed_s
        winner = min(elapsed, key=elapsed.get)
        cells = "  ".join(f"{elapsed[p]:>17.2f}s" for p in POLICIES)
        print(f"{disks:>5}  {cells}  {winner:>18}")

    print("\nLook for the crossover: aggressive leads at the top of the")
    print("table (I/O-bound), fixed horizon at the bottom (compute-bound),")
    print("and forestall within a few percent of the leader throughout.")


if __name__ == "__main__":
    main()

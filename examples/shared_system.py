#!/usr/bin/env python3
"""Two applications sharing one I/O system.

The paper's single-process study is the building block; a real system
(TIP2) runs several processes against the same cache and disks.  This
example co-schedules the interactive cscope1 search with the postgres
selection query on a 2-disk array, and shows what the buffer allocator
does to each process's completion time.

Run:  python examples/shared_system.py
"""

import repro
from repro.core import SimConfig, make_policy
from repro.core.multiprocess import (
    CostBenefitAllocator,
    MultiProcessSimulator,
    StaticAllocator,
)


def run(allocator):
    cscope = repro.build_workload("cscope1", scale=0.5)
    postgres = repro.build_workload("postgres-select", scale=0.5)
    sim = MultiProcessSimulator(
        [
            (cscope, make_policy("fixed-horizon", horizon=31)),
            (postgres, make_policy("forestall", horizon=31)),
        ],
        num_disks=2,
        config=SimConfig(cache_blocks=640),
        allocator=allocator,
    )
    return sim.run()


def main() -> None:
    print("two processes, one array — allocator comparison\n")
    for allocator in (
        StaticAllocator(),                 # even split
        StaticAllocator([3, 1]),           # favour the interactive search
        CostBenefitAllocator(),            # buffers chase the stalls
    ):
        label = allocator.name
        if allocator.weights:
            label += f" {allocator.weights}"
        results = run(allocator)
        print(f"{label}:")
        for r in results:
            print(f"  {r.trace_name:<22} {r.policy_name:<16} "
                  f"elapsed {r.elapsed_s:7.2f}s  stall {r.stall_s:6.2f}s  "
                  f"buffers {r.cache_blocks}")
        print(f"  makespan {results.makespan_ms / 1000:.2f}s\n")

    print("Static splits trade one process against the other; the")
    print("cost-benefit allocator moves buffers toward whoever is")
    print("stalling, which is TIP2's answer in miniature.")


if __name__ == "__main__":
    main()

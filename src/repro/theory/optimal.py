"""Exhaustive optimal offline schedule for tiny theoretical-model instances.

Used by tests to validate the theorems the paper leans on:

* aggressive's elapsed time is at most ``d (1 + F/K)`` times optimal;
* reverse aggressive's is at most ``1 + F d / K`` times optimal;
* the Figure 1 worked example (7 vs 6 time units on two disks).

Time is discretized to unit steps (``fetch_time`` must be an integer) and
the state graph — (cursor, cache contents, in-flight fetches) — is searched
breadth-first: every transition advances the clock by exactly one unit, so
BFS depth equals elapsed time and the first goal state reached is optimal.
The state graph is cyclic (evict/refetch churn), which is why this is a
shortest-path search rather than a memoized recursion.  Exponential in
every dimension; keep instances tiny (n ≲ 10).
"""

from collections import deque
from itertools import product
from typing import (
    Callable,
    Collection,
    Deque,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: One outstanding fetch: (disk, block, remaining time units).
_InFlight = Tuple[int, int, int]
#: Search state: (cursor, cache contents, in-flight fetches).
_State = Tuple[int, FrozenSet[int], Tuple[_InFlight, ...]]
#: One fetch decision: (disk, block, victim-or-None).
_Action = Tuple[int, int, Optional[int]]


def optimal_elapsed(
    blocks: Sequence[int],
    cache_blocks: int,
    fetch_time: int,
    num_disks: int,
    disk_of: Callable[[int], int],
    state_limit: int = 2_000_000,
    initial_cache: Collection[int] = (),
) -> int:
    """Minimum elapsed time to serve ``blocks`` in the theoretical model."""
    if fetch_time != int(fetch_time) or fetch_time < 1:
        raise ValueError("fetch_time must be a positive integer")
    fetch_time = int(fetch_time)
    blocks = tuple(blocks)
    n = len(blocks)
    if n == 0:
        return 0
    universe = sorted(set(blocks), key=str)

    def next_use(block: int, cursor: int) -> int:
        for position in range(cursor, n):
            if blocks[position] == block:
                return position
        return n + 1  # effectively infinite

    def successors(state: _State) -> Iterator[_State]:
        cursor, cache, inflight = state
        busy = {disk for disk, _b, _r in inflight}
        coming = {block for _d, block, _r in inflight}
        occupancy = len(cache) + len(inflight)

        menus: List[List[Optional[_Action]]] = []
        for disk in range(num_disks):
            if disk in busy:
                continue
            menu: List[Optional[_Action]] = [None]
            missing = [
                b
                for b in universe
                if disk_of(b) == disk
                and b not in cache
                and b not in coming
                and next_use(b, cursor) <= n
            ]
            for block in missing:
                if occupancy < cache_blocks:
                    menu.append((disk, block, None))
                for victim in cache:
                    menu.append((disk, block, victim))
            menus.append(menu)

        action_sets: Iterable[Tuple[Optional[_Action], ...]] = (
            product(*menus) if menus else [()]
        )
        for actions in action_sets:
            chosen = [a for a in actions if a is not None]
            fetch_targets = [a[1] for a in chosen]
            victims = [a[2] for a in chosen if a[2] is not None]
            if len(set(fetch_targets)) != len(fetch_targets):
                continue
            if len(set(victims)) != len(victims):
                continue
            if len(chosen) - len(victims) > cache_blocks - occupancy:
                continue  # not enough free buffers for victimless fetches
            new_cache = set(cache)
            for _disk, _block, victim in chosen:
                if victim is not None:
                    new_cache.discard(victim)
            if (
                not chosen
                and not inflight
                and blocks[cursor] not in new_cache
            ):
                # Pure idling: no I/O in progress, none started, and the
                # application cannot advance — strictly dominated.
                continue
            new_inflight = list(inflight) + [
                (disk, block, fetch_time) for disk, block, _v in chosen
            ]
            new_cursor = cursor + 1 if blocks[cursor] in new_cache else cursor
            advanced: List[_InFlight] = []
            arrived: Set[int] = set()
            for disk, block, remaining in new_inflight:
                if remaining - 1 <= 0:
                    arrived.add(block)
                else:
                    advanced.append((disk, block, remaining - 1))
            yield (
                new_cursor,
                frozenset(new_cache | arrived),
                tuple(sorted(advanced, key=str)),
            )

    start: _State = (0, frozenset(initial_cache), ())
    seen = {start}
    frontier: Deque[_State] = deque([start])
    elapsed = 0
    while frontier:
        elapsed += 1
        next_frontier: Deque[_State] = deque()
        while frontier:
            state = frontier.popleft()
            for child in successors(state):
                if child[0] == n:
                    return elapsed
                if child in seen:
                    continue
                seen.add(child)
                if len(seen) > state_limit:
                    raise RuntimeError("optimal search exceeded state limit")
                next_frontier.append(child)
        frontier = next_frontier
    raise RuntimeError("optimal search exhausted without completing the trace")

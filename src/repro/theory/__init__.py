"""The paper's theoretical model (section 2.1): unit compute time per
reference, uniform fetch time ``F``, one fetch in service per disk.

Used three ways: as the substrate for *reverse aggressive*'s offline
schedule construction, as a clean target for property-based tests of the
algorithms' invariants, and (for tiny instances) to compute the true
optimal elapsed time that the theorems bound against.
"""

from repro.theory.model import (
    ModelEvent,
    ModelRun,
    run_aggressive_model,
    run_demand_model,
    run_fixed_horizon_model,
    run_reverse_aggressive_model,
)
from repro.theory.optimal import optimal_elapsed

__all__ = [
    "ModelEvent",
    "ModelRun",
    "optimal_elapsed",
    "run_aggressive_model",
    "run_demand_model",
    "run_fixed_horizon_model",
    "run_reverse_aggressive_model",
]

"""Discrete simulator for the paper's theoretical model.

Model rules (section 2.1): a cache hit costs one time unit; a fetch costs
``F`` time units; fetches to one disk are serialized while different disks
proceed in parallel; the evicted block becomes unavailable the moment its
replacement fetch is issued; elapsed time = references + stall.

The aggressive run doubles as *reverse aggressive*'s schedule constructor:
run it on the reversed sequence and read the event log backwards.
"""

from dataclasses import dataclass, field
from typing import Callable, Collection, Dict, Iterator, List, Optional, Sequence, Set

from repro.core.nextref import EvictionHeap, NextRefIndex
from repro.core.policy import Victim


@dataclass(frozen=True)
class ModelEvent:
    """One fetch decision in a theoretical-model run."""

    issue_cursor: int  # references consumed when the fetch was issued
    target_position: int  # position of the fetched block's next use then
    block: int
    victim: Optional[int]


@dataclass
class ModelRun:
    """Outcome of a theoretical-model simulation."""

    elapsed: float
    stall: float
    fetches: int
    events: List[ModelEvent] = field(default_factory=list)
    final_cache: Set[int] = field(default_factory=set)

    @property
    def references(self) -> int:
        return int(self.elapsed - self.stall + 0.5)


class _ModelState:
    """Shared plumbing for theoretical-model policies."""

    def __init__(
        self,
        blocks: Sequence[int],
        cache_blocks: int,
        fetch_time: float,
        num_disks: int,
        disk_of: Callable[[int], int],
        initial_cache: Collection[int] = (),
    ) -> None:
        if cache_blocks < 1:
            raise ValueError("cache must hold at least one block")
        if len(set(initial_cache)) > cache_blocks:
            raise ValueError("initial cache exceeds capacity")
        self.blocks = list(blocks)
        self.cache_blocks = cache_blocks
        self.fetch_time = float(fetch_time)
        self.num_disks = num_disks
        self.disk_of = disk_of
        self.index = NextRefIndex(self.blocks)
        self.cache: Set[int] = set(initial_cache)
        self.in_flight: Dict[int, float] = {}  # block -> completion time
        self.heap = EvictionHeap(self.index, self.cache)
        for block in self.cache:
            self.heap.push(block, 0)
        self.busy_until = [0.0] * num_disks
        self.pending: List[List[int]] = [[] for _ in range(num_disks)]
        self.events: List[ModelEvent] = []
        self.time = 0.0
        self.cursor = 0
        self.stall = 0.0
        self._scan_floor = 0

    # -- occupancy -------------------------------------------------------------

    @property
    def occupied(self) -> int:
        return len(self.cache) + len(self.in_flight)

    def present_or_coming(self, block: int) -> bool:
        return block in self.cache or block in self.in_flight

    # -- fetch mechanics ---------------------------------------------------------

    def issue(
        self, block: int, victim: Optional[int], target_position: int
    ) -> None:
        disk = self.disk_of(block)
        if victim is not None:
            self.cache.discard(victim)
            # next_use == index.never (never referenced again) can never be
            # below the scan floor, so no sentinel check is needed.
            next_use = self.index.next_use(victim, self.cursor)
            if next_use < self._scan_floor:
                self._scan_floor = next_use
        start = max(self.time, self.busy_until[disk])
        completion = start + self.fetch_time
        self.busy_until[disk] = completion
        self.in_flight[block] = completion
        self.events.append(
            ModelEvent(
                issue_cursor=self.cursor,
                target_position=target_position,
                block=block,
                victim=victim,
            )
        )

    def absorb_completions(self) -> None:
        """Move fetches that have completed by ``self.time`` into the cache."""
        if not self.in_flight:
            return
        done = [b for b, c in self.in_flight.items() if c <= self.time]
        for block in done:
            del self.in_flight[block]
            self.cache.add(block)
            self.heap.push(block, self.cursor)

    def choose_victim(self, fetch_position: int) -> Victim:
        """Optimal replacement with do-no-harm against ``fetch_position``.

        Returns None for a free buffer, a block, or False when disallowed.
        """
        if self.occupied < self.cache_blocks:
            return None
        victim = self.heap.best_victim(self.cursor)
        if victim is None:
            return False
        # index.never exceeds any real fetch position, so never-again
        # blocks stay evictable with one exact comparison.
        if self.index.next_use(victim, self.cursor) <= fetch_position:
            return False
        return victim

    def missing_positions(self, end: int) -> Iterator[int]:
        blocks = self.blocks
        end = min(end, len(blocks))
        for position in range(max(self.cursor, self._scan_floor), end):
            if not self.present_or_coming(blocks[position]):
                yield position

    def serve_loop(self, fill: Callable[[], None]) -> ModelRun:
        """Drive the application cursor to the end of the sequence.

        ``fill`` is the policy's prefetch hook, called at every step after
        completions are absorbed.
        """
        blocks = self.blocks
        n = len(blocks)
        while self.cursor < n:
            self.absorb_completions()
            fill()
            block = blocks[self.cursor]
            if block in self.cache:
                self.cursor += 1
                self.heap.push(block, self.cursor)
                self.time += 1.0
                continue
            if block in self.in_flight:
                completion = self.in_flight[block]
                self.stall += completion - self.time
                self.time = completion
                continue
            # Demand fetch: at the cursor do-no-harm is always satisfiable.
            victim = self.choose_victim(self.cursor)
            if victim is False:
                raise RuntimeError("model cache wedged — cannot happen")
            self.issue(block, victim, self.cursor)
            completion = self.in_flight[block]
            self.stall += completion - self.time
            self.time = completion
        self.absorb_completions()
        return ModelRun(
            elapsed=self.time,
            stall=self.stall,
            fetches=len(self.events),
            events=self.events,
            final_cache=set(self.cache) | set(self.in_flight),
        )


def run_aggressive_model(
    blocks: Sequence[int],
    cache_blocks: int,
    fetch_time: float,
    num_disks: int,
    disk_of: Callable[[int], int],
    batch_size: int = 1,
    initial_cache: Collection[int] = (),
) -> ModelRun:
    """Aggressive in the theoretical model, with batched issue.

    A disk accepts a new batch only when it has finished all previously
    issued fetches; evictions happen at batch-construction time.
    """
    state = _ModelState(
        blocks, cache_blocks, fetch_time, num_disks, disk_of, initial_cache
    )

    def fill() -> None:
        budgets = {
            disk: batch_size
            for disk in range(num_disks)
            if state.busy_until[disk] <= state.time
        }
        if not budgets:
            return
        new_floor: Optional[int] = None
        for position in state.missing_positions(len(state.blocks)):
            block = state.blocks[position]
            disk = disk_of(block)
            budget = budgets.get(disk, 0)
            if budget == 0:
                if new_floor is None:
                    new_floor = position
                if all(b == 0 for b in budgets.values()):
                    break
                continue
            victim = state.choose_victim(position)
            if victim is False:
                if new_floor is None:
                    new_floor = position
                break
            state.issue(block, victim, position)
            budgets[disk] = budget - 1
        else:
            if new_floor is None:
                new_floor = len(state.blocks)
        if new_floor is not None:
            state._scan_floor = max(state._scan_floor, new_floor)

    return state.serve_loop(fill)


def run_fixed_horizon_model(
    blocks: Sequence[int],
    cache_blocks: int,
    fetch_time: float,
    num_disks: int,
    disk_of: Callable[[int], int],
    horizon: int,
    initial_cache: Collection[int] = (),
) -> ModelRun:
    """Fixed horizon in the theoretical model (H references lookahead)."""
    state = _ModelState(
        blocks, cache_blocks, fetch_time, num_disks, disk_of, initial_cache
    )

    def fill() -> None:
        boundary = state.cursor + horizon
        stop: Optional[int] = None
        for position in state.missing_positions(boundary):
            block = state.blocks[position]
            victim: Optional[int]
            if state.occupied < state.cache_blocks:
                victim = None
            else:
                victim = state.heap.best_victim(state.cursor)
                if victim is None:
                    stop = position
                    break
                # The boundary can lie past the end of the sequence, so
                # "never again" (== index.never) must stay evictable here.
                next_use = state.index.next_use(victim, state.cursor)
                if next_use != state.index.never and next_use <= boundary:
                    stop = position
                    break
            state.issue(block, victim, position)
        floor = stop if stop is not None else boundary
        state._scan_floor = max(state._scan_floor, min(floor, len(state.blocks)))

    return state.serve_loop(fill)


def run_demand_model(
    blocks: Sequence[int],
    cache_blocks: int,
    fetch_time: float,
    num_disks: int,
    disk_of: Callable[[int], int],
    initial_cache: Collection[int] = (),
) -> ModelRun:
    """Demand fetching with Belady replacement in the theoretical model."""
    state = _ModelState(
        blocks, cache_blocks, fetch_time, num_disks, disk_of, initial_cache
    )
    return state.serve_loop(lambda: None)


def run_reverse_aggressive_model(
    blocks: Sequence[int],
    cache_blocks: int,
    fetch_time: float,
    num_disks: int,
    disk_of: Callable[[int], int],
    batch_size: int = 1,
    initial_cache: Collection[int] = (),
) -> ModelRun:
    """Reverse aggressive executed entirely inside the theoretical model.

    Builds the reverse-pass schedule (aggressive on the reversed sequence)
    and replays it forward with the *scheduled* eviction order — the same
    transform the disk-accurate policy uses, but with uniform fetch times,
    so Theorem 2's bound (elapsed <= (1 + F d / K) x optimal) can be checked
    against the brute-force optimum on tiny instances.
    """
    block_list = list(blocks)
    n = len(block_list)
    # Boundary condition: the reverse execution must END holding the
    # forward run's initial cache.  Appending those blocks to the reversed
    # sequence (virtual references at forward time -1) forces the greedy
    # reverse pass to have them resident when it finishes; events targeting
    # the virtual tail release at forward index 0.
    reverse_sequence = block_list[::-1] + list(initial_cache)
    reverse_run = run_aggressive_model(
        reverse_sequence, cache_blocks, fetch_time, num_disks, disk_of,
        batch_size=batch_size,
    )
    evictions = sorted(
        (max(0, n - event.target_position), event.block)
        for event in reversed(reverse_run.events)
        if event.victim is not None
    )

    state = _ModelState(
        block_list, cache_blocks, fetch_time, num_disks, disk_of, initial_cache
    )
    eviction_pos = [0]

    def scheduled_victim(fetch_position: int) -> Victim:
        if state.occupied < state.cache_blocks:
            return None
        position = eviction_pos[0]
        while position < len(evictions):
            release, block = evictions[position]
            if release > state.cursor:
                eviction_pos[0] = position
                return False
            if block in state.cache:
                # index.never > any real fetch position: one comparison.
                if state.index.next_use(block, state.cursor) <= fetch_position:
                    eviction_pos[0] = position
                    return False
                eviction_pos[0] = position + 1
                return block
            if block in state.in_flight:
                eviction_pos[0] = position
                return False
            position += 1
        eviction_pos[0] = position
        return False

    def fill() -> None:
        budgets = {
            disk: batch_size
            for disk in range(num_disks)
            if state.busy_until[disk] <= state.time
        }
        if not budgets:
            return
        new_floor: Optional[int] = None
        for position in state.missing_positions(len(state.blocks)):
            block = state.blocks[position]
            disk = disk_of(block)
            budget = budgets.get(disk, 0)
            if budget == 0:
                if new_floor is None:
                    new_floor = position
                if all(b == 0 for b in budgets.values()):
                    break
                continue
            victim = scheduled_victim(position)
            if victim is False:
                if new_floor is None:
                    new_floor = position
                break
            state.issue(block, victim, position)
            budgets[disk] = budget - 1
        else:
            if new_floor is None:
                new_floor = len(state.blocks)
        if new_floor is not None:
            state._scan_floor = max(state._scan_floor, new_floor)

    return state.serve_loop(fill)

"""repro.loadgen: a seeded open-loop load generator for ``repro-sim serve``.

Closed-loop clients (send, wait, send again) slow themselves down
exactly when the server slows down, hiding the overload they are meant
to measure.  This generator is **open-loop**: arrivals fire on a fixed
seeded timetable regardless of how the server is coping, so at 10×
capacity the server's shaping — early 429 sheds, rate limits, lane
refusals — is visible instead of masked (the acceptance criterion in
ISSUE 10 and the soak harness both depend on this).

Everything is deterministic from ``seed``: inter-arrival gaps
(exponential), the request mix, spec choice, and the optional
client-side chaos (dripped request bytes via
:func:`repro.svc.netchaos.paced_write`, dropped connections) all come
from ``random.Random(f"loadgen:{seed}")``-style streams, and the report
carries a plan fingerprint so two runs of the same seed can prove they
replayed the same plan.  Wall-clock *timing* of responses still varies
run to run — the plan, not the latencies, is the reproducible part.

The report aggregates per-kind status counts and latency percentiles,
plus the correctness ledger the soak invariants check: every digest
observed per config hash (conflicts mean a lost/duplicated-result bug),
and per-status shed counts.

Usage::

    repro-sim loadgen --port 8642 --rate 50 --duration 10 \\
        --mix cells=0.5,results=0.4,status=0.1 --report loadgen.json

This module is orchestration, not simulation: like ``repro.svc`` it may
read the wall clock (simlint SL002 allowlists it) and it is deliberately
outside the mypy-strict surface.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.svc.netchaos import ConnPlan, NetChaosSchedule, paced_write
from repro.svc.service import cell_from_spec

__all__ = ["LoadgenConfig", "Arrival", "build_plan", "run_loadgen",
           "DEFAULT_MIX", "DEFAULT_SPECS"]

#: Request kinds the mix distributes over.
KIND_CELLS = "cells"        # POST /v1/cells (compute lane)
KIND_RESULTS = "results"    # GET /v1/results/<hash> (read lane)
KIND_STATUS = "status"      # GET /v1/status
KIND_METRICS = "metrics"    # GET /v1/metrics
KIND_HEALTHZ = "healthz"    # GET /v1/healthz

DEFAULT_MIX: Dict[str, float] = {
    KIND_CELLS: 0.5, KIND_RESULTS: 0.4, KIND_STATUS: 0.1,
}

#: A tiny default spec pool (the golden traces at reduced scale) so the
#: generator works against any store without a specs file.
DEFAULT_SPECS: List[Dict[str, Any]] = [
    {"trace": "cscope2", "policy": "forestall", "disks": 4, "scale": 0.05},
    {"trace": "cscope2", "policy": "fixed-horizon", "disks": 4, "scale": 0.05},
    {"trace": "glimpse", "policy": "forestall", "disks": 4, "scale": 0.05},
    {"trace": "postgres-select", "policy": "aggressive", "disks": 4,
     "scale": 0.05},
]


@dataclass
class LoadgenConfig:
    """Tunables for one load-generation run (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8642
    rate_per_s: float = 20.0
    duration_s: float = 10.0
    seed: int = 0
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    specs: List[Dict[str, Any]] = field(
        default_factory=lambda: [dict(s) for s in DEFAULT_SPECS]
    )
    timeout_s: float = 30.0
    #: Client-side chaos: per-*request* plans (dripped writes, dropped
    #: connections, pre-send latency) from the same seeded schedule
    #: machinery the proxy uses.
    chaos: Optional[NetChaosSchedule] = None

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be > 0")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be > 0")
        if not self.mix:
            raise ValueError("mix must name at least one request kind")
        unknown = sorted(set(self.mix) - {
            KIND_CELLS, KIND_RESULTS, KIND_STATUS, KIND_METRICS, KIND_HEALTHZ,
        })
        if unknown:
            raise ValueError(f"unknown mix kind(s): {', '.join(unknown)}")
        total = sum(self.mix.values())
        if total <= 0.0:
            raise ValueError("mix weights must sum to > 0")


@dataclass(frozen=True)
class Arrival:
    """One planned request: when, what kind, which spec."""

    index: int
    at_s: float
    kind: str
    spec_index: int


def build_plan(config: LoadgenConfig) -> Tuple[List[Arrival], str]:
    """The seeded open-loop timetable and its fingerprint.

    Pure in ``(seed, rate, duration, mix, specs)``; the fingerprint is
    the sha256 of the serialized plan, so two runs can assert they
    replayed byte-identical plans before comparing shed counts.
    """
    rng = random.Random(f"loadgen:{config.seed}")
    kinds = sorted(config.mix)
    weights = [config.mix[kind] for kind in kinds]
    arrivals: List[Arrival] = []
    at_s = 0.0
    index = 0
    while True:
        at_s += rng.expovariate(config.rate_per_s)
        if at_s >= config.duration_s:
            break
        kind = rng.choices(kinds, weights=weights)[0]
        spec_index = rng.randrange(len(config.specs)) if config.specs else 0
        arrivals.append(Arrival(index, round(at_s, 6), kind, spec_index))
        index += 1
    serialized = json.dumps(
        [[a.index, a.at_s, a.kind, a.spec_index] for a in arrivals]
    )
    fingerprint = hashlib.sha256(serialized.encode()).hexdigest()
    return arrivals, fingerprint


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[pos]


class _Report:
    """Mutable aggregation shared by the request tasks."""

    def __init__(self) -> None:
        self.status_counts: Dict[str, int] = {}
        self.kind_status: Dict[str, Dict[str, int]] = {}
        self.latencies_ms: Dict[str, List[float]] = {}
        self.errors: Dict[str, int] = {}
        self.digests: Dict[str, set] = {}
        self.retry_after_present = 0
        self.chaos_dropped = 0
        self.completed = 0

    def record(self, kind: str, status: int, latency_ms: float,
               headers: Dict[str, str], payload: Any) -> None:
        self.completed += 1
        key = str(status)
        self.status_counts[key] = self.status_counts.get(key, 0) + 1
        per_kind = self.kind_status.setdefault(kind, {})
        per_kind[key] = per_kind.get(key, 0) + 1
        self.latencies_ms.setdefault(kind, []).append(latency_ms)
        if "retry-after" in headers:
            self.retry_after_present += 1
        if isinstance(payload, dict):
            record = payload.get("record")
            if isinstance(record, dict) and "digest" in record:
                self.digests.setdefault(
                    str(record.get("hash")), set()
                ).add(str(record["digest"]))

    def error(self, name: str) -> None:
        self.completed += 1
        self.errors[name] = self.errors.get(name, 0) + 1


async def _http_request(
    config: LoadgenConfig,
    method: str,
    path: str,
    body: Optional[bytes],
    plan: Optional[ConnPlan],
) -> Tuple[int, Dict[str, str], Any]:
    """One raw HTTP/1.1 request; returns (status, headers, json payload)."""
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {config.host}\r\n"
            "Connection: close\r\n"
        )
        if payload:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
            )
        raw = head.encode() + b"\r\n" + payload
        if plan is not None and plan.latency_ms > 0.0:
            await asyncio.sleep(plan.latency_ms / 1000.0)
        if plan is not None and plan.drip_chunk_bytes > 0:
            await paced_write(
                writer, raw, plan.drip_chunk_bytes,
                plan.drip_delay_ms / 1000.0,
            )
        else:
            writer.write(raw)
            await asyncio.wait_for(writer.drain(), config.timeout_s)
        status_line = await asyncio.wait_for(
            reader.readline(), config.timeout_s
        )
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), config.timeout_s)
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if "content-length" in headers:
            data = await asyncio.wait_for(
                reader.readexactly(int(headers["content-length"])),
                config.timeout_s,
            )
        else:
            data = await asyncio.wait_for(
                reader.read(1024 * 1024), config.timeout_s
            )
        try:
            decoded = json.loads(data) if data else None
        except json.JSONDecodeError:
            decoded = None
        return status, headers, decoded
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _request_for(
    config: LoadgenConfig, arrival: Arrival
) -> Tuple[str, str, Optional[bytes]]:
    """(method, path, body) for one planned arrival."""
    spec = config.specs[arrival.spec_index % len(config.specs)]
    if arrival.kind == KIND_CELLS:
        return "POST", "/v1/cells", json.dumps(spec).encode()
    if arrival.kind == KIND_RESULTS:
        config_hash = cell_from_spec(spec).config_hash
        return "GET", f"/v1/results/{config_hash}", None
    if arrival.kind == KIND_STATUS:
        return "GET", "/v1/status", None
    if arrival.kind == KIND_METRICS:
        return "GET", "/v1/metrics", None
    return "GET", "/v1/healthz", None


async def _fire(
    config: LoadgenConfig, arrival: Arrival, report: _Report,
    start_monotonic: float,
) -> None:
    delay = start_monotonic + arrival.at_s - time.monotonic()
    if delay > 0:
        await asyncio.sleep(delay)
    plan: Optional[ConnPlan] = None
    if config.chaos is not None:
        plan = config.chaos.plan_for(arrival.index)
        if plan.drop:
            report.chaos_dropped += 1
            return
    method, path, body = _request_for(config, arrival)
    begun = time.monotonic()
    try:
        status, headers, payload = await asyncio.wait_for(
            _http_request(config, method, path, body, plan),
            config.timeout_s + (plan.latency_ms / 1000.0 if plan else 0.0)
            + 30.0,
        )
    except asyncio.TimeoutError:
        report.error("timeout")
        return
    except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
        report.error(type(exc).__name__)
        return
    report.record(
        arrival.kind, status, (time.monotonic() - begun) * 1000.0,
        headers, payload,
    )


async def run_loadgen(config: LoadgenConfig) -> Dict[str, Any]:
    """Drive the plan and return the aggregated report (JSON-ready)."""
    arrivals, fingerprint = build_plan(config)
    report = _Report()
    start_monotonic = time.monotonic()
    tasks = [
        asyncio.create_task(_fire(config, arrival, report, start_monotonic))
        for arrival in arrivals
    ]
    if tasks:
        await asyncio.gather(*tasks)
    wall_s = time.monotonic() - start_monotonic
    latency_summary: Dict[str, Dict[str, float]] = {}
    for kind, values in sorted(report.latencies_ms.items()):
        ordered = sorted(values)
        latency_summary[kind] = {
            "count": float(len(ordered)),
            "p50_ms": round(_percentile(ordered, 0.50), 3),
            "p99_ms": round(_percentile(ordered, 0.99), 3),
            "max_ms": round(ordered[-1], 3) if ordered else 0.0,
        }
    digest_conflicts = sorted(
        config_hash for config_hash, seen in report.digests.items()
        if len(seen) > 1
    )
    shed_statuses = ("408", "413", "429", "431", "503")
    return {
        "plan": {
            "seed": config.seed,
            "rate_per_s": config.rate_per_s,
            "duration_s": config.duration_s,
            "arrivals": len(arrivals),
            "fingerprint": fingerprint,
            "mix": dict(sorted(config.mix.items())),
            "chaos": config.chaos.to_dict() if config.chaos else None,
        },
        "completed": report.completed,
        "wall_s": round(wall_s, 3),
        "status_counts": dict(sorted(report.status_counts.items())),
        "kind_status": {
            kind: dict(sorted(counts.items()))
            for kind, counts in sorted(report.kind_status.items())
        },
        "latency_ms": latency_summary,
        "errors": dict(sorted(report.errors.items())),
        "shed": {
            status: report.status_counts.get(status, 0)
            for status in shed_statuses
            if report.status_counts.get(status, 0)
        },
        "retry_after_present": report.retry_after_present,
        "chaos_dropped": report.chaos_dropped,
        "digests": {
            config_hash: sorted(seen)
            for config_hash, seen in sorted(report.digests.items())
        },
        "digest_conflicts": digest_conflicts,
    }


def run_loadgen_blocking(config: LoadgenConfig) -> Dict[str, Any]:
    """Synchronous entry point for the CLI."""
    return asyncio.run(run_loadgen(config))

"""Command-line interface: ``repro-sim``.

Subcommands::

    repro-sim traces                        # Table 3 summary of all workloads
    repro-sim run -t ld -p forestall -d 4   # one simulation
    repro-sim sweep -t cscope2 -d 1,2,3,4   # all algorithms across an array
    repro-sim figure -t synth -d 1,2,3,4    # paper-style stacked-bar figure
    repro-sim characterize                  # locality fingerprints
    repro-sim hints -t cscope2 -d 2         # degraded-hint sensitivity
    repro-sim export -t ld -o ld.trace      # write a workload to a file

Use ``--scale`` to shrink workloads for quick experiments.
"""

import argparse
import sys

from repro.analysis.experiments import ExperimentSetting, run_one, sweep_policies
from repro.analysis.figures import render_figure
from repro.analysis.locality import characterize
from repro.analysis.tables import format_breakdown_table, format_table
from repro.core import POLICIES, HintQuality
from repro.trace import TABLE3, WORKLOADS, build as build_workload


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", "-t", required=True, choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cache", type=int, default=None, help="cache blocks")
    parser.add_argument(
        "--discipline", choices=["cscan", "fcfs", "sstf"], default="cscan"
    )


def _setting(args) -> ExperimentSetting:
    return ExperimentSetting(
        scale=args.scale,
        discipline=args.discipline,
        cache_blocks=args.cache,
    )


def cmd_traces(_args) -> int:
    rows = []
    for name in WORKLOADS:
        trace = build_workload(name)
        paper = TABLE3[name]
        rows.append(
            (
                name, trace.reads, trace.distinct_blocks,
                round(trace.compute_time_s, 1),
                paper[0], paper[1], paper[2],
            )
        )
    print(
        format_table(
            (
                "trace", "reads", "distinct", "compute_s",
                "paper_reads", "paper_distinct", "paper_compute_s",
            ),
            rows,
        )
    )
    return 0


def cmd_run(args) -> int:
    result = run_one(
        _setting(args), args.trace, args.policy, args.disks
    )
    print(format_breakdown_table([result]))
    return 0


def cmd_sweep(args) -> int:
    disk_counts = [int(d) for d in args.disks.split(",")]
    policies = args.policies.split(",") if args.policies else sorted(POLICIES)
    results = sweep_policies(
        _setting(args), args.trace, policies, disk_counts,
        tuned_reverse=args.tuned_reverse,
    )
    print(format_breakdown_table(results))
    return 0


def cmd_figure(args) -> int:
    disk_counts = [int(d) for d in args.disks.split(",")]
    policies = (
        args.policies.split(",") if args.policies
        else ["fixed-horizon", "aggressive", "forestall"]
    )
    setting = _setting(args)
    results = sweep_policies(setting, args.trace, policies, disk_counts)
    print(render_figure(f"{args.trace} — elapsed time breakdown", results))
    return 0


def cmd_characterize(args) -> int:
    names = args.traces.split(",") if args.traces else sorted(WORKLOADS)
    rows = []
    for name in names:
        trace = build_workload(name, scale=args.scale)
        fp = characterize(trace)
        rows.append(
            (
                name, fp["references"], fp["distinct_blocks"],
                fp["sequentiality"], fp["hot10_share"],
                fp["miss_ratio_small_cache"], fp["miss_ratio_full_cache"],
            )
        )
    print(
        format_table(
            (
                "trace", "refs", "distinct", "sequentiality", "hot10",
                "miss@K/8", "miss@K",
            ),
            rows,
        )
    )
    return 0


def cmd_export(args) -> int:
    trace = build_workload(args.trace, scale=args.scale)
    from repro.trace import io as trace_io

    if args.output.endswith(".json"):
        trace.save(args.output)
    else:
        trace_io.dump(trace, args.output)
    print(f"wrote {trace.references} references "
          f"({trace.distinct_blocks} distinct blocks) to {args.output}")
    return 0


def cmd_hints(args) -> int:
    trace = build_workload(args.trace, scale=args.scale)
    import repro

    qualities = [
        ("perfect", HintQuality()),
        ("10% missing", HintQuality(missing_fraction=0.10, seed=42)),
        ("25% missing", HintQuality(missing_fraction=0.25, seed=42)),
        ("10% wrong", HintQuality(wrong_fraction=0.10, seed=42)),
    ]
    policies = args.policies.split(",") if args.policies else [
        "fixed-horizon", "aggressive", "forestall",
    ]
    rows = []
    for label, quality in qualities:
        row = [label]
        for policy in policies:
            result = repro.run_simulation(
                trace, policy=policy, num_disks=args.disks,
                cache_blocks=args.cache, hint_quality=quality,
            )
            row.append(round(result.elapsed_s, 2))
        rows.append(tuple(row))
    print(format_table(("hint quality",) + tuple(policies), rows))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Trace-driven parallel prefetching/caching simulator "
        "(Kimbrel et al., OSDI 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("traces", help="summarize the built-in workloads")

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_common(run_parser)
    run_parser.add_argument(
        "--policy", "-p", default="forestall", choices=sorted(POLICIES)
    )
    run_parser.add_argument("--disks", "-d", type=int, default=1)

    sweep_parser = sub.add_parser("sweep", help="sweep policies x disks")
    _add_common(sweep_parser)
    sweep_parser.add_argument(
        "--policies", "-p", default=None, help="comma-separated policy names"
    )
    sweep_parser.add_argument("--disks", "-d", default="1,2,4")
    sweep_parser.add_argument(
        "--tuned-reverse", action="store_true",
        help="grid-search reverse aggressive's parameters per disk count",
    )

    figure_parser = sub.add_parser(
        "figure", help="render a paper-style stacked-bar figure"
    )
    _add_common(figure_parser)
    figure_parser.add_argument("--policies", "-p", default=None)
    figure_parser.add_argument("--disks", "-d", default="1,2,4")

    char_parser = sub.add_parser(
        "characterize", help="locality fingerprints of the workloads"
    )
    char_parser.add_argument("--traces", default=None,
                             help="comma-separated workload names")
    char_parser.add_argument("--scale", type=float, default=1.0)

    hints_parser = sub.add_parser(
        "hints", help="elapsed time under degraded hints"
    )
    _add_common(hints_parser)
    hints_parser.add_argument("--policies", "-p", default=None)
    hints_parser.add_argument("--disks", "-d", type=int, default=2)

    export_parser = sub.add_parser(
        "export", help="write a built-in workload to a trace file"
    )
    export_parser.add_argument("--trace", "-t", required=True,
                               choices=sorted(WORKLOADS))
    export_parser.add_argument("--scale", type=float, default=1.0)
    export_parser.add_argument(
        "--output", "-o", required=True,
        help="destination (.json for native format, else text)",
    )

    args = parser.parse_args(argv)
    handler = {
        "traces": cmd_traces,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "figure": cmd_figure,
        "characterize": cmd_characterize,
        "hints": cmd_hints,
        "export": cmd_export,
    }
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``repro-sim``.

Subcommands::

    repro-sim traces                        # Table 3 summary of all workloads
    repro-sim run -t ld -p forestall -d 4   # one simulation
    repro-sim sweep -t cscope2 -d 1,2,3,4   # all algorithms across an array
    repro-sim figure -t synth -d 1,2,3,4    # paper-style stacked-bar figure
    repro-sim characterize                  # locality fingerprints
    repro-sim hints -t cscope2 -d 2         # degraded-hint sensitivity
    repro-sim faults -t cscope2 -d 2        # fault-injection sensitivity
    repro-sim export -t ld -o ld.trace      # write a workload to a file
    repro-sim lint src/repro                # simlint determinism analysis
    repro-sim report -t ld -p forestall     # stall attribution + worst stalls
    repro-sim serve --store svc-store       # crash-safe simulation service

Use ``--scale`` to shrink workloads for quick experiments.  ``run`` and
``sweep`` accept ``--fault-*`` flags to inject transient read errors,
fail-slow spindles, and disk deaths (see ``docs/FAULTS.md``).

``sweep`` can run under the crash-safe supervised runner: ``--jobs N``
fans cells out to worker processes with per-cell ``--timeout-s`` and
crash retries, journaling every result so ``--resume`` (or
``repro-sim runs resume``) continues an interrupted sweep — bit-identical
to the serial run (see ``docs/RUNNER.md``).  ``repro-sim runs`` lists and
inspects run journals.

``run`` and ``report`` accept ``--trace-out FILE`` (Chrome ``trace_event``
JSON, loadable in Perfetto) and ``--metrics FILE`` (JSONL events +
metrics); either flag attaches a ``repro.obs`` observer, which never
changes simulation results (see ``docs/OBSERVABILITY.md``).  The flag is
``--trace-out`` because ``--trace`` already names the workload.
"""

import argparse
import json
import sys

from repro.analysis.experiments import ExperimentSetting, run_one, sweep_policies
from repro.analysis.figures import render_figure
from repro.analysis.locality import characterize
from repro.analysis.tables import format_breakdown_table, format_table
from repro.core import POLICIES, HintQuality
from repro.faults import DiskFailure, FaultSchedule, SlowWindow
from repro.lint.cli import add_lint_arguments, run_lint
from repro.trace import TABLE3, WORKLOADS, build as build_workload


def _split_list(raw: str, what: str, allowed=None):
    """Parse a comma-separated option value into a clean list.

    Tokens are stripped and empties dropped, so ``"a, b,"`` means
    ``["a", "b"]``.  Unknown tokens raise :class:`SystemExit` naming the
    offending token and the valid choices, instead of failing later with
    an opaque KeyError deep in the experiment code.
    """
    tokens = [token.strip() for token in raw.split(",")]
    tokens = [token for token in tokens if token]
    if not tokens:
        raise SystemExit(f"--{what} {raw!r}: expected a comma-separated list")
    if allowed is not None:
        for token in tokens:
            if token not in allowed:
                raise SystemExit(
                    f"--{what}: unknown value {token!r} "
                    f"(choose from {', '.join(sorted(allowed))})"
                )
    return tokens


def _split_ints(raw: str, what: str):
    """Like :func:`_split_list` but for integer lists such as ``--disks``."""
    values = []
    for token in _split_list(raw, what):
        try:
            values.append(int(token))
        except ValueError:
            raise SystemExit(f"--{what}: {token!r} is not an integer")
    return values


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", "-t", required=True, choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cache", type=int, default=None, help="cache blocks")
    parser.add_argument(
        "--discipline", choices=["cscan", "fcfs", "sstf"], default="cscan"
    )


def _setting(args) -> ExperimentSetting:
    return ExperimentSetting(
        scale=args.scale,
        discipline=args.discipline,
        cache_blocks=args.cache,
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--fault-error-rate", type=float, default=0.0, metavar="P",
        help="per-read transient error probability (default 0: no faults)",
    )
    group.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault draws",
    )
    group.add_argument(
        "--fault-slow", action="append", default=[], metavar="DISK:FACTOR[:START:END]",
        help="fail-slow window: service times on DISK multiplied by FACTOR "
        "(optionally only between START and END ms); repeatable",
    )
    group.add_argument(
        "--fault-kill", action="append", default=[], metavar="DISK@MS",
        help="permanent disk failure: DISK dies at MS wall-clock ms; repeatable",
    )
    group.add_argument(
        "--fault-max-retries", type=int, default=3,
        help="demand-fetch retry budget before UnrecoverableReadError",
    )
    group.add_argument(
        "--fault-backoff-ms", type=float, default=1.0,
        help="base retry backoff (doubles per attempt)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability (docs/OBSERVABILITY.md)")
    group.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON timeline (open in Perfetto); "
        "named --trace-out because --trace selects the workload",
    )
    group.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write events, counters, and histograms as JSON Lines",
    )
    group.add_argument(
        "--trace-full", action="store_true",
        help="include per-reference/per-fetch instants in the timeline "
        "(larger files; default keeps spans, counters, and faults)",
    )


def _maybe_observer(args):
    """An attached-to-nothing Observer when any --trace-out/--metrics flag
    asks for one; None otherwise (the zero-overhead default)."""
    if args.trace_out is None and args.metrics is None:
        return None
    from repro.obs import Observer

    return Observer()


def _write_obs_outputs(observer, args) -> None:
    if observer is None:
        return
    from repro.obs import write_chrome_trace, write_jsonl

    full = getattr(args, "trace_full", False)
    if args.trace_out is not None:
        write_chrome_trace(observer, args.trace_out, full=full)
        print(f"wrote timeline ({len(observer.events)} events) to "
              f"{args.trace_out} — open at https://ui.perfetto.dev")
    if args.metrics is not None:
        write_jsonl(observer, args.metrics)
        print(f"wrote metrics to {args.metrics}")


def _parse_slow(spec: str) -> SlowWindow:
    parts = spec.split(":")
    if len(parts) not in (2, 4):
        raise SystemExit(
            f"--fault-slow {spec!r}: expected DISK:FACTOR or DISK:FACTOR:START:END"
        )
    disk, factor = int(parts[0]), float(parts[1])
    if len(parts) == 2:
        return SlowWindow(factor=factor, disk=disk)
    return SlowWindow(factor=factor, disk=disk,
                      start_ms=float(parts[2]), end_ms=float(parts[3]))


def _parse_kill(spec: str) -> DiskFailure:
    disk, _, at_ms = spec.partition("@")
    if not _:
        raise SystemExit(f"--fault-kill {spec!r}: expected DISK@MS")
    return DiskFailure(disk=int(disk), at_ms=float(at_ms))


def _fault_schedule(args):
    """Build a FaultSchedule from --fault-* flags; None when all defaults."""
    try:
        schedule = FaultSchedule(
            seed=args.fault_seed,
            read_error_rate=args.fault_error_rate,
            slow_windows=tuple(_parse_slow(s) for s in args.fault_slow),
            disk_failures=tuple(_parse_kill(s) for s in args.fault_kill),
            max_retries=args.fault_max_retries,
            retry_backoff_ms=args.fault_backoff_ms,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid --fault-* flags: {exc}")
    return None if schedule.is_null else schedule


def cmd_traces(_args) -> int:
    rows = []
    for name in WORKLOADS:
        trace = build_workload(name)
        paper = TABLE3[name]
        rows.append(
            (
                name, trace.reads, trace.distinct_blocks,
                round(trace.compute_time_s, 1),
                paper[0], paper[1], paper[2],
            )
        )
    print(
        format_table(
            (
                "trace", "reads", "distinct", "compute_s",
                "paper_reads", "paper_distinct", "paper_compute_s",
            ),
            rows,
        )
    )
    return 0


def cmd_run(args) -> int:
    faults = _fault_schedule(args)
    overrides = {"faults": faults} if faults is not None else None
    profiler = None
    if args.profile or args.profile_json is not None:
        from repro.perf import PhaseProfiler

        profiler = PhaseProfiler()
    observer = _maybe_observer(args)
    result = run_one(
        _setting(args), args.trace, args.policy, args.disks,
        config_overrides=overrides, profiler=profiler, observer=observer,
    )
    print(format_breakdown_table([result]))
    if faults is not None:
        print(str(result))
    if observer is not None:
        from repro.analysis.tables import format_stall_table

        print()
        print("stall attribution:")
        print(format_stall_table(result))
    if profiler is not None:
        if args.profile:
            print()
            print("wall-clock phase breakdown (self time):")
            print(profiler.report())
        if args.profile_json is not None:
            payload = json.dumps(profiler.to_dict(), indent=2, sort_keys=True)
            if args.profile_json == "-":
                print(payload)
            else:
                with open(args.profile_json, "w") as handle:
                    handle.write(payload + "\n")
                print(f"wrote phase profile to {args.profile_json}")
    _write_obs_outputs(observer, args)
    return 0


def cmd_report(args) -> int:
    """Run one observed simulation and print the observability report:
    stall attribution, per-disk utilization, counters, histograms, and the
    top-K worst stalls with their surrounding event windows."""
    from repro.obs import Observer, render_report

    faults = _fault_schedule(args)
    overrides = {"faults": faults} if faults is not None else None
    observer = Observer()
    run_one(
        _setting(args), args.trace, args.policy, args.disks,
        config_overrides=overrides, observer=observer,
    )
    print(render_report(observer, top=args.top))
    _write_obs_outputs(observer, args)
    return 0


def _sweep_cells(args):
    """The sweep's declarative plan (shared by both execution paths)."""
    from repro.runner import Cell, sweep_cells

    disk_counts = _split_ints(args.disks, "disks")
    policies = (
        _split_list(args.policies, "policies", allowed=POLICIES)
        if args.policies else sorted(POLICIES)
    )
    faults = _fault_schedule(args)
    setting = _setting(args)
    if faults is None:
        return sweep_cells(
            setting, args.trace, policies, disk_counts,
            tuned_reverse=args.tuned_reverse,
        )
    return [
        Cell.from_setting(setting, args.trace, policy, disks,
                          config_overrides={"faults": faults})
        for policy in policies
        for disks in disk_counts
    ]


def cmd_sweep(args) -> int:
    supervised = (
        args.jobs is not None or args.resume or args.journal is not None
        or args.timeout_s is not None or args.max_minutes is not None
    )
    if supervised:
        return _cmd_sweep_supervised(args)
    from repro.runner import execute_cells

    results = [outcome.result for outcome in execute_cells(_sweep_cells(args))]
    print(format_breakdown_table(results))
    return 0


def _cmd_sweep_supervised(args) -> int:
    """Journaled, resumable, parallel sweep (docs/RUNNER.md)."""
    from repro.obs import MetricsRegistry
    from repro.runner import (
        default_journal_dir,
        format_failure,
        run_plan,
        write_json_atomic,
    )

    cells = _sweep_cells(args)
    journal_dir = args.journal or default_journal_dir(cells)
    metrics = MetricsRegistry()

    def progress(record, done, total):
        status = record["status"]
        detail = (
            f"digest={record['digest'][:12]} {record.get('wall_s', 0):.2f}s"
            if status == "ok"
            else f"{record.get('failure')}: {record['error']['message']}"
        )
        print(f"[{done}/{total}] {status:6s} {record['cell_id']}  {detail}")

    report = run_plan(
        cells,
        journal_dir=journal_dir,
        jobs=args.jobs or 1,
        timeout_s=args.timeout_s,
        max_retries=args.retries,
        retry_backoff_s=args.retry_backoff_s,
        resume=args.resume,
        max_minutes=args.max_minutes,
        metrics=metrics,
        progress=progress,
        argv=getattr(args, "_raw_argv", None),
    )
    results = [result for result in report.results() if result is not None]
    if results:
        print()
        print(format_breakdown_table(results))
    if report.skipped:
        print(f"resumed: skipped {report.skipped} completed cells")
    if report.failures:
        print(f"{len(report.failures)} cells failed:")
        for record in report.failures:
            print(format_failure(record))
    if report.stop_reason is not None:
        print(
            f"sweep {report.status} — journal saved to {journal_dir}; "
            f"continue with --resume (or: repro-sim runs resume "
            f"{journal_dir})"
        )
    counters = ", ".join(
        f"{name}={value}"
        for name, value in sorted(report.counters.items()) if value
    )
    print(f"runner: {counters or 'nothing to do'}  [journal: {journal_dir}]")
    if args.runner_metrics is not None:
        write_json_atomic(args.runner_metrics, metrics.to_dict())
        print(f"wrote runner metrics to {args.runner_metrics}")
    return report.exit_code


def cmd_runs(args) -> int:
    """List, inspect, and resume run journals."""
    import os

    from repro.runner import (
        Journal,
        format_run_detail,
        format_runs_table,
        resume_argv,
    )

    if args.runs_action == "list":
        print(format_runs_table(args.root))
        return 0

    directory = args.run
    if not os.path.isdir(directory):
        candidate = os.path.join(args.root, directory)
        if os.path.isdir(candidate):
            directory = candidate
        else:
            raise SystemExit(
                f"no run journal at {args.run!r} or {candidate!r} "
                f"(try: repro-sim runs list --root {args.root})"
            )
    journal = Journal(directory)

    if args.runs_action == "show":
        print(format_run_detail(journal, verbose=args.verbose))
        return 0

    # resume: re-issue the creating sweep command with --resume appended.
    argv = resume_argv(journal)
    if argv is None:
        raise SystemExit(
            f"{directory}: manifest records no creating command; re-run the "
            "original sweep with --resume and --journal pointing here"
        )
    print(f"resuming: repro-sim {' '.join(argv)}")
    return main(argv)


def cmd_serve(args) -> int:
    """Run the crash-safe simulation service (docs/SERVICE.md)."""
    from repro.svc import ProtocolLimits, ServiceConfig, serve_forever

    if args.log_json:
        from repro.obs import configure_logging

        configure_logging(level=args.log_level)
    trace = bool(args.trace or args.trace_out)
    limits = ProtocolLimits(
        max_header_bytes=args.max_header_bytes,
        max_body_bytes=args.max_body_bytes,
        header_timeout_s=args.header_timeout_s,
        body_timeout_s=args.body_timeout_s,
        max_connections=args.max_connections,
        reserved_read_connections=args.reserved_read_connections,
        max_requests_per_connection=args.max_requests_per_connection,
    )
    config = ServiceConfig(
        store_dir=args.store,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        request_timeout_s=args.request_timeout_s,
        cell_timeout_s=args.timeout_s,
        max_retries=args.retries,
        retry_backoff_s=args.retry_backoff_s,
        breaker_failures=args.breaker_failures,
        breaker_reset_s=args.breaker_reset_s,
        store_max_entries=args.store_max_entries,
        trace=trace,
        trace_out=args.trace_out,
        limits=limits,
        rate_limit_per_s=args.rate_limit_per_s,
        rate_limit_burst=args.rate_limit_burst,
    )
    deadline_s = args.max_minutes * 60.0 if args.max_minutes else None
    print(
        f"repro-sim service on http://{args.host}:{args.port} "
        f"(store: {args.store}, {args.jobs} workers"
        f"{', tracing' if trace else ''}) — "
        "POST /v1/cells, GET /v1/status; Ctrl-C drains gracefully"
    )
    return serve_forever(config, args.host, args.port, deadline_s)


def cmd_top(args) -> int:
    """Live ops console over a running service (docs/OBSERVABILITY.md)."""
    from repro.svc import run_top

    return run_top(
        host=args.host, port=args.port, interval_s=args.interval_s,
        iterations=1 if args.once else None, width=args.width,
    )


def cmd_loadgen(args) -> int:
    """Open-loop load generation against a running service, optionally
    through a client-side netchaos schedule (docs/SERVICE.md)."""
    import json as _json

    from repro.loadgen import DEFAULT_MIX, LoadgenConfig, run_loadgen_blocking
    from repro.svc import load_schedule

    mix = dict(DEFAULT_MIX)
    if args.mix:
        mix = {}
        for token in _split_list(args.mix, "mix"):
            kind, sep, weight = token.partition("=")
            if not sep:
                raise SystemExit(
                    f"--mix entries are kind=weight, got {token!r}"
                )
            try:
                mix[kind] = float(weight)
            except ValueError:
                raise SystemExit(f"bad --mix weight in {token!r}") from None
    specs = None
    if args.cells_file:
        with open(args.cells_file) as handle:
            specs = _json.load(handle)
        if not isinstance(specs, list) or not specs:
            raise SystemExit("--cells-file must hold a JSON list of specs")
    chaos = load_schedule(args.chaos) if args.chaos else None
    kwargs = {}
    if specs is not None:
        kwargs["specs"] = specs
    try:
        config = LoadgenConfig(
            host=args.host, port=args.port, rate_per_s=args.rate,
            duration_s=args.duration, seed=args.seed, mix=mix,
            timeout_s=args.timeout_s, chaos=chaos, **kwargs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    report = run_loadgen_blocking(config)
    rendered = _json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote loadgen report ({report['completed']} requests, "
              f"plan {report['plan']['fingerprint'][:12]}) to {args.report}")
    else:
        print(rendered)
    if report["digest_conflicts"]:
        print("DIGEST CONFLICTS: " + ", ".join(report["digest_conflicts"]))
        return 1
    return 0


def cmd_figure(args) -> int:
    disk_counts = _split_ints(args.disks, "disks")
    policies = (
        _split_list(args.policies, "policies", allowed=POLICIES)
        if args.policies
        else ["fixed-horizon", "aggressive", "forestall"]
    )
    setting = _setting(args)
    results = sweep_policies(setting, args.trace, policies, disk_counts)
    print(render_figure(f"{args.trace} — elapsed time breakdown", results))
    return 0


def cmd_characterize(args) -> int:
    names = (
        _split_list(args.traces, "traces", allowed=WORKLOADS)
        if args.traces else sorted(WORKLOADS)
    )
    rows = []
    for name in names:
        trace = build_workload(name, scale=args.scale)
        fp = characterize(trace)
        rows.append(
            (
                name, fp["references"], fp["distinct_blocks"],
                fp["sequentiality"], fp["hot10_share"],
                fp["miss_ratio_small_cache"], fp["miss_ratio_full_cache"],
            )
        )
    print(
        format_table(
            (
                "trace", "refs", "distinct", "sequentiality", "hot10",
                "miss@K/8", "miss@K",
            ),
            rows,
        )
    )
    return 0


def cmd_export(args) -> int:
    trace = build_workload(args.trace, scale=args.scale)
    from repro.trace import io as trace_io

    if args.output.endswith(".json"):
        trace.save(args.output)
    else:
        trace_io.dump(trace, args.output)
    print(f"wrote {trace.references} references "
          f"({trace.distinct_blocks} distinct blocks) to {args.output}")
    return 0


def cmd_hints(args) -> int:
    trace = build_workload(args.trace, scale=args.scale)
    import repro

    qualities = [
        ("perfect", HintQuality()),
        ("10% missing", HintQuality(missing_fraction=0.10, seed=42)),
        ("25% missing", HintQuality(missing_fraction=0.25, seed=42)),
        ("10% wrong", HintQuality(wrong_fraction=0.10, seed=42)),
    ]
    policies = (
        _split_list(args.policies, "policies", allowed=POLICIES)
        if args.policies
        else ["fixed-horizon", "aggressive", "forestall"]
    )
    rows = []
    for label, quality in qualities:
        row = [label]
        for policy in policies:
            result = repro.run_simulation(
                trace, policy=policy, num_disks=args.disks,
                cache_blocks=args.cache, hint_quality=quality,
            )
            row.append(round(result.elapsed_s, 2))
        rows.append(tuple(row))
    print(format_table(("hint quality",) + tuple(policies), rows))
    return 0


def cmd_faults(args) -> int:
    trace = build_workload(args.trace, scale=args.scale)
    import repro

    scenarios = [
        ("healthy", None),
        ("2% errors", FaultSchedule(read_error_rate=0.02, seed=args.fault_seed)),
        ("10% errors", FaultSchedule(read_error_rate=0.10, seed=args.fault_seed)),
        ("disk 0 3x slow",
         FaultSchedule(slow_windows=(SlowWindow(factor=3.0, disk=0),))),
        ("disk 0 10x slow",
         FaultSchedule(slow_windows=(SlowWindow(factor=10.0, disk=0),))),
    ]
    policies = (
        _split_list(args.policies, "policies", allowed=POLICIES)
        if args.policies
        else ["demand", "fixed-horizon", "aggressive", "forestall"]
    )
    rows = []
    for label, schedule in scenarios:
        row = [label]
        for policy in policies:
            result = repro.run_simulation(
                trace, policy=policy, num_disks=args.disks,
                cache_blocks=args.cache, faults=schedule,
            )
            row.append(round(result.elapsed_s, 2))
        rows.append(tuple(row))
    print(format_table(("fault scenario",) + tuple(policies), rows))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Trace-driven parallel prefetching/caching simulator "
        "(Kimbrel et al., OSDI 1996 reproduction)",
        epilog="exit codes: 0 success; 1 failed cells; 75 interrupted "
        "by a signal, resumable with --resume (sweep) or from the result "
        "store (serve); 76 stopped at --max-minutes, equally resumable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("traces", help="summarize the built-in workloads")

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_common(run_parser)
    run_parser.add_argument(
        "--policy", "-p", default="forestall", choices=sorted(POLICIES)
    )
    run_parser.add_argument("--disks", "-d", type=int, default=1)
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock phase breakdown of the simulator "
        "(policy / disk / cache / dispatch; see docs/PERFORMANCE.md)",
    )
    run_parser.add_argument(
        "--profile-json", default=None, metavar="FILE",
        help="write the phase profile as JSON (implies profiling; "
        "use - for stdout)",
    )
    _add_fault_flags(run_parser)
    _add_obs_flags(run_parser)

    sweep_parser = sub.add_parser("sweep", help="sweep policies x disks")
    _add_common(sweep_parser)
    _add_fault_flags(sweep_parser)
    sweep_parser.add_argument(
        "--policies", "-p", default=None, help="comma-separated policy names"
    )
    sweep_parser.add_argument("--disks", "-d", default="1,2,4")
    sweep_parser.add_argument(
        "--tuned-reverse", action="store_true",
        help="grid-search reverse aggressive's parameters per disk count",
    )
    runner_group = sweep_parser.add_argument_group(
        "supervised runner (docs/RUNNER.md)"
    )
    runner_group.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="run cells on N supervised worker processes with a crash-safe "
        "journal (default: in-process, unjournaled)",
    )
    runner_group.add_argument(
        "--journal", default=None, metavar="DIR",
        help="journal directory (default: runs/run-<planhash>, so the same "
        "sweep command finds its own journal)",
    )
    runner_group.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed in the journal; re-run failures",
    )
    runner_group.add_argument(
        "--timeout-s", type=float, default=None, metavar="S",
        help="kill any cell running longer than S seconds and record a "
        "structured timeout failure (the sweep continues)",
    )
    runner_group.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry budget for cells whose worker process crashes "
        "(exceptions are deterministic and never retried; default 2)",
    )
    runner_group.add_argument(
        "--retry-backoff-s", type=float, default=0.5, metavar="S",
        help="base backoff before a crash retry (doubles per attempt)",
    )
    runner_group.add_argument(
        "--max-minutes", type=float, default=None, metavar="M",
        help="stop dispatching after M minutes, drain in-flight cells, and "
        "exit resumable (code 76)",
    )
    runner_group.add_argument(
        "--runner-metrics", default=None, metavar="FILE",
        help="write runner counters (repro.obs metrics) as JSON",
    )
    sweep_parser.epilog = (
        "exit codes: 0 all cells completed; 1 some cells failed; "
        "75 interrupted by SIGINT/SIGTERM after a graceful drain "
        "(resume with --resume); 76 stopped at --max-minutes "
        "(also resumable)."
    )

    serve_parser = sub.add_parser(
        "serve",
        help="serve simulations over HTTP with a crash-safe result store",
        description="A long-lived simulation service: cells arrive as "
        "JSON over HTTP, results are cached in a content-addressed store "
        "(an identical request is O(1) and bit-identical), identical "
        "in-flight requests are coalesced, and overload answers 429/503 "
        "instead of queueing without bound (docs/SERVICE.md).",
        epilog="exit codes: 75 drained after SIGINT/SIGTERM — restart "
        "resumes from the store; 76 drained at --max-minutes.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument(
        "--store", default="svc-store", metavar="DIR",
        help="result store directory (default: svc-store)",
    )
    serve_parser.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="supervised worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="admission limit: cells in the system before 429 (default 32)",
    )
    serve_parser.add_argument(
        "--request-timeout-s", type=float, default=120.0, metavar="S",
        help="per-request timeout before 504 (default 120)",
    )
    serve_parser.add_argument(
        "--timeout-s", type=float, default=None, metavar="S",
        help="per-cell compute timeout (kills and respawns the worker)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="crash retry budget per cell (default 2)",
    )
    serve_parser.add_argument(
        "--retry-backoff-s", type=float, default=0.5, metavar="S",
        help="base crash-retry backoff, doubling per attempt (default 0.5)",
    )
    serve_parser.add_argument(
        "--breaker-failures", type=int, default=5, metavar="N",
        help="consecutive crash/timeouts that trip the circuit breaker "
        "(default 5)",
    )
    serve_parser.add_argument(
        "--breaker-reset-s", type=float, default=30.0, metavar="S",
        help="open-breaker cooldown before a half-open probe (default 30)",
    )
    serve_parser.add_argument(
        "--store-max-entries", type=int, default=None, metavar="N",
        help="bound store residency; beyond it the least recently used "
        "result is evicted (default: unbounded)",
    )
    serve_parser.add_argument(
        "--max-minutes", type=float, default=None, metavar="M",
        help="drain and exit 76 after M minutes (smoke tests, cron)",
    )
    serve_parser.add_argument(
        "--trace", action="store_true",
        help="record request-scoped service spans (http.parse, "
        "admission.wait, worker.execute, ...) merged with each computed "
        "cell's simulation timeline; export via GET /v1/trace "
        "(docs/OBSERVABILITY.md). Off by default: zero overhead when off.",
    )
    serve_parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the merged Perfetto timeline to FILE on drain "
        "(implies --trace)",
    )
    serve_parser.add_argument(
        "--log-json", action="store_true",
        help="structured JSON logs on stderr, one object per line, every "
        "record carrying the request correlation ID",
    )
    serve_parser.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="minimum level for --log-json (default info)",
    )
    serve_parser.add_argument(
        "--max-header-bytes", type=int, default=16 * 1024, metavar="N",
        help="request line + header budget before 431 (default 16384; "
        "hard ceiling 65536 — no configuration is memory-unbounded)",
    )
    serve_parser.add_argument(
        "--max-body-bytes", type=int, default=4 * 1024 * 1024, metavar="N",
        help="request body budget before 413 (default 4 MiB; hard "
        "ceiling 8 MiB)",
    )
    serve_parser.add_argument(
        "--header-timeout-s", type=float, default=10.0, metavar="S",
        help="deadline to receive the full header block before 408 — "
        "slowloris protection (default 10)",
    )
    serve_parser.add_argument(
        "--body-timeout-s", type=float, default=30.0, metavar="S",
        help="deadline to receive the full body before 408 (default 30)",
    )
    serve_parser.add_argument(
        "--max-connections", type=int, default=256, metavar="N",
        help="open connections beyond this are refused 503 + Retry-After "
        "at accept (default 256)",
    )
    serve_parser.add_argument(
        "--reserved-read-connections", type=int, default=32, metavar="N",
        help="connection headroom reserved for read-only routes: compute "
        "POSTs beyond max-connections minus this answer 429 while cached "
        "reads keep flowing (default 32)",
    )
    serve_parser.add_argument(
        "--max-requests-per-connection", type=int, default=100, metavar="N",
        help="keep-alive requests served per connection before close "
        "(default 100)",
    )
    serve_parser.add_argument(
        "--rate-limit-per-s", type=float, default=0.0, metavar="R",
        help="per-client token-bucket refill rate for compute requests; "
        "0 disables rate limiting (default 0)",
    )
    serve_parser.add_argument(
        "--rate-limit-burst", type=int, default=10, metavar="N",
        help="token-bucket depth per client when rate limiting is on "
        "(default 10)",
    )

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="open-loop load generator for a running service",
        description="Fire a seeded open-loop request plan at a running "
        "repro-sim serve instance: arrivals keep their timetable however "
        "the server copes, so overload shaping (429 sheds, rate limits, "
        "priority lanes) is measured instead of masked. The report "
        "carries a plan fingerprint — the same seed replays the same "
        "plan — plus per-kind status counts, latency percentiles, and a "
        "digest ledger that fails the run on any lost/duplicated result "
        "(docs/SERVICE.md, 'Overload and hostile networks').",
    )
    loadgen_parser.add_argument("--host", default="127.0.0.1")
    loadgen_parser.add_argument("--port", type=int, default=8642)
    loadgen_parser.add_argument(
        "--rate", type=float, default=20.0, metavar="R",
        help="mean arrival rate, requests/second (default 20)",
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=10.0, metavar="S",
        help="plan length in seconds (default 10)",
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=0,
        help="plan seed: arrivals, mix draws, and spec choices replay "
        "exactly (default 0)",
    )
    loadgen_parser.add_argument(
        "--mix", default=None, metavar="K=W,...",
        help="request mix as kind=weight pairs over cells, results, "
        "status, metrics, healthz (default cells=0.5,results=0.4,"
        "status=0.1)",
    )
    loadgen_parser.add_argument(
        "--cells-file", default=None, metavar="FILE",
        help="JSON list of cell specs to draw from (default: a built-in "
        "reduced-scale pool)",
    )
    loadgen_parser.add_argument(
        "--chaos", default=None, metavar="FILE",
        help="netchaos schedule JSON applied client-side per request "
        "(drips, drops, latency) — see docs/SERVICE.md for the format",
    )
    loadgen_parser.add_argument(
        "--timeout-s", type=float, default=30.0, metavar="S",
        help="per-request client timeout (default 30)",
    )
    loadgen_parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the JSON report to FILE instead of stdout",
    )

    top_parser = sub.add_parser(
        "top",
        help="live ops console for a running service",
        description="Poll GET /v1/status and /v1/metrics on an interval "
        "and redraw one terminal frame: breaker state, admission "
        "occupancy, worker utilization, store hit ratio, and request "
        "latency quantiles. Read-only.",
    )
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument("--port", type=int, default=8642)
    top_parser.add_argument(
        "--interval-s", type=float, default=2.0, metavar="S",
        help="refresh interval (default 2)",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (scripts, tests)",
    )
    top_parser.add_argument(
        "--width", type=int, default=80, metavar="COLS",
        help="frame width (default 80)",
    )

    runs_parser = sub.add_parser(
        "runs", help="list, inspect, and resume sweep run journals"
    )
    runs_sub = runs_parser.add_subparsers(dest="runs_action", required=True)
    runs_list = runs_sub.add_parser("list", help="summarize runs under --root")
    runs_list.add_argument("--root", default="runs")
    runs_show = runs_sub.add_parser(
        "show", help="manifest, digests, and outstanding failures of one run"
    )
    runs_show.add_argument("run", help="run directory (or name under --root)")
    runs_show.add_argument("--root", default="runs")
    runs_show.add_argument(
        "--verbose", "-v", action="store_true",
        help="include failure tracebacks",
    )
    runs_resume = runs_sub.add_parser(
        "resume", help="re-issue a journaled sweep command with --resume"
    )
    runs_resume.add_argument("run", help="run directory (or name under --root)")
    runs_resume.add_argument("--root", default="runs")

    figure_parser = sub.add_parser(
        "figure", help="render a paper-style stacked-bar figure"
    )
    _add_common(figure_parser)
    figure_parser.add_argument("--policies", "-p", default=None)
    figure_parser.add_argument("--disks", "-d", default="1,2,4")

    char_parser = sub.add_parser(
        "characterize", help="locality fingerprints of the workloads"
    )
    char_parser.add_argument("--traces", default=None,
                             help="comma-separated workload names")
    char_parser.add_argument("--scale", type=float, default=1.0)

    hints_parser = sub.add_parser(
        "hints", help="elapsed time under degraded hints"
    )
    _add_common(hints_parser)
    hints_parser.add_argument("--policies", "-p", default=None)
    hints_parser.add_argument("--disks", "-d", type=int, default=2)

    faults_parser = sub.add_parser(
        "faults", help="elapsed time under injected hardware faults"
    )
    _add_common(faults_parser)
    faults_parser.add_argument("--policies", "-p", default=None)
    faults_parser.add_argument("--disks", "-d", type=int, default=2)
    faults_parser.add_argument("--fault-seed", type=int, default=0)

    report_parser = sub.add_parser(
        "report", help="observed run: stall attribution, utilization, "
        "metrics, and the worst stalls with event context"
    )
    _add_common(report_parser)
    report_parser.add_argument(
        "--policy", "-p", default="forestall", choices=sorted(POLICIES)
    )
    report_parser.add_argument("--disks", "-d", type=int, default=1)
    report_parser.add_argument(
        "--top", type=int, default=5,
        help="how many worst stalls to show with event windows",
    )
    _add_fault_flags(report_parser)
    _add_obs_flags(report_parser)

    lint_parser = sub.add_parser(
        "lint", help="simlint: determinism & policy-contract static analysis"
    )
    add_lint_arguments(lint_parser)

    export_parser = sub.add_parser(
        "export", help="write a built-in workload to a trace file"
    )
    export_parser.add_argument("--trace", "-t", required=True,
                               choices=sorted(WORKLOADS))
    export_parser.add_argument("--scale", type=float, default=1.0)
    export_parser.add_argument(
        "--output", "-o", required=True,
        help="destination (.json for native format, else text)",
    )

    args = parser.parse_args(argv)
    # The raw argv is journaled by supervised sweeps so `repro-sim runs
    # resume` can re-issue the exact creating command.
    args._raw_argv = list(argv) if argv is not None else sys.argv[1:]
    handler = {
        "traces": cmd_traces,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "figure": cmd_figure,
        "characterize": cmd_characterize,
        "hints": cmd_hints,
        "faults": cmd_faults,
        "export": cmd_export,
        "report": cmd_report,
        "lint": run_lint,
        "runs": cmd_runs,
        "serve": cmd_serve,
        "top": cmd_top,
        "loadgen": cmd_loadgen,
    }
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""repro — integrated parallel prefetching and caching, reproduced.

A trace-driven simulation library re-implementing Kimbrel et al.,
"A Trace-Driven Comparison of Algorithms for Parallel Prefetching and
Caching" (OSDI 1996): the *fixed horizon*, *aggressive*, *reverse
aggressive*, and *forestall* algorithms, a demand-fetching baseline, an
HP 97560-class disk model with CSCAN/FCFS scheduling, striped disk arrays,
and synthetic re-creations of the paper's nine application traces.

Quickstart::

    import repro

    trace = repro.build_workload("postgres-select")
    result = repro.run_simulation(trace, policy="forestall", num_disks=4)
    print(result)
"""

from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from repro.obs import Observer

from repro.core import (
    CostBenefitAllocator,
    HintQuality,
    MultiProcessSimulator,
    POLICIES,
    ProcessResult,
    StaticAllocator,
    Aggressive,
    DemandFetching,
    FixedHorizon,
    Forestall,
    PrefetchPolicy,
    ReverseAggressive,
    SimConfig,
    SimulationResult,
    Simulator,
    make_policy,
)
from repro.faults import (
    DiskFailure,
    ErrorWindow,
    FaultSchedule,
    SlowWindow,
    UnrecoverableReadError,
)
from repro.trace import TABLE3, WORKLOADS, Trace, cache_blocks_for
from repro.trace import build as build_workload

__version__ = "1.0.0"


def run_simulation(
    trace: Trace,
    policy: Union[str, PrefetchPolicy] = "fixed-horizon",
    num_disks: int = 1,
    cache_blocks: Optional[int] = None,
    config: Optional[SimConfig] = None,
    hint_quality: Optional[HintQuality] = None,
    faults: Optional[FaultSchedule] = None,
    observer: Optional["Observer"] = None,
    **policy_kwargs: object,
) -> SimulationResult:
    """Simulate ``trace`` under ``policy`` on a ``num_disks`` array.

    ``policy`` may be a registry name (see :data:`POLICIES`) or a
    :class:`PrefetchPolicy` instance.  ``cache_blocks`` defaults to the
    paper's per-trace choice (512 or 1280 blocks).  ``hint_quality``
    degrades the hints the policy sees (missing/wrong fractions) while the
    application still follows the true reference stream.  ``faults``
    injects hardware faults (transient read errors, fail-slow spindles,
    disk death — see :class:`FaultSchedule` and ``docs/FAULTS.md``).
    ``observer`` (a :class:`repro.obs.Observer`) records the event trace,
    metrics, and stall attribution without perturbing the result (see
    ``docs/OBSERVABILITY.md``).  Any extra keyword arguments are forwarded
    to the policy constructor.
    """
    if config is None:
        config = SimConfig()
    if cache_blocks is None:
        cache_blocks = cache_blocks_for(trace.name)
    if cache_blocks != config.cache_blocks:
        config = config.with_(cache_blocks=cache_blocks)
    if faults is not None:
        config = config.with_(faults=faults)
    hints: Optional[List[Optional[int]]] = None
    if hint_quality is not None and not hint_quality.perfect:
        from repro.core.hints import degrade_hints

        hints = degrade_hints(trace, hint_quality)
    policy_instance = make_policy(policy, **policy_kwargs)
    simulator = Simulator(trace, policy_instance, num_disks, config,
                          hints=hints, observer=observer)
    return simulator.run()


__all__ = [
    "Aggressive",
    "CostBenefitAllocator",
    "DiskFailure",
    "ErrorWindow",
    "FaultSchedule",
    "HintQuality",
    "SlowWindow",
    "UnrecoverableReadError",
    "MultiProcessSimulator",
    "ProcessResult",
    "StaticAllocator",
    "DemandFetching",
    "FixedHorizon",
    "Forestall",
    "POLICIES",
    "PrefetchPolicy",
    "ReverseAggressive",
    "SimConfig",
    "SimulationResult",
    "Simulator",
    "TABLE3",
    "Trace",
    "WORKLOADS",
    "build_workload",
    "cache_blocks_for",
    "make_policy",
    "run_simulation",
]

"""Disk head scheduling disciplines: FCFS, CSCAN, and SSTF.

Each per-disk queue holds outstanding read requests while the drive is busy.
CSCAN serves requests in ascending cylinder order starting from the head's
current cylinder and wraps around to the lowest cylinder — always sweeping
in the direction the platter readahead runs, which is why the paper prefers
it to SCAN on the HP 97560.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple, Type, Union


@dataclass(frozen=True)
class Request:
    """An outstanding request for one disk.

    ``block`` is the application-level block identity; ``lbn`` is the block's
    address on this disk.  ``seq`` breaks ties deterministically in arrival
    order.  ``kind`` is ``"read"`` (fetch into the cache) or ``"write"``
    (write-behind flush of an evicted dirty block).  ``attempt`` counts
    prior failed attempts at this fetch: 0 for a first issue, n for the
    n-th retry after transient read errors (see :mod:`repro.faults`).
    """

    lbn: int
    block: int
    seq: int
    kind: str = "read"
    attempt: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for trace exports (``repro.obs``)."""
        row: Dict[str, object] = {
            "lbn": self.lbn, "block": self.block, "seq": self.seq,
            "kind": self.kind,
        }
        if self.attempt:
            row["attempt"] = self.attempt
        return row


class FCFSQueue:
    """First-come first-served request queue.

    Backed by a deque: ``pop`` is O(1).  A list's ``pop(0)`` shifts the
    whole queue, turning a demand burst of depth n into O(n^2) work.
    """

    name = "fcfs"

    def __init__(self, cylinder_of: Optional[Callable[[int], int]] = None) -> None:
        self._queue: Deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._queue.append(request)

    def pop(self, head_cylinder: int) -> Optional[Request]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Request]:
        return iter(list(self._queue))


class CSCANQueue:
    """Circular-SCAN request queue.

    Requests are kept sorted by (cylinder, lbn, seq); ``pop`` returns the
    first request at or past the head's current cylinder, wrapping to the
    lowest cylinder when the sweep reaches the end.
    """

    name = "cscan"

    def __init__(self, cylinder_of: Optional[Callable[[int], int]] = None) -> None:
        self._cylinder_of = cylinder_of if cylinder_of is not None else (lambda lbn: lbn)
        self._keys: List[Tuple[int, int, int]] = []  # sorted (cylinder, lbn, seq)
        self._requests: Dict[Tuple[int, int, int], Request] = {}

    def push(self, request: Request) -> None:
        key = (self._cylinder_of(request.lbn), request.lbn, request.seq)
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._requests[key] = request

    def pop(self, head_cylinder: int) -> Optional[Request]:
        if not self._keys:
            return None
        index = bisect.bisect_left(self._keys, (head_cylinder, -1, -1))
        if index == len(self._keys):
            index = 0  # wrap: sweep restarts at the lowest cylinder
        key = self._keys.pop(index)
        return self._requests.pop(key)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Request]:
        return iter([self._requests[key] for key in self._keys])


class SSTFQueue:
    """Shortest-seek-time-first request queue.

    Serves whichever request is closest to the head's current cylinder.
    Greedy and starvation-prone (a steady stream of nearby requests can
    strand a distant one forever), which is why the paper's systems use
    CSCAN; it exists here as the classic comparison point.
    """

    name = "sstf"

    def __init__(self, cylinder_of: Optional[Callable[[int], int]] = None) -> None:
        self._cylinder_of = cylinder_of if cylinder_of is not None else (lambda lbn: lbn)
        self._keys: List[Tuple[int, int]] = []  # sorted (cylinder, seq)
        self._requests: Dict[Tuple[int, int], Request] = {}

    def push(self, request: Request) -> None:
        key = (self._cylinder_of(request.lbn), request.seq)
        bisect.insort(self._keys, key)
        self._requests[key] = request

    def pop(self, head_cylinder: int) -> Optional[Request]:
        # The nearest request is the lowest-seq entry of either the nearest
        # cylinder at/above the head or the nearest cylinder below it; keys
        # are sorted (cylinder, seq), so each is one bisect away — no linear
        # scan.  Tie-breaking matches the definitional argmin over
        # (|cylinder - head|, seq) exactly.
        keys = self._keys
        if not keys:
            return None
        index = bisect.bisect_left(keys, (head_cylinder, -1))
        best_index = None
        if index < len(keys):
            above = keys[index]
            best_index = index
            best = (above[0] - head_cylinder, above[1])
        if index > 0:
            below_cylinder = keys[index - 1][0]
            below_index = bisect.bisect_left(keys, (below_cylinder, -1))
            below = keys[below_index]
            candidate = (head_cylinder - below[0], below[1])
            if best_index is None or candidate < best:
                best_index = below_index
        assert best_index is not None  # keys is non-empty
        key = keys.pop(best_index)
        return self._requests.pop(key)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Request]:
        # Arrival order, like the original list-backed queue: seq is
        # assigned monotonically at submit time.
        return iter(sorted(self._requests.values(), key=lambda r: r.seq))


#: Any of the three disciplines — they share push/pop/len/iter.
RequestQueue = Union[FCFSQueue, CSCANQueue, SSTFQueue]

_QUEUE_TYPES: Dict[str, Type[Union[FCFSQueue, CSCANQueue, SSTFQueue]]] = {
    "fcfs": FCFSQueue, "cscan": CSCANQueue, "sstf": SSTFQueue,
}


def make_queue(
    discipline: str, cylinder_of: Optional[Callable[[int], int]] = None
) -> RequestQueue:
    """Build a request queue for the named discipline ("fcfs" or "cscan")."""
    try:
        queue_type = _QUEUE_TYPES[discipline.lower()]
    except KeyError:
        raise ValueError(
            f"unknown disk scheduling discipline {discipline!r}; "
            f"expected one of {sorted(_QUEUE_TYPES)}"
        ) from None
    return queue_type(cylinder_of)

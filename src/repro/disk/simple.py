"""Uniform-service-time drive model.

This stands in for the paper's second simulator (CMU's modified RaidSim with
IBM 0661 drives) in the Table 2 cross-validation: a structurally different
disk model that should nonetheless produce the same algorithm rankings.  It
is also the disk model of the *theoretical* framework (every fetch costs F),
which makes it useful for tests that want deterministic service times.
"""

from typing import Optional

from repro.disk.drive import ServiceBreakdown


class SimpleDrive:
    """A drive whose every request costs a fixed time, plus optional
    sequential discount.

    ``sequential_ms`` (if given) is charged when the request immediately
    follows the previous one on the LBN axis, mimicking a readahead cache
    with none of the mechanics.
    """

    def __init__(
        self, access_ms: float = 15.0, sequential_ms: Optional[float] = None
    ) -> None:
        self.access_ms = access_ms
        self.sequential_ms = sequential_ms
        self._last_lbn: Optional[int] = None
        self.requests_served = 0
        self.cache_hits = 0

    def service(self, lbn: int, start_time: float) -> ServiceBreakdown:
        sequential = self._last_lbn is not None and lbn == self._last_lbn + 1
        self._last_lbn = lbn
        self.requests_served += 1
        if sequential and self.sequential_ms is not None:
            self.cache_hits += 1
            return ServiceBreakdown(transfer=self.sequential_ms, cache_hit=True)
        return ServiceBreakdown(transfer=self.access_ms)

    @property
    def cylinder(self) -> int:
        """LBN ordering proxy so CSCAN still sorts sensibly."""
        return 0 if self._last_lbn is None else self._last_lbn

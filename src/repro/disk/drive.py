"""Detailed single-disk service-time model.

The drive services one request at a time.  A request's service time is the
sum of controller overhead, seek, rotational latency, and media transfer —
unless the block is resident in the drive's readahead cache, in which case
only controller overhead and a bus transfer are charged.

Rotational position is a pure function of wall-clock time (the platter never
stops spinning), so the model only has to remember the head's cylinder/track
and the state of the readahead cache between requests.

After every mechanical read the drive keeps reading sequentially into its
cache (128 KB on the HP 97560); a block ``k`` positions past the last
mechanical read becomes available roughly ``k`` media-transfer times later.
This is what gives sequential workloads their 3–4 ms average response times
in the paper.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.disk.geometry import HP97560, DiskGeometry
from repro.disk.seek import SeekModel


@dataclass
class ServiceBreakdown:
    """Component times of one serviced request (all ms).

    ``fault_ms`` is extra service time added by fault injection — a
    fail-slow spindle stretching the mechanical work (see
    :mod:`repro.faults`).  It is zero on healthy hardware.
    """

    overhead: float = 0.0
    seek: float = 0.0
    rotation: float = 0.0
    transfer: float = 0.0
    cache_wait: float = 0.0
    fault_ms: float = 0.0
    cache_hit: bool = False

    @property
    def total(self) -> float:
        return (
            self.overhead
            + self.seek
            + self.rotation
            + self.transfer
            + self.cache_wait
            + self.fault_ms
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready component breakdown (zero components omitted), used
        by the ``repro.obs`` disk-busy trace events."""
        row: Dict[str, object] = {"total_ms": self.total}
        for name in ("overhead", "seek", "rotation", "transfer",
                     "cache_wait", "fault_ms"):
            value = getattr(self, name)
            if value:
                row[name] = value
        if self.cache_hit:
            row["cache_hit"] = True
        return row


class DiskDrive:
    """HP 97560-class drive with seek curve, rotation, and readahead cache.

    Stateful: :meth:`service` must be called in nondecreasing start-time
    order (the array layer guarantees this since each drive serves one
    request at a time).
    """

    def __init__(
        self,
        geometry: DiskGeometry = HP97560,
        seek_model: Optional[SeekModel] = None,
        readahead: bool = True,
    ) -> None:
        self.geometry = geometry
        self.seek_model = seek_model if seek_model is not None else SeekModel()
        self.readahead = readahead
        self._cylinder = 0
        self._track = 0
        # Readahead cache state: blocks [origin, origin + span) are (or are
        # becoming) cached; block origin+k is ready at origin_time + k*media.
        self._ra_origin = -1
        self._ra_origin_time = 0.0
        self._ra_span = 0
        self.requests_served = 0
        self.cache_hits = 0

    # -- cache helpers -------------------------------------------------------

    def _cache_ready_time(self, lbn: int) -> Optional[float]:
        """Return when ``lbn`` is available in the readahead cache, or None."""
        if not self.readahead or self._ra_origin < 0:
            return None
        offset = lbn - self._ra_origin
        if not 0 <= offset < self._ra_span:
            return None
        # Streaming rate approximated by the origin block's zone.
        return self._ra_origin_time + offset * self.geometry.media_transfer_ms(
            self._ra_origin
        )

    def _start_readahead(self, lbn: int, done_time: float) -> None:
        """Begin prefetching the blocks after ``lbn`` into the drive cache."""
        if not self.readahead:
            return
        self._ra_origin = lbn + 1
        self._ra_origin_time = done_time + self.geometry.media_transfer_ms(lbn)
        self._ra_span = min(
            self.geometry.cache_blocks,
            self.geometry.total_blocks - self._ra_origin,
        )

    def _mechanical_estimate(self, lbn: int, t: float) -> float:
        """Time a mechanical read of ``lbn`` would take starting at ``t``
        (past the controller overhead), without touching drive state."""
        geom = self.geometry
        target_cyl = geom.block_to_cylinder(lbn)
        target_track = geom.block_to_track(lbn)
        if target_cyl != self._cylinder:
            seek = self.seek_model.seek_time(target_cyl - self._cylinder)
        elif target_track != self._track:
            seek = geom.head_switch_ms
        else:
            seek = 0.0
        arrival = t + seek
        rotation_ms = geom.rotation_ms
        angle_fraction = (arrival / rotation_ms) % 1.0
        target_fraction = geom.rotational_fraction(lbn)
        rotation = ((target_fraction - angle_fraction) % 1.0) * rotation_ms
        return seek + rotation + geom.media_transfer_ms(lbn)

    # -- service -------------------------------------------------------------

    def service(self, lbn: int, start_time: float) -> ServiceBreakdown:
        """Service a read of block ``lbn`` beginning at ``start_time``.

        Returns the per-component breakdown; the completion time is
        ``start_time + breakdown.total``.
        """
        geom = self.geometry
        geom._check_block(lbn)
        out = ServiceBreakdown(overhead=geom.controller_overhead_ms)
        t = start_time + out.overhead

        ready = self._cache_ready_time(lbn)
        if ready is not None:
            cache_wait = max(0.0, ready - t)
            cache_total = cache_wait + geom.block_bus_transfer_ms
            # A distant readahead block may still be streaming off the
            # media; the drive serves whichever path finishes first, and a
            # fresh mechanical read beats waiting out a long stream.
            if cache_total <= self._mechanical_estimate(lbn, t):
                out.cache_hit = True
                out.cache_wait = cache_wait
                out.transfer = geom.block_bus_transfer_ms
                self.requests_served += 1
                self.cache_hits += 1
                return out

        target_cyl = geom.block_to_cylinder(lbn)
        target_track = geom.block_to_track(lbn)
        if target_cyl != self._cylinder:
            out.seek = self.seek_model.seek_time(target_cyl - self._cylinder)
        elif target_track != self._track:
            out.seek = geom.head_switch_ms
        t += out.seek

        # The platter angle is a function of absolute time.
        rotation = geom.rotation_ms
        angle_fraction = (t / rotation) % 1.0
        target_fraction = geom.rotational_fraction(lbn)
        out.rotation = ((target_fraction - angle_fraction) % 1.0) * rotation
        t += out.rotation

        # Bus is faster than the media on this drive, so transfers overlap.
        out.transfer = geom.media_transfer_ms(lbn)
        t += out.transfer

        self._cylinder = target_cyl
        self._track = target_track
        self._start_readahead(lbn, t)
        self.requests_served += 1
        return out

    @property
    def cylinder(self) -> int:
        """Current head cylinder (used by CSCAN scheduling)."""
        return self._cylinder

"""Disk geometry: physical layout constants and LBN address arithmetic.

All times in this package are expressed in **milliseconds** and all sizes in
**bytes** unless a name says otherwise.  Logical block numbers (LBNs) address
fixed-size file-system blocks (8 KB in the paper); sector numbers address
512-byte device sectors.
"""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class DiskGeometry:
    """Physical characteristics of a disk drive.

    The defaults of the module-level :data:`HP97560` instance match Table 1
    of the paper (HP 97560 per Ruemmler & Wilkes).
    """

    sector_size: int = 512
    sectors_per_track: int = 72
    tracks_per_cylinder: int = 19
    cylinders: int = 1962
    rpm: float = 4002.0
    cache_bytes: int = 128 * 1024
    transfer_rate_bytes_per_ms: float = 10_000_000 / 1000.0  # 10 MB/s SCSI-II
    block_size: int = 8192
    # Fixed per-request controller/command processing time at the drive.
    controller_overhead_ms: float = 1.1
    # Time to switch between heads within a cylinder.
    head_switch_ms: float = 2.5

    def __post_init__(self) -> None:
        if self.block_size % self.sector_size:
            raise ValueError("block_size must be a multiple of sector_size")

    @property
    def sectors_per_cylinder(self) -> int:
        return self.sectors_per_track * self.tracks_per_cylinder

    @property
    def sectors_per_block(self) -> int:
        return self.block_size // self.sector_size

    @property
    def blocks_per_track(self) -> float:
        return self.sectors_per_track / self.sectors_per_block

    @property
    def blocks_per_cylinder(self) -> int:
        return self.sectors_per_cylinder // self.sectors_per_block

    @property
    def total_sectors(self) -> int:
        return self.sectors_per_cylinder * self.cylinders

    @property
    def total_blocks(self) -> int:
        return self.total_sectors // self.sectors_per_block

    @property
    def rotation_ms(self) -> float:
        """Time for one full platter revolution."""
        return 60_000.0 / self.rpm

    @property
    def sector_time_ms(self) -> float:
        """Time for one sector to pass under the head."""
        return self.rotation_ms / self.sectors_per_track

    @property
    def block_media_transfer_ms(self) -> float:
        """Time to read one block off the media (no seek/rotate)."""
        return self.sector_time_ms * self.sectors_per_block

    @property
    def block_bus_transfer_ms(self) -> float:
        """Time to move one block over the interface bus."""
        return self.block_size / self.transfer_rate_bytes_per_ms

    @property
    def cache_blocks(self) -> int:
        """Capacity of the on-drive readahead cache, in blocks."""
        return self.cache_bytes // self.block_size

    # --- address arithmetic -------------------------------------------------

    def block_to_sector(self, lbn: int) -> int:
        return lbn * self.sectors_per_block

    def sector_to_cylinder(self, sector: int) -> int:
        return sector // self.sectors_per_cylinder

    def block_to_cylinder(self, lbn: int) -> int:
        self._check_block(lbn)
        return self.sector_to_cylinder(self.block_to_sector(lbn))

    def block_to_track(self, lbn: int) -> int:
        """Absolute track index (cylinder * tracks_per_cylinder + head)."""
        self._check_block(lbn)
        return self.block_to_sector(lbn) // self.sectors_per_track

    def block_rotational_offset(self, lbn: int) -> int:
        """First sector of the block within its track."""
        self._check_block(lbn)
        return self.block_to_sector(lbn) % self.sectors_per_track

    def _check_block(self, lbn: int) -> None:
        if not 0 <= lbn < self.total_blocks:
            raise ValueError(
                f"LBN {lbn} out of range [0, {self.total_blocks})"
            )

    # -- per-LBN rotational interface (overridden by zoned geometries) -------

    def rotational_fraction(self, lbn: int) -> float:
        """Angular position of the block's first sector, as a fraction of
        one revolution."""
        return self.block_rotational_offset(lbn) / self.sectors_per_track

    def media_transfer_ms(self, lbn: int) -> float:
        """Time to stream this block off the media (zone-dependent on
        zoned drives; uniform here)."""
        return self.block_media_transfer_ms


HP97560 = DiskGeometry()
"""The HP 97560 geometry from Table 1 of the paper."""

IBM0661 = DiskGeometry(
    sector_size=512,
    sectors_per_track=48,
    tracks_per_cylinder=14,
    cylinders=949,
    rpm=4316.0,
    cache_bytes=32 * 1024,
    transfer_rate_bytes_per_ms=10_000_000 / 1000.0,
    controller_overhead_ms=1.0,
    head_switch_ms=1.5,
)
"""The IBM 0661 "Lightning" (Lee & Katz constants) — the drive RaidSim
modelled for the paper's second (CMU) simulator."""


@dataclass(frozen=True)
class Zone:
    """A band of cylinders sharing a sectors-per-track count."""

    cylinders: int
    sectors_per_track: int


@dataclass(frozen=True)
class ZonedGeometry(DiskGeometry):
    """Zone-bit-recorded drive: outer zones pack more sectors per track.

    ``sectors_per_track`` on the base class is interpreted as nominal
    (used nowhere once zones are given); addressing walks the zone table.
    The default four-zone layout is an illustrative HP 97560-class
    variant (mean ~72 sectors/track), not a published zone map — the
    paper's Kotz/Ruemmler-Wilkes model is flat, so this exists for the
    zoning ablation.
    """

    zones: Tuple[Zone, ...] = (
        Zone(500, 84),
        Zone(500, 76),
        Zone(500, 68),
        Zone(462, 60),
    )
    # Derived in __post_init__ (via object.__setattr__; the class is frozen).
    _zone_starts: Tuple[Tuple[int, int, Zone], ...] = field(
        init=False, repr=False, compare=False
    )
    _total_blocks: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if sum(zone.cylinders for zone in self.zones) != self.cylinders:
            raise ValueError("zone cylinders must sum to the cylinder count")
        starts: List[Tuple[int, int, Zone]] = []
        block_start = 0
        cylinder_start = 0
        for zone in self.zones:
            starts.append((block_start, cylinder_start, zone))
            block_start += self._zone_blocks(zone)
            cylinder_start += zone.cylinders
        object.__setattr__(self, "_zone_starts", tuple(starts))
        object.__setattr__(self, "_total_blocks", block_start)

    def _zone_blocks(self, zone: Zone) -> int:
        sectors = zone.cylinders * self.tracks_per_cylinder * zone.sectors_per_track
        return sectors // self.sectors_per_block

    @property
    def total_blocks(self) -> int:
        return self._total_blocks

    def _zone_of(self, lbn: int) -> Tuple[int, int, Zone]:
        self._check_block(lbn)
        for block_start, cylinder_start, zone in reversed(self._zone_starts):
            if lbn >= block_start:
                return block_start, cylinder_start, zone
        raise AssertionError("unreachable")

    def _locate(self, lbn: int) -> Tuple[Zone, int, int, int]:
        """(zone, cylinder, track-in-cylinder, sector offset in track)."""
        block_start, cylinder_start, zone = self._zone_of(lbn)
        sector = (lbn - block_start) * self.sectors_per_block
        per_cylinder = zone.sectors_per_track * self.tracks_per_cylinder
        cylinder = cylinder_start + sector // per_cylinder
        within = sector % per_cylinder
        track = within // zone.sectors_per_track
        offset = within % zone.sectors_per_track
        return zone, cylinder, track, offset

    def block_to_cylinder(self, lbn: int) -> int:
        _zone, cylinder, _track, _offset = self._locate(lbn)
        return cylinder

    def block_to_track(self, lbn: int) -> int:
        _zone, cylinder, track, _offset = self._locate(lbn)
        return cylinder * self.tracks_per_cylinder + track

    def block_rotational_offset(self, lbn: int) -> int:
        _zone, _cylinder, _track, offset = self._locate(lbn)
        return offset

    def rotational_fraction(self, lbn: int) -> float:
        zone, _cylinder, _track, offset = self._locate(lbn)
        return offset / zone.sectors_per_track

    def media_transfer_ms(self, lbn: int) -> float:
        zone, _c, _t, _o = self._locate(lbn)
        sector_time = self.rotation_ms / zone.sectors_per_track
        return sector_time * self.sectors_per_block


HP97560_ZONED = ZonedGeometry()
"""An illustrative zoned HP 97560-class geometry (see ZonedGeometry)."""

"""Disk subsystem: drive models, head scheduling, and striped arrays.

The detailed drive model (:class:`~repro.disk.drive.DiskDrive`) follows the
HP 97560 characteristics used by the paper (Table 1): the published seek
curve, 4002 rpm rotation, 72 sectors per track, 19 tracks per cylinder,
1962 cylinders, a 128 KB readahead cache, and a 10 MB/s SCSI-II interface.
A uniform-service-time model (:class:`~repro.disk.simple.SimpleDrive`)
stands in for the paper's second (CMU/RaidSim) simulator in the Table 2
cross-validation.
"""

from repro.disk.array import DiskArray, Placement, StripedLayout
from repro.disk.drive import DiskDrive
from repro.disk.geometry import HP97560, HP97560_ZONED, IBM0661, DiskGeometry, Zone, ZonedGeometry
from repro.disk.scheduler import CSCANQueue, FCFSQueue, Request, SSTFQueue, make_queue
from repro.disk.seek import IBM0661_SEEK, LeeKatzSeek, SeekModel
from repro.disk.simple import SimpleDrive

__all__ = [
    "CSCANQueue",
    "DiskArray",
    "DiskDrive",
    "DiskGeometry",
    "FCFSQueue",
    "HP97560",
    "HP97560_ZONED",
    "IBM0661",
    "IBM0661_SEEK",
    "LeeKatzSeek",
    "Placement",
    "Request",
    "SeekModel",
    "SSTFQueue",
    "SimpleDrive",
    "StripedLayout",
    "Zone",
    "ZonedGeometry",
    "make_queue",
]

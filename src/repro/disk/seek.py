"""Seek-time model for the HP 97560.

Ruemmler & Wilkes ("An Introduction to Disk Drive Modelling", IEEE Computer
1994) publish a two-piece curve for the HP 97560 that the paper's simulator
(via Kotz et al.) uses:

* short seeks (fewer than 383 cylinders):  ``3.24 + 0.400 * sqrt(d)`` ms
* long seeks (383 cylinders or more):      ``8.00 + 0.008 * d`` ms

A zero-distance "seek" costs nothing: the head is already on-cylinder.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SeekModel:
    """Two-piece sqrt/linear seek curve.

    The default constants are the published HP 97560 values.  The crossover
    point is where the drive transitions from the acceleration-dominated to
    the coast-dominated regime.
    """

    short_base_ms: float = 3.24
    short_sqrt_coeff: float = 0.400
    long_base_ms: float = 8.00
    long_linear_coeff: float = 0.008
    crossover_cylinders: int = 383

    def seek_time(self, distance_cylinders: int) -> float:
        """Seek time in ms for a move of ``distance_cylinders`` cylinders."""
        d = abs(distance_cylinders)
        if d == 0:
            return 0.0
        if d < self.crossover_cylinders:
            return self.short_base_ms + self.short_sqrt_coeff * math.sqrt(d)
        return self.long_base_ms + self.long_linear_coeff * d

    def max_seek_within(self, group_cylinders: int) -> float:
        """Worst-case seek inside a contiguous group of cylinders.

        The paper notes the maximum seek within a 100-cylinder file group is
        7.24 ms — i.e. ``seek_time(100)`` = 3.24 + 0.4·√100; this helper
        exists so tests can pin that figure.
        """
        return self.seek_time(group_cylinders)


@dataclass(frozen=True)
class LeeKatzSeek(SeekModel):
    """Combined-form seek curve: ``a + b*d + c*sqrt(d)``.

    Lee & Katz model the IBM 0661 (Lightning) — the drive behind the
    paper's second (CMU/RaidSim) simulator — as
    ``2.0 + 0.01*d + 0.46*sqrt(d)`` ms.
    """

    base_ms: float = 2.0
    linear_coeff: float = 0.01
    sqrt_coeff: float = 0.46

    def seek_time(self, distance_cylinders: int) -> float:
        d = abs(distance_cylinders)
        if d == 0:
            return 0.0
        return self.base_ms + self.linear_coeff * d + self.sqrt_coeff * math.sqrt(d)


#: The IBM 0661 seek curve used by RaidSim-era studies.
IBM0661_SEEK = LeeKatzSeek()

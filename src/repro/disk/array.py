"""Striped disk arrays and data placement.

The paper stripes data across the array with a one-block stripe unit, and
places each *file* at a random starting point within a group of 8550 blocks
(100 cylinders on the HP 97560), modelling typical file-system clustering.
Traces that use raw logical block numbers are placed directly.
"""

import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)

from repro.disk.drive import DiskDrive, ServiceBreakdown
from repro.disk.geometry import HP97560, DiskGeometry
from repro.disk.scheduler import Request, RequestQueue, make_queue

if TYPE_CHECKING:
    from repro.faults.schedule import FaultSchedule

#: Size of a file placement group, in blocks (100 HP 97560 cylinders).
PLACEMENT_GROUP_BLOCKS = 8550


class DriveModel(Protocol):
    """What the array needs from a drive: a head position for scheduling
    and a service-time model (satisfied by :class:`DiskDrive` and
    :class:`~repro.disk.simple.SimpleDrive`)."""

    @property
    def cylinder(self) -> int: ...

    def service(self, lbn: int, start_time: float) -> ServiceBreakdown: ...


@dataclass(frozen=True)
class StripedLayout:
    """One-block stripe unit across ``num_disks`` disks.

    Global block ``g`` lives on disk ``g % num_disks`` at per-disk address
    ``g // num_disks``.
    """

    num_disks: int

    def disk_of(self, global_block: int) -> int:
        return global_block % self.num_disks

    def lbn_of(self, global_block: int) -> int:
        return global_block // self.num_disks


class Placement:
    """Maps trace block identities to global array block numbers.

    Blocks with file structure (``(file_id, offset)``) get a per-file random
    group start, emulating file-system clustering; plain integer block ids
    are used as-is (the paper's "logical filesystem block number" traces).
    """

    def __init__(
        self,
        total_blocks: int,
        group_blocks: int = PLACEMENT_GROUP_BLOCKS,
        seed: int = 0,
    ) -> None:
        self.total_blocks = total_blocks
        self.group_blocks = group_blocks
        self._rng = random.Random(seed)
        self._file_starts: Dict[int, int] = {}

    def _start_for_file(self, file_id: int) -> int:
        start = self._file_starts.get(file_id)
        if start is None:
            num_groups = max(1, self.total_blocks // self.group_blocks)
            group = self._rng.randrange(num_groups)
            start = group * self.group_blocks
            self._file_starts[file_id] = start
        return start

    def place(self, block: Union[int, Tuple[int, int]]) -> int:
        """Return the global array block number for a trace block identity."""
        if isinstance(block, tuple):
            file_id, offset = block
            return (self._start_for_file(file_id) + offset) % self.total_blocks
        return block % self.total_blocks


#: Service outcomes under fault injection (see :mod:`repro.faults`).
OUTCOME_OK = "ok"
OUTCOME_TRANSIENT = "transient"  # full service consumed, data bad
OUTCOME_DEAD = "dead"  # spindle permanently failed; request failed fast


class DiskArray:
    """A bank of independent drives, each with its own request queue.

    The simulation engine owns all timing decisions; the array tracks which
    drive is busy, orders queued requests by the chosen discipline, and
    accumulates per-disk statistics.

    With a :class:`~repro.faults.FaultSchedule` attached, starting a
    request also decides its fate: a dead spindle fails it fast, a
    fail-slow window stretches its service time, and a transient error
    lets it consume full service before reporting failure.  The outcome is
    surfaced to the engine via :meth:`take_outcome`; the array itself
    never retries — recovery policy (backoff, failover, abandonment) is
    the engine's job.

    ``repro.obs`` instruments the request lifecycle by shadowing
    :meth:`submit` and :meth:`start_next` on the *instance* (queue-depth
    samples, busy spans); changing those signatures means updating
    ``repro.obs.observer`` in the same commit.
    """

    def __init__(
        self,
        num_disks: int,
        drive_factory: Optional[Callable[[], DriveModel]] = None,
        discipline: str = "cscan",
        geometry: DiskGeometry = HP97560,
        faults: Optional["FaultSchedule"] = None,
    ) -> None:
        if num_disks < 1:
            raise ValueError("need at least one disk")
        if drive_factory is None:
            drive_factory = lambda: DiskDrive(geometry)
        self.num_disks = num_disks
        self.layout = StripedLayout(num_disks)
        self.geometry = geometry
        self.faults = faults
        self.drives: List[DriveModel] = [drive_factory() for _ in range(num_disks)]
        cylinder_of = self._cylinder_of
        self.queues: List[RequestQueue] = [
            make_queue(discipline, cylinder_of) for _ in range(num_disks)
        ]
        self.in_service: List[Optional[Request]] = [None] * num_disks
        self.busy_time = [0.0] * num_disks
        self.service_time_total = 0.0
        self.requests_completed = 0
        self._seq = 0
        self._outcomes: List[str] = [OUTCOME_OK] * num_disks
        self.transient_errors = 0
        self.dead_errors = 0
        self.slowed_requests = 0

    def _cylinder_of(self, lbn: int) -> int:
        try:
            return self.geometry.block_to_cylinder(lbn)
        except ValueError:
            return lbn

    # -- request lifecycle ---------------------------------------------------

    def submit(
        self, disk: int, block: int, lbn: int, kind: str = "read",
        attempt: int = 0,
    ) -> Request:
        """Queue a request for ``lbn`` (application block ``block``) on
        ``disk``; ``kind`` is "read" or "write"."""
        self._seq += 1
        request = Request(
            lbn=lbn, block=block, seq=self._seq, kind=kind, attempt=attempt
        )
        self.queues[disk].push(request)
        return request

    def is_idle(self, disk: int) -> bool:
        return self.in_service[disk] is None

    def queue_length(self, disk: int) -> int:
        return len(self.queues[disk])

    def start_next(
        self, disk: int, now: float
    ) -> Optional[Tuple[Request, float, ServiceBreakdown]]:
        """If ``disk`` is idle and has queued work, start its next request.

        Returns ``(request, completion_time, breakdown)`` or ``None``.
        """
        if self.in_service[disk] is not None:
            return None
        drive = self.drives[disk]
        request = self.queues[disk].pop(drive.cylinder)
        if request is None:
            return None
        faults = self.faults
        if faults is not None and faults.is_dead(disk, now):
            # Dead spindle: the controller reports the error fast without
            # touching the (gone) mechanics — the drive's head state and
            # readahead cache are left as they were.
            breakdown = ServiceBreakdown(overhead=faults.fail_fast_ms)
            self._outcomes[disk] = OUTCOME_DEAD
            self.dead_errors += 1
        else:
            breakdown = drive.service(request.lbn, now)
            if faults is not None:
                factor = faults.slow_factor(disk, now)
                if factor != 1.0:
                    breakdown.fault_ms = breakdown.total * (factor - 1.0)
                    self.slowed_requests += 1
                if faults.draw_error(disk, request.seq, now):
                    # The media was read (full mechanical time consumed);
                    # the transfer was bad.
                    self._outcomes[disk] = OUTCOME_TRANSIENT
                    self.transient_errors += 1
                else:
                    self._outcomes[disk] = OUTCOME_OK
        self.in_service[disk] = request
        self.busy_time[disk] += breakdown.total
        self.service_time_total += breakdown.total
        return request, now + breakdown.total, breakdown

    def complete(self, disk: int) -> Request:
        """Mark the in-service request on ``disk`` finished."""
        request = self.in_service[disk]
        if request is None:
            raise RuntimeError(f"disk {disk} has no request in service")
        self.in_service[disk] = None
        self.requests_completed += 1
        return request

    def take_outcome(self, disk: int) -> str:
        """The fault outcome of the request just completed on ``disk``
        (:data:`OUTCOME_OK` / :data:`OUTCOME_TRANSIENT` /
        :data:`OUTCOME_DEAD`); resets to OK for the next request."""
        outcome = self._outcomes[disk]
        self._outcomes[disk] = OUTCOME_OK
        return outcome

    @property
    def faults_injected(self) -> int:
        """Discrete fault events injected so far (transient + dead)."""
        return self.transient_errors + self.dead_errors

    # -- statistics ----------------------------------------------------------

    def average_service_ms(self) -> float:
        if not self.requests_completed:
            return 0.0
        return self.service_time_total / self.requests_completed

    def utilization(self, elapsed_ms: float) -> float:
        """Mean per-disk busy fraction over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return sum(self.busy_time) / (self.num_disks * elapsed_ms)

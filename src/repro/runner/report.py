"""Human-readable views of run journals (the ``repro-sim runs`` command)."""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.journal import Journal, list_runs


def _manifest_row(journal: Journal) -> Dict[str, Any]:
    manifest = journal.read_manifest() or {}
    completed = journal.completed()
    failures = journal.failures()
    return {
        "name": os.path.basename(journal.directory.rstrip(os.sep)),
        "status": manifest.get("status", "unknown"),
        "cells": manifest.get("cells", "?"),
        "completed": len(completed),
        "failed": len(failures),
        "plan_hash": (manifest.get("plan_hash") or "")[:12],
        "updated": manifest.get("updated", ""),
    }


def format_runs_table(root: str) -> str:
    """One line per run directory under ``root``."""
    journals = list_runs(root)
    if not journals:
        return f"no runs under {root}/"
    header = ("run", "status", "done", "failed", "plan", "updated")
    rows: List[Tuple[str, ...]] = []
    for journal in journals:
        row = _manifest_row(journal)
        rows.append((
            row["name"], row["status"],
            f"{row['completed']}/{row['cells']}", str(row["failed"]),
            row["plan_hash"], row["updated"],
        ))
    widths = [
        max(len(header[i]), max(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_failure(record: Dict[str, Any], verbose: bool = False) -> str:
    """One failure record, message first, traceback only when asked."""
    error = record.get("error", {})
    line = (
        f"  {record.get('cell_id', record.get('hash', '?'))}: "
        f"{record.get('failure', 'exception')} — "
        f"{error.get('type', '?')}: {error.get('message', '')}"
        f" (attempt {record.get('attempt', '?')})"
    )
    if verbose and error.get("traceback"):
        indented = "\n".join(
            "    " + l for l in error["traceback"].rstrip().splitlines()
        )
        line += "\n" + indented
    return line


def format_run_detail(journal: Journal, verbose: bool = False) -> str:
    """Manifest summary, per-cell digests, and outstanding failures."""
    manifest = journal.read_manifest() or {}
    completed = journal.completed()
    failures = journal.failures()
    lines = [f"run {journal.directory}"]
    for key in ("status", "plan_hash", "cells", "jobs", "created", "updated"):
        if key in manifest:
            lines.append(f"  {key}: {manifest[key]}")
    if manifest.get("argv"):
        lines.append(f"  argv: {' '.join(manifest['argv'])}")
    counters = ", ".join(
        f"{k}={v}"
        for k, v in sorted((manifest.get("counters") or {}).items()) if v
    )
    if counters:
        lines.append(f"  counters: {counters}")
    lines.append(f"completed cells ({len(completed)}):")
    for record in sorted(completed.values(), key=lambda r: r.get("cell_id", "")):
        wall = record.get("wall_s")
        wall_text = f" {wall:.3f}s" if isinstance(wall, (int, float)) else ""
        lines.append(
            f"  {record.get('cell_id', record['hash'])}"
            f"  digest={record['digest'][:12]}{wall_text}"
        )
    if failures:
        lines.append(f"outstanding failures ({len(failures)}):")
        for record in failures:
            lines.append(format_failure(record, verbose=verbose))
    return "\n".join(lines)


def resume_argv(journal: Journal) -> Optional[List[str]]:
    """The CLI argv that re-runs this journal's sweep with ``--resume``."""
    manifest = journal.read_manifest() or {}
    argv = manifest.get("argv")
    if not argv:
        return None
    argv = list(argv)
    if "--resume" not in argv:
        argv.append("--resume")
    return argv

"""Crash-safe run journals: append-only fsynced JSONL + atomic manifest.

A run directory holds two files:

``journal.jsonl``
    One JSON record per line, appended and fsynced as each cell finishes
    (``{"v": 1, "kind": "cell", "hash": …, "status": "ok"|"failed", …}``).
    A run killed at any instant leaves at worst one truncated final line,
    which the loader skips — every fully written record survives.

``manifest.json``
    Plan-level metadata (plan hash, cell count, creating argv, status),
    rewritten atomically (tmp + ``os.replace``) so readers never observe
    a torn manifest.

``--resume`` keys on the cell **config hash** (see
:mod:`repro.runner.plan`): completed cells are skipped, failed or missing
cells re-run.  See ``docs/RUNNER.md`` for the full schema.
"""

from __future__ import annotations

import json
import os
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, TextIO

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

JOURNAL_NAME = "journal.jsonl"
MANIFEST_NAME = "manifest.json"

#: Journal/manifest schema version.
SCHEMA_VERSION = 1


def sweep_stale_tmp(directory: str) -> int:
    """Remove orphaned ``.*.tmp`` files left by a crash mid-
    :func:`write_json_atomic` (killed between tmp-write and ``os.replace``).

    Callers invoke this when they *open* a run directory or store shard —
    never concurrently with a live writer, which is the same single-writer
    assumption the fixed tmp name already makes.  Returns the number of
    stale files removed.
    """
    removed = 0
    try:
        entries = os.listdir(directory)
    except OSError:
        return 0
    for name in entries:
        if not (name.startswith(".") and name.endswith(".tmp")):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            continue
    return removed


def write_json_atomic(path: str, payload: Any, indent: int = 2) -> None:
    """Write JSON durably: tmp file in the same directory, fsync, rename.

    A process killed mid-write can never leave a truncated file at
    ``path`` — it either has the old content or the new.  Benchmarks use
    this for ``BENCH_*.json`` baselines so a killed run cannot poison
    later ``--baseline`` gating.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(directory)


def _fsync_dir(directory: str) -> None:
    """Durably record a rename/append in the directory entry (best effort;
    some filesystems refuse O_RDONLY directory fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Journal:
    """One run directory: append-only cell records plus a manifest."""

    def __init__(
        self,
        directory: str,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.directory = directory
        self.journal_path = os.path.join(directory, JOURNAL_NAME)
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self._handle: Optional[TextIO] = None
        #: Optional registry: each append observes its fsync latency into
        #: ``runner.journal_fsync_ms`` (a durability SLI — the fsync is
        #: the journal's whole crash-safety story, so a slow device shows
        #: up here first).
        self._metrics = metrics
        self._swept = False
        #: Orphaned ``.*.tmp`` files removed when this journal first wrote
        #: to its directory (a crash between tmp-write and rename).
        self.swept_tmp = 0
        #: Malformed lines skipped by the most recent :meth:`records` read.
        #: A torn *final* line is the expected crash shape, but resume can
        #: also append over a torn tail, leaving garbage mid-file — both
        #: are skipped and counted here (runner metrics:
        #: ``runner.journal_skipped_lines``).
        self.skipped_lines = 0

    def _open_directory(self) -> None:
        """Create the run directory and sweep crash debris, once."""
        os.makedirs(self.directory, exist_ok=True)
        if not self._swept:
            self._swept = True
            self.swept_tmp = sweep_stale_tmp(self.directory)

    # -- manifest ---------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        self._open_directory()
        manifest = dict(manifest)
        manifest.setdefault("v", SCHEMA_VERSION)
        write_json_atomic(self.manifest_path, manifest)

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    # -- journal ----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record and fsync before returning: once ``append``
        returns, the record survives any crash."""
        record = dict(record)
        record.setdefault("v", SCHEMA_VERSION)
        if self._handle is None:
            self._open_directory()
            self._handle = open(self.journal_path, "a")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self._metrics is None:
            os.fsync(self._handle.fileno())
        else:
            fsync_start = time.perf_counter()
            os.fsync(self._handle.fileno())
            from repro.obs.metrics import FSYNC_BUCKETS_MS

            self._metrics.histogram(
                "runner.journal_fsync_ms", FSYNC_BUCKETS_MS
            ).observe((time.perf_counter() - fsync_start) * 1000.0)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def records(self) -> List[Dict[str, Any]]:
        """Every fully written record, oldest first.

        Malformed lines are skipped, not fatal, wherever they appear: a
        crash mid-append leaves a torn *final* line, and a resumed run
        appending after such a crash turns that torn tail into a malformed
        *mid-file* line.  Each call recounts the skips into
        :attr:`skipped_lines`.
        """
        records: List[Dict[str, Any]] = []
        skipped = 0
        try:
            with open(self.journal_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError:
                        skipped += 1  # torn tail, or garbage appended over
        except OSError:
            pass
        self.skipped_lines = skipped
        return records

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Latest successful record per config hash (resume skip-set)."""
        done: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            if record.get("kind") == "cell" and record.get("status") == "ok":
                done[record["hash"]] = record
        return done

    def failures(self) -> List[Dict[str, Any]]:
        """Failure records whose cells never subsequently succeeded."""
        done = self.completed()
        failures: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            if record.get("kind") != "cell":
                continue
            if record.get("status") == "failed" and record["hash"] not in done:
                failures[record["hash"]] = record
        return list(failures.values())

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def list_runs(root: str) -> List[Journal]:
    """Journals under ``root``, sorted by directory name."""
    journals: List[Journal] = []
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return []
    for name in entries:
        directory = os.path.join(root, name)
        if os.path.isfile(os.path.join(directory, MANIFEST_NAME)) or \
                os.path.isfile(os.path.join(directory, JOURNAL_NAME)):
            journals.append(Journal(directory))
    return journals

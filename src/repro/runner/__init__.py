"""repro.runner — crash-safe supervised execution of experiment sweeps.

The runner turns every evaluation sweep into a declarative **plan** of
:class:`Cell` records, executes it serially or on a supervised worker
pool, journals each cell's digest as it completes, and resumes
interrupted runs — with parallel, resumed, and interrupted-then-resumed
runs all bit-identical to the serial reference (``docs/RUNNER.md``).
"""

from repro.runner.execute import (
    CELL_KINDS,
    CellOutcome,
    execute_cell,
    execute_cells,
    get_trace,
    result_digest,
    scaled_policy_kwargs,
    validate_names,
)
from repro.runner.journal import (
    Journal,
    list_runs,
    sweep_stale_tmp,
    write_json_atomic,
)
from repro.runner.plan import (
    Cell,
    baseline_cells,
    plan_hash,
    sweep_cells,
    tuned_reverse_cell,
)
from repro.runner.pool import PoolStatus, SupervisedPool
from repro.runner.report import (
    format_failure,
    format_run_detail,
    format_runs_table,
    resume_argv,
)
from repro.runner.runner import (
    EXIT_DEADLINE,
    EXIT_FAILED_CELLS,
    EXIT_INTERRUPTED,
    EXIT_OK,
    RunReport,
    default_journal_dir,
    run_plan,
)

__all__ = [
    "CELL_KINDS",
    "Cell",
    "CellOutcome",
    "EXIT_DEADLINE",
    "EXIT_FAILED_CELLS",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "Journal",
    "PoolStatus",
    "RunReport",
    "SupervisedPool",
    "baseline_cells",
    "default_journal_dir",
    "execute_cell",
    "execute_cells",
    "format_failure",
    "format_run_detail",
    "format_runs_table",
    "get_trace",
    "list_runs",
    "plan_hash",
    "result_digest",
    "resume_argv",
    "run_plan",
    "scaled_policy_kwargs",
    "sweep_cells",
    "sweep_stale_tmp",
    "tuned_reverse_cell",
    "validate_names",
    "write_json_atomic",
]

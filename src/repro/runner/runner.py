"""Plan orchestration: journaled, resumable, signal-aware sweep runs.

:func:`run_plan` is the crash-safe entry point behind
``repro-sim sweep --jobs`` and the CI interrupt/resume check.  It skips
cells already completed in the journal (``resume=True``), fans the rest
out to a :class:`~repro.runner.pool.SupervisedPool`, fsyncs every
terminal record, and translates SIGINT/SIGTERM into a graceful drain.

Exit codes (see ``docs/RUNNER.md``)::

    0   every cell completed
    1   sweep finished but some cells failed (see the failure records)
    75  interrupted by SIGINT/SIGTERM after draining in-flight cells
        (EX_TEMPFAIL: re-run with --resume to continue)
    76  --max-minutes deadline reached (also resumable)
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.core.results import SimulationResult
from repro.runner.journal import Journal
from repro.runner.plan import Cell, plan_hash
from repro.runner.pool import SupervisedPool

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

EXIT_OK = 0
EXIT_FAILED_CELLS = 1
EXIT_INTERRUPTED = 75  # EX_TEMPFAIL: resumable
EXIT_DEADLINE = 76

#: Manifest ``status`` values over a run's lifetime.
STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_FAILED_CELLS = "failed-cells"
STATUS_INTERRUPTED = "interrupted"
STATUS_DEADLINE = "deadline"

_STOP_TO_STATUS = {"signal": STATUS_INTERRUPTED, "deadline": STATUS_DEADLINE}
_STOP_TO_EXIT = {"signal": EXIT_INTERRUPTED, "deadline": EXIT_DEADLINE}


def _utcnow() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def default_journal_dir(cells: List[Cell], root: str = "runs") -> str:
    """Deterministic journal location derived from the plan hash, so the
    same sweep command resumes itself without naming a directory."""
    return os.path.join(root, f"run-{plan_hash(cells)[:12]}")


@dataclass
class RunReport:
    """Everything a caller needs after :func:`run_plan` returns."""

    plan: List[Cell]
    journal_dir: str
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    skipped: int = 0
    stop_reason: Optional[str] = None
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [r for r in self.records.values() if r.get("status") == "failed"]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records.values() if r.get("status") == "ok")

    @property
    def digests(self) -> Dict[str, str]:
        """config hash -> result digest, for every completed cell."""
        return {
            h: r["digest"] for h, r in self.records.items()
            if r.get("status") == "ok"
        }

    @property
    def status(self) -> str:
        if self.stop_reason is not None:
            return _STOP_TO_STATUS[self.stop_reason]
        if self.failures:
            return STATUS_FAILED_CELLS
        return STATUS_COMPLETE

    @property
    def exit_code(self) -> int:
        if self.stop_reason is not None:
            return _STOP_TO_EXIT[self.stop_reason]
        return EXIT_FAILED_CELLS if self.failures else EXIT_OK

    def results(self) -> List[Optional[SimulationResult]]:
        """Results in plan order; ``None`` for failed or not-run cells.

        Cells that ran in this process carry the live result object;
        cells skipped via ``--resume`` are reconstructed from the
        journal's full-precision serialization (bit-identical: the digest
        pins every float).
        """
        out: List[Optional[SimulationResult]] = []
        for cell in self.plan:
            record = self.records.get(cell.config_hash)
            if record is None or record.get("status") != "ok":
                out.append(None)
            elif "result_obj" in record:
                out.append(record["result_obj"])
            else:
                out.append(SimulationResult(**record["result"]))
        return out


def run_plan(
    plan: List[Cell],
    journal_dir: Optional[str] = None,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.5,
    resume: bool = False,
    max_minutes: Optional[float] = None,
    metrics: Optional["MetricsRegistry"] = None,
    progress: Optional[Callable[[Dict[str, Any], int, int], None]] = None,
    argv: Optional[List[str]] = None,
    install_signal_handlers: bool = True,
) -> RunReport:
    """Run a plan under supervision, journaling every terminal record.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`; runner
    counters land under ``runner.*``.  ``argv`` (the creating CLI line)
    is stored in the manifest so ``repro-sim runs resume`` can re-issue
    it.  With ``install_signal_handlers`` the first SIGINT/SIGTERM drains
    in-flight cells and returns (exit code 75 via ``exit_code``); a
    second signal aborts immediately.
    """
    if journal_dir is None:
        journal_dir = default_journal_dir(plan)
    report = RunReport(plan=list(plan), journal_dir=journal_dir)

    # Unique work: duplicate cells in a plan share one execution.
    unique: Dict[str, Cell] = {}
    for cell in plan:
        unique.setdefault(cell.config_hash, cell)

    journal = Journal(journal_dir, metrics=metrics)
    if resume:
        for config_hash, record in journal.completed().items():
            if config_hash in unique:
                report.records[config_hash] = record
                report.skipped += 1
    to_run = [
        cell for config_hash, cell in unique.items()
        if config_hash not in report.records
    ]

    manifest = {
        "plan_hash": plan_hash(plan),
        "cells": len(unique),
        "jobs": jobs,
        "status": STATUS_RUNNING,
        "argv": list(argv) if argv is not None else None,
        "created": _utcnow(),
    }
    existing = journal.read_manifest()
    if existing is not None:
        manifest["created"] = existing.get("created", manifest["created"])
    manifest["updated"] = _utcnow()
    journal.write_manifest(manifest)

    pool = SupervisedPool(
        jobs=jobs, timeout_s=timeout_s, max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
    )
    total = len(to_run) + report.skipped
    done = report.skipped

    def emit(record: Dict[str, Any]) -> None:
        nonlocal done
        done += 1
        report.records[record["hash"]] = record
        journal.append({k: v for k, v in record.items() if k != "result_obj"})
        if progress is not None:
            progress(record, done, total)

    def handle_signal(signum: int, _frame: Any) -> None:
        if pool._stop_reason is not None:
            raise KeyboardInterrupt  # second signal: abort the drain
        pool.request_stop("signal")

    previous_handlers: Dict[int, Any] = {}
    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, handle_signal)
    deadline = (
        time.monotonic() + max_minutes * 60.0
        if max_minutes is not None else None
    )
    try:
        status = pool.run(to_run, emit, deadline_monotonic=deadline)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    report.stop_reason = status.stop_reason
    report.counters = status.counters
    manifest.update(
        status=report.status,
        updated=_utcnow(),
        completed=report.completed,
        failed=len(report.failures),
        skipped=report.skipped,
        counters=status.counters,
    )
    journal.write_manifest(manifest)
    journal.close()

    if metrics is not None:
        metrics.inc("runner.cells_total", len(unique))
        metrics.inc("runner.cells_skipped_resume", report.skipped)
        metrics.inc("runner.journal_skipped_lines", journal.skipped_lines)
        metrics.inc("runner.journal_swept_tmp", journal.swept_tmp)
        metrics.merge_counters(status.counters, prefix="runner.")
        if report.stop_reason is not None:
            metrics.inc("runner.interrupted")
    return report

"""Supervised worker pool: fan cells out, survive the workers.

The pool owns long-lived worker processes (fork start method where
available, so each worker inherits the parent's warm imports and any
test-registered cell kinds) and supervises them:

* **per-cell timeout** — a cell running longer than ``timeout_s`` gets its
  worker killed, a structured ``timeout`` failure record, and a fresh
  worker; the rest of the sweep continues.
* **crash retry** — a worker that dies mid-cell (OOM kill, segfault,
  ``os._exit``) is respawned and the cell retried up to ``max_retries``
  times with exponential backoff; exhausted retries become a ``crash``
  failure record.  In-worker Python exceptions are *not* retried — the
  simulator is deterministic, so they would fail identically — and are
  recorded immediately with their traceback.
* **cooperative cancellation** — :meth:`SupervisedPool.cancel` (used by
  ``repro.svc`` when a request times out or its client goes away) drops a
  cell from the pending queue, or kills and respawns the worker running
  it, emitting a structured ``cancelled`` record either way.
* **graceful stop** — ``request_stop`` (wired to SIGINT/SIGTERM by
  :func:`repro.runner.runner.run_plan` and ``repro.svc``'s drain path)
  stops dispatching, drains cells already in flight, and leaves the
  remainder for ``--resume``.

Two driving modes share one supervision loop: :meth:`SupervisedPool.run`
executes a fixed plan and returns when it is done (sweeps), while
:meth:`SupervisedPool.serve` runs until ``request_stop`` and accepts new
cells at any time through the thread-safe :meth:`SupervisedPool.submit`
(the simulation service).

Records are emitted to a callback the moment each cell reaches a terminal
state, so the journal is fsynced continuously, not at the end.

The pool reads the host clock through an injectable ``clock`` callable
(default ``time.monotonic``) so retry backoff and timeout scheduling are
testable under a fake clock.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import multiprocessing.context
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.runner.execute import execute_cell
from repro.runner.plan import KIND_RUN, Cell

if TYPE_CHECKING:
    from repro.obs.svc import ServiceTracer

#: Per-task metadata riding the duplex pipe next to the cell: the
#: service's correlation ID and trace flag (``repro.svc`` requests), or
#: None for batch sweeps — whose task tuples, records, and journal
#: schema stay byte-identical to the untelemetered pool.
TaskMeta = Optional[Dict[str, Any]]

#: How long a killed worker gets to die before escalating to SIGKILL.
_KILL_GRACE_S = 2.0
#: Supervisor poll granularity.
_POLL_S = 0.05

#: Failure type recorded for cooperatively cancelled cells.
FAILURE_CANCELLED = "cancelled"


def _close_inherited_fds(keep: Set[int]) -> None:
    """Close every fd a forked worker inherited except stdio and ``keep``.

    Forked children copy *all* parent descriptors.  For batch sweeps that
    is harmless, but the service forks (and respawns) workers while it
    holds accepted sockets — a long-lived worker's copy would hold a
    client connection open long after the parent sent its FIN, so clients
    waiting for EOF would hang.  Standard preforking-server hygiene.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover — no procfs
        fds = list(range(3, 256))
    for fd in fds:
        if fd > 2 and fd not in keep:
            try:
                os.close(fd)
            except OSError:
                pass


def _worker_main(
    conn: "multiprocessing.connection.Connection[Any, Any]", worker_id: int
) -> None:
    """Worker loop: receive (cell, attempt), execute, send the record.

    Workers ignore SIGINT so a terminal Ctrl-C (delivered to the whole
    foreground process group) lets the *parent* coordinate the drain
    instead of killing cells mid-flight.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _close_inherited_fds({conn.fileno()})
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        cell, attempt, meta = task
        observer = None
        traced = meta is not None and bool(meta.get("trace"))
        if meta is not None and meta.get("corr_id") is not None:
            # Correlation crosses the fork boundary here, on the pipe:
            # contextvars were copied at fork time (long before this
            # request existed), so the worker re-seeds its own context
            # per task and log records inside the worker carry the ID.
            from repro.obs.logging import set_correlation_id

            set_correlation_id(meta["corr_id"])
        if traced and cell.kind == KIND_RUN:
            # Only plain runs take an Observer: an Observer watches
            # exactly one simulator, and grid-search kinds run several.
            from repro.obs import Observer

            observer = Observer()
        started_ms = time.monotonic() * 1000.0 if traced else 0.0
        record: Dict[str, Any]
        try:
            outcome = execute_cell(cell, observer=observer)
            record = {
                "status": "ok",
                "digest": outcome.digest,
                "wall_s": round(outcome.wall_s, 6),
                "result_obj": outcome.result,
                # Full-precision serialization for the journal: resumed
                # runs rebuild SimulationResult(**record["result"]) and
                # the digest pins every float, so nothing is lost.
                "result": dataclasses.asdict(outcome.result),
            }
        except Exception as exc:  # report as a failure record, don't die
            record = {
                "status": "failed",
                "failure": "exception",
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                },
            }
        record.update(
            kind="cell",
            hash=cell.config_hash,
            cell_id=cell.cell_id,
            cell=cell.to_dict(),
            attempt=attempt,
            worker=worker_id,
        )
        if meta is not None and meta.get("corr_id") is not None:
            record["corr_id"] = meta["corr_id"]
        if traced:
            # The execute span is measured *here*, in the worker, on the
            # same monotonic clock as the parent's tracer (system-wide
            # across fork on Linux), and shipped back over the pipe; the
            # parent adopts it plus the simulation timeline.  The service
            # strips this block before records reach waiters or the store.
            telemetry: Dict[str, Any] = {
                "corr_id": meta.get("corr_id") if meta else None,
                "execute": {
                    "start_ms": started_ms,
                    "dur_ms": time.monotonic() * 1000.0 - started_ms,
                },
            }
            if observer is not None and record["status"] == "ok":
                from repro.obs.export import chrome_trace

                telemetry["sim"] = chrome_trace(observer)
            record["telemetry"] = telemetry
        try:
            conn.send(record)
        except (BrokenPipeError, OSError):
            return


def _pool_context() -> multiprocessing.context.BaseContext:
    """fork where the platform has it (warm imports, test-kind
    inheritance); the default context elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-fork platforms
        return multiprocessing.get_context()


class _Worker:
    """One supervised worker process and its dedicated duplex pipe."""

    def __init__(
        self, context: multiprocessing.context.BaseContext, worker_id: int
    ) -> None:
        self.id = worker_id
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main, args=(child_conn, worker_id), daemon=True
        )
        self.process.start()
        child_conn.close()  # parent copy; EOF must reach us when it dies
        self.task: Optional[Tuple[Cell, int, TaskMeta]] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(
        self, cell: Cell, attempt: int, now: float, meta: TaskMeta = None
    ) -> None:
        self.task = (cell, attempt, meta)
        self.started_at = now
        self.conn.send((cell, attempt, meta))

    def kill(self) -> None:
        """Terminate, escalating to SIGKILL after a short grace."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_KILL_GRACE_S)
            if self.process.is_alive():  # pragma: no cover — stuck in D state
                self.process.kill()
                self.process.join(_KILL_GRACE_S)
        self.conn.close()

    def shutdown(self) -> None:
        """Polite stop for an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_KILL_GRACE_S)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


@dataclass
class PoolStatus:
    """What the pool did and why it returned."""

    stop_reason: Optional[str] = None  # None | "signal" | "deadline"
    counters: Dict[str, int] = field(default_factory=dict)
    #: Cells never dispatched (stop/deadline); candidates for --resume.
    not_run: List[Cell] = field(default_factory=list)


class SupervisedPool:
    """Run cells on ``jobs`` supervised workers; emit terminal records."""

    def __init__(
        self,
        jobs: int,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._clock = clock
        self._stop_reason: Optional[str] = None
        self._context = _pool_context()
        self._next_worker_id = 0
        # Pending work and cancellations may be touched from other threads
        # (``repro.svc`` submits and cancels from its event loop while the
        # supervision loop runs in a pool thread), so both live behind one
        # lock.  (cell, attempt, not_before, meta): retries wait out
        # backoff; meta carries the service's correlation/trace metadata.
        self._lock = threading.Lock()
        self._pending: Deque[Tuple[Cell, int, float, TaskMeta]] = deque()
        self._cancelled: Set[str] = set()
        self._workers: List[_Worker] = []
        #: Optional :class:`repro.obs.svc.ServiceTracer` installed by the
        #: service when request tracing is on; None costs nothing.
        self.tracer: Optional["ServiceTracer"] = None
        #: Accumulated busy seconds per worker id (terminal tasks only;
        #: :meth:`utilization` adds the in-flight remainder).
        self._busy_s: Dict[int, float] = {}
        self._supervise_started_at: Optional[float] = None
        self.counters: Dict[str, int] = {
            "dispatched": 0, "ok": 0, "failed": 0, "timeouts": 0,
            "crashes": 0, "retries": 0, "respawns": 0, "cancelled": 0,
        }

    # -- external control (any thread) ------------------------------------

    def request_stop(self, reason: str = "signal") -> None:
        """Stop dispatching; drain in-flight cells, then return."""
        if self._stop_reason is None:
            self._stop_reason = reason

    def submit(
        self, cell: Cell, attempt: int = 1, meta: TaskMeta = None
    ) -> None:
        """Queue one cell (thread-safe; the serve loop picks it up).

        ``meta`` is the service's per-request metadata (correlation ID,
        trace flag, submission timestamp); batch callers omit it and the
        pool behaves exactly as before."""
        with self._lock:
            self._pending.append((cell, attempt, 0.0, meta))

    def cancel(self, config_hash: str) -> bool:
        """Cooperatively cancel the cell with ``config_hash``.

        A pending cell is dropped before dispatch; a running cell gets its
        worker killed and respawned.  Either way a structured
        ``cancelled`` record is emitted.  Returns True when the hash
        matched queued or in-flight work, False when there was nothing to
        cancel (already terminal, or never submitted) — in which case no
        cancellation is recorded, so a later resubmission of the same
        hash is unaffected.
        """
        with self._lock:
            queued = any(
                cell.config_hash == config_hash
                for cell, _, _, _ in self._pending
            )
            running = any(
                worker.task is not None
                and worker.task[0].config_hash == config_hash
                for worker in self._workers
            )
            if queued or running:
                self._cancelled.add(config_hash)
                return True
        return False

    def queue_depth(self) -> int:
        """Cells waiting for a worker (thread-safe snapshot)."""
        with self._lock:
            return len(self._pending)

    def utilization(self) -> Dict[int, float]:
        """Busy-time fraction per worker id since supervision started,
        including each busy worker's in-flight time up to now (thread-safe
        snapshot; empty before the pool runs)."""
        now = self._clock()
        with self._lock:
            started = self._supervise_started_at
            busy = dict(self._busy_s)
            in_flight = [
                (worker.id, worker.started_at)
                for worker in self._workers
                if worker.task is not None
            ]
        if started is None:
            return {}
        uptime = max(now - started, 1e-9)
        for worker_id, started_at in in_flight:
            busy[worker_id] = busy.get(worker_id, 0.0) + max(
                0.0, now - started_at
            )
        return {
            worker_id: min(1.0, seconds / uptime)
            for worker_id, seconds in sorted(busy.items())
        }

    # -- scheduling arithmetic (fake-clock testable) -----------------------

    def backoff_s(self, attempt: int) -> float:
        """Backoff before re-running a crash that happened on ``attempt``
        (exponential: base, 2x base, 4x base, ...)."""
        return self.retry_backoff_s * (2.0 ** (attempt - 1))

    def _schedule_retry(
        self, cell: Cell, attempt: int, meta: TaskMeta = None
    ) -> None:
        """Re-queue a crashed cell at the head, gated by its backoff."""
        self.counters["retries"] += 1
        not_before = self._clock() + self.backoff_s(attempt)
        with self._lock:
            self._pending.appendleft((cell, attempt + 1, not_before, meta))

    # -- records -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        worker = _Worker(self._context, self._next_worker_id)
        self._next_worker_id += 1
        return worker

    def _failure_record(self, cell: Cell, attempt: int, failure: str,
                        error: Dict[str, str],
                        meta: TaskMeta = None) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": "cell",
            "hash": cell.config_hash,
            "cell_id": cell.cell_id,
            "cell": cell.to_dict(),
            "status": "failed",
            "failure": failure,
            "attempt": attempt,
            "error": error,
        }
        if meta is not None and meta.get("corr_id") is not None:
            record["corr_id"] = meta["corr_id"]
        return record

    def _cancel_record(self, cell: Cell, attempt: int,
                       meta: TaskMeta = None) -> Dict[str, Any]:
        return self._failure_record(
            cell, attempt, FAILURE_CANCELLED,
            {
                "type": "CellCancelled",
                "message": f"{cell.cell_id} was cancelled before completing "
                           f"(attempt {attempt})",
                "traceback": "",
            },
            meta=meta,
        )

    def _emit_terminal(self, emit: Callable[[Dict[str, Any]], None],
                       record: Dict[str, Any]) -> None:
        self.counters["ok" if record["status"] == "ok" else "failed"] += 1
        with self._lock:
            self._cancelled.discard(record["hash"])
        if self.tracer is not None:
            self._adopt_telemetry(record)
        emit(record)

    def _adopt_telemetry(self, record: Dict[str, Any]) -> None:
        """Fold a traced worker's shipped telemetry into the tracer: the
        worker-measured execute span plus the simulation timeline."""
        from repro.obs.svc import SPAN_WORKER_EXECUTE

        tracer = self.tracer
        telemetry = record.get("telemetry")
        if tracer is None or not isinstance(telemetry, dict):
            return
        corr_id = telemetry.get("corr_id")
        if not isinstance(corr_id, str):
            return
        execute = telemetry.get("execute")
        if isinstance(execute, dict):
            tracer.add_span(
                SPAN_WORKER_EXECUTE,
                corr_id,
                float(execute.get("start_ms", 0.0)),
                float(execute.get("dur_ms", 0.0)),
                cell_id=record.get("cell_id"),
                worker=record.get("worker"),
                attempt=record.get("attempt"),
            )
        sim = telemetry.get("sim")
        if isinstance(sim, dict):
            tracer.attach_simulation(corr_id, sim)

    # -- supervision loop steps --------------------------------------------

    def _next_ready(
        self, now: float
    ) -> Optional[Tuple[Cell, int, TaskMeta]]:
        """Pop the first pending cell whose backoff has elapsed."""
        with self._lock:
            ready_idx = next(
                (i for i, (_, _, nb, _) in enumerate(self._pending)
                 if nb <= now),
                None,
            )
            if ready_idx is None:
                return None
            self._pending.rotate(-ready_idx)
            cell, attempt, _, meta = self._pending.popleft()
            self._pending.rotate(ready_idx)
            return cell, attempt, meta

    def _reap_cancelled_pending(
        self, emit: Callable[[Dict[str, Any]], None]
    ) -> None:
        """Drop cancelled cells that are still queued."""
        dropped: List[Tuple[Cell, int, float, TaskMeta]] = []
        with self._lock:
            if not self._cancelled:
                return
            kept: Deque[Tuple[Cell, int, float, TaskMeta]] = deque()
            for item in self._pending:
                if item[0].config_hash in self._cancelled:
                    dropped.append(item)
                else:
                    kept.append(item)
            self._pending = kept
        for cell, attempt, _, meta in dropped:
            self.counters["cancelled"] += 1
            self._emit_terminal(
                emit, self._cancel_record(cell, attempt, meta)
            )

    def _kill_cancelled(self, emit: Callable[[Dict[str, Any]], None]) -> None:
        """Kill workers running cancelled cells; respawn and record."""
        with self._lock:
            if not self._cancelled:
                return
            cancelled = set(self._cancelled)
        for index, worker in enumerate(self._workers):
            task = worker.task
            if task is None:
                continue
            cell, attempt, meta = task
            if cell.config_hash not in cancelled:
                continue
            self.counters["cancelled"] += 1
            self.counters["respawns"] += 1
            self._note_idle(worker)
            worker.kill()
            self._workers[index] = self._spawn()
            worker.task = None
            self._emit_terminal(
                emit, self._cancel_record(cell, attempt, meta)
            )

    def _note_idle(self, worker: _Worker) -> None:
        """Charge a busy worker's elapsed task time to its utilization
        account; call just before its task is cleared."""
        if worker.task is None:
            return
        elapsed = max(0.0, self._clock() - worker.started_at)
        with self._lock:
            self._busy_s[worker.id] = (
                self._busy_s.get(worker.id, 0.0) + elapsed
            )

    def _dispatch(self, now: float) -> None:
        """Hand ready pending cells to idle workers."""
        for index, worker in enumerate(self._workers):
            if worker.busy:
                continue
            task = self._next_ready(now)
            if task is None:
                break
            cell, attempt, meta = task
            try:
                worker.dispatch(cell, attempt, now, meta)
            except OSError:
                # The worker died (e.g. SIGKILLed) between _collect's
                # liveness check and this send.  The cell never started:
                # requeue it at the same attempt — the death is not its
                # failure — and replace the corpse.
                worker.task = None
                with self._lock:
                    self._pending.appendleft((cell, attempt, 0.0, meta))
                self.counters["respawns"] += 1
                worker.kill()
                self._workers[index] = self._spawn()
                continue
            self.counters["dispatched"] += 1
            tracer = self.tracer
            if (tracer is not None and meta is not None
                    and meta.get("trace")):
                submitted_ms = meta.get("submitted_ms")
                corr_id = meta.get("corr_id")
                if isinstance(submitted_ms, (int, float)) and isinstance(
                    corr_id, str
                ):
                    from repro.obs.svc import SPAN_POOL_QUEUE

                    end_ms = tracer.now_ms()
                    tracer.add_span(
                        SPAN_POOL_QUEUE,
                        corr_id,
                        float(submitted_ms),
                        max(0.0, end_ms - float(submitted_ms)),
                        cell_id=cell.cell_id,
                        worker=worker.id,
                        attempt=attempt,
                    )

    def _handle_worker_failure(
        self,
        emit: Callable[[Dict[str, Any]], None],
        worker: _Worker,
        failure: str,
        error_type: str,
        message: str,
    ) -> None:
        """A worker died or was killed mid-cell: retry or record."""
        task = worker.task
        assert task is not None  # only called for busy workers
        cell, attempt, meta = task
        self._note_idle(worker)
        worker.task = None
        if failure == "crash" and attempt <= self.max_retries:
            self._schedule_retry(cell, attempt, meta)
        else:
            self._emit_terminal(emit, self._failure_record(
                cell, attempt, failure,
                {"type": error_type, "message": message, "traceback": ""},
                meta=meta,
            ))

    def _collect(self, emit: Callable[[Dict[str, Any]], None]) -> None:
        """Receive finished records (or EOFs from dead workers)."""
        busy = [w for w in self._workers if w.busy]
        if not busy:
            time.sleep(_POLL_S)
            return
        ready = set(
            multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=_POLL_S
            )
        )
        for worker in busy:
            if worker.conn not in ready:
                continue
            try:
                record = worker.conn.recv()
            except (EOFError, OSError):
                self.counters["crashes"] += 1
                self.counters["respawns"] += 1
                exitcode = worker.process.exitcode
                assert worker.task is not None  # busy_conns filters on busy
                cell_id = worker.task[0].cell_id
                worker.process.join(_KILL_GRACE_S)
                worker.conn.close()
                replacement = self._spawn()
                self._handle_worker_failure(
                    emit, worker, "crash", "WorkerCrashed",
                    f"worker {worker.id} exited with code "
                    f"{exitcode} while running {cell_id}",
                )
                self._workers[self._workers.index(worker)] = replacement
                continue
            self._note_idle(worker)
            worker.task = None
            self._emit_terminal(emit, record)

    def _expire_timeouts(self, emit: Callable[[Dict[str, Any]], None]) -> None:
        """Kill, record, and respawn workers over the per-cell timeout."""
        if self.timeout_s is None:
            return
        now = self._clock()
        for index, worker in enumerate(self._workers):
            task = worker.task
            if task is None:
                continue
            if now - worker.started_at <= self.timeout_s:
                continue
            self.counters["timeouts"] += 1
            self.counters["respawns"] += 1
            cell, attempt, meta = task
            self._note_idle(worker)
            worker.kill()
            self._workers[index] = self._spawn()
            worker.task = None
            self._emit_terminal(emit, self._failure_record(
                cell, attempt, "timeout",
                {
                    "type": "CellTimeout",
                    "message": (
                        f"{cell.cell_id} exceeded the per-cell "
                        f"timeout of {self.timeout_s}s "
                        f"(attempt {attempt})"
                    ),
                    "traceback": "",
                },
                meta=meta,
            ))

    # -- driving modes -----------------------------------------------------

    def run(
        self,
        cells: List[Cell],
        emit: Callable[[Dict[str, Any]], None],
        deadline_monotonic: Optional[float] = None,
    ) -> PoolStatus:
        """Execute ``cells``; call ``emit`` once per terminal record."""
        with self._lock:
            self._pending.extend((cell, 1, 0.0, None) for cell in cells)
        return self._supervise(
            emit,
            deadline_monotonic=deadline_monotonic,
            workers_n=min(self.jobs, max(1, len(cells))),
            persistent=False,
        )

    def serve(
        self,
        emit: Callable[[Dict[str, Any]], None],
        deadline_monotonic: Optional[float] = None,
    ) -> PoolStatus:
        """Service mode: supervise until :meth:`request_stop`.

        Unlike :meth:`run`, an empty queue is not the end — the loop idles
        and picks up cells queued by :meth:`submit` from any thread.  On
        stop, in-flight cells drain exactly as in ``run``.
        """
        return self._supervise(
            emit,
            deadline_monotonic=deadline_monotonic,
            workers_n=self.jobs,
            persistent=True,
        )

    def _supervise(
        self,
        emit: Callable[[Dict[str, Any]], None],
        deadline_monotonic: Optional[float],
        workers_n: int,
        persistent: bool,
    ) -> PoolStatus:
        self._workers = [self._spawn() for _ in range(workers_n)]
        with self._lock:
            self._supervise_started_at = self._clock()
        try:
            while True:
                now = self._clock()
                if (deadline_monotonic is not None and now >= deadline_monotonic
                        and self._stop_reason is None):
                    self._stop_reason = "deadline"
                if self._stop_reason is not None:
                    # Draining still honours cancellation: without this a
                    # cancelled long cell would hold the drain hostage for
                    # its full runtime.
                    self._reap_cancelled_pending(emit)
                    self._kill_cancelled(emit)
                    if not any(w.busy for w in self._workers):
                        break
                else:
                    self._reap_cancelled_pending(emit)
                    self._kill_cancelled(emit)
                    self._dispatch(now)
                    if (not persistent and self.queue_depth() == 0
                            and not any(w.busy for w in self._workers)):
                        break
                self._collect(emit)
                self._expire_timeouts(emit)
        finally:
            for worker in self._workers:
                worker.shutdown()
            self._workers = []

        with self._lock:
            not_run = [cell for cell, _, _, _ in self._pending]
            if not persistent:
                self._pending.clear()
        return PoolStatus(
            stop_reason=self._stop_reason,
            counters=dict(self.counters),
            not_run=not_run,
        )

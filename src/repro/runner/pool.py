"""Supervised worker pool: fan cells out, survive the workers.

The pool owns long-lived worker processes (fork start method where
available, so each worker inherits the parent's warm imports and any
test-registered cell kinds) and supervises them:

* **per-cell timeout** — a cell running longer than ``timeout_s`` gets its
  worker killed, a structured ``timeout`` failure record, and a fresh
  worker; the rest of the sweep continues.
* **crash retry** — a worker that dies mid-cell (OOM kill, segfault,
  ``os._exit``) is respawned and the cell retried up to ``max_retries``
  times with exponential backoff; exhausted retries become a ``crash``
  failure record.  In-worker Python exceptions are *not* retried — the
  simulator is deterministic, so they would fail identically — and are
  recorded immediately with their traceback.
* **graceful stop** — ``request_stop`` (wired to SIGINT/SIGTERM by
  :func:`repro.runner.runner.run_plan`) stops dispatching, drains cells
  already in flight, and leaves the remainder for ``--resume``.

Records are emitted to a callback the moment each cell reaches a terminal
state, so the journal is fsynced continuously, not at the end.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.runner.execute import execute_cell
from repro.runner.plan import Cell

#: How long a killed worker gets to die before escalating to SIGKILL.
_KILL_GRACE_S = 2.0
#: Supervisor poll granularity.
_POLL_S = 0.05


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: receive (cell, attempt), execute, send the record.

    Workers ignore SIGINT so a terminal Ctrl-C (delivered to the whole
    foreground process group) lets the *parent* coordinate the drain
    instead of killing cells mid-flight.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        cell, attempt = task
        record: Dict[str, Any]
        try:
            outcome = execute_cell(cell)
            record = {
                "status": "ok",
                "digest": outcome.digest,
                "wall_s": round(outcome.wall_s, 6),
                "result_obj": outcome.result,
                # Full-precision serialization for the journal: resumed
                # runs rebuild SimulationResult(**record["result"]) and
                # the digest pins every float, so nothing is lost.
                "result": dataclasses.asdict(outcome.result),
            }
        except Exception as exc:  # report as a failure record, don't die
            record = {
                "status": "failed",
                "failure": "exception",
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                },
            }
        record.update(
            kind="cell",
            hash=cell.config_hash,
            cell_id=cell.cell_id,
            cell=cell.to_dict(),
            attempt=attempt,
            worker=worker_id,
        )
        try:
            conn.send(record)
        except (BrokenPipeError, OSError):
            return


def _pool_context():
    """fork where the platform has it (warm imports, test-kind
    inheritance); the default context elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-fork platforms
        return multiprocessing.get_context()


class _Worker:
    """One supervised worker process and its dedicated duplex pipe."""

    def __init__(self, context, worker_id: int) -> None:
        self.id = worker_id
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main, args=(child_conn, worker_id), daemon=True
        )
        self.process.start()
        child_conn.close()  # parent copy; EOF must reach us when it dies
        self.task: Optional[Tuple[Cell, int]] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(self, cell: Cell, attempt: int) -> None:
        self.task = (cell, attempt)
        self.started_at = time.monotonic()
        self.conn.send((cell, attempt))

    def kill(self) -> None:
        """Terminate, escalating to SIGKILL after a short grace."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_KILL_GRACE_S)
            if self.process.is_alive():  # pragma: no cover — stuck in D state
                self.process.kill()
                self.process.join(_KILL_GRACE_S)
        self.conn.close()

    def shutdown(self) -> None:
        """Polite stop for an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_KILL_GRACE_S)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


@dataclass
class PoolStatus:
    """What the pool did and why it returned."""

    stop_reason: Optional[str] = None  # None | "signal" | "deadline"
    counters: Dict[str, int] = field(default_factory=dict)
    #: Cells never dispatched (stop/deadline); candidates for --resume.
    not_run: List[Cell] = field(default_factory=list)


class SupervisedPool:
    """Run cells on ``jobs`` supervised workers; emit terminal records."""

    def __init__(
        self,
        jobs: int,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._stop_reason: Optional[str] = None
        self._context = _pool_context()
        self._next_worker_id = 0
        self.counters: Dict[str, int] = {
            "dispatched": 0, "ok": 0, "failed": 0, "timeouts": 0,
            "crashes": 0, "retries": 0, "respawns": 0,
        }

    def request_stop(self, reason: str = "signal") -> None:
        """Stop dispatching; drain in-flight cells, then return."""
        if self._stop_reason is None:
            self._stop_reason = reason

    def _spawn(self) -> _Worker:
        worker = _Worker(self._context, self._next_worker_id)
        self._next_worker_id += 1
        return worker

    def _failure_record(self, cell: Cell, attempt: int, failure: str,
                        error: Dict[str, str]) -> Dict[str, Any]:
        return {
            "kind": "cell",
            "hash": cell.config_hash,
            "cell_id": cell.cell_id,
            "cell": cell.to_dict(),
            "status": "failed",
            "failure": failure,
            "attempt": attempt,
            "error": error,
        }

    def run(
        self,
        cells: List[Cell],
        emit: Callable[[Dict[str, Any]], None],
        deadline_monotonic: Optional[float] = None,
    ) -> PoolStatus:
        """Execute ``cells``; call ``emit`` once per terminal record."""
        # (cell, attempt, not_before): retries wait out their backoff.
        pending: Deque[Tuple[Cell, int, float]] = deque(
            (cell, 1, 0.0) for cell in cells
        )
        workers = [self._spawn() for _ in range(min(self.jobs, max(1, len(cells))))]

        def handle_terminal(record: Dict[str, Any]) -> None:
            self.counters["ok" if record["status"] == "ok" else "failed"] += 1
            emit(record)

        def handle_crash(worker: _Worker, failure: str,
                         error_type: str, message: str) -> None:
            cell, attempt = worker.task  # type: ignore[misc]
            worker.task = None
            retryable = failure == "crash"
            if retryable and attempt <= self.max_retries:
                self.counters["retries"] += 1
                backoff = self.retry_backoff_s * (2.0 ** (attempt - 1))
                pending.appendleft((cell, attempt + 1,
                                    time.monotonic() + backoff))
            else:
                handle_terminal(self._failure_record(
                    cell, attempt, failure,
                    {"type": error_type, "message": message, "traceback": ""},
                ))

        try:
            while True:
                now = time.monotonic()
                if (deadline_monotonic is not None and now >= deadline_monotonic
                        and self._stop_reason is None):
                    self._stop_reason = "deadline"
                if self._stop_reason is not None:
                    pending_drained = not any(w.busy for w in workers)
                    if pending_drained:
                        break
                else:
                    # Dispatch to idle workers (respecting retry backoff).
                    for worker in workers:
                        if worker.busy or not pending:
                            continue
                        ready_idx = next(
                            (i for i, (_, _, nb) in enumerate(pending)
                             if nb <= now),
                            None,
                        )
                        if ready_idx is None:
                            break
                        pending.rotate(-ready_idx)
                        cell, attempt, _ = pending.popleft()
                        pending.rotate(ready_idx)
                        worker.dispatch(cell, attempt)
                        self.counters["dispatched"] += 1
                    if not pending and not any(w.busy for w in workers):
                        break

                # Collect results (or EOFs from dead workers).
                busy_conns = {w.conn: w for w in workers if w.busy}
                if busy_conns:
                    ready = multiprocessing.connection.wait(
                        list(busy_conns), timeout=_POLL_S
                    )
                    for conn in ready:
                        worker = busy_conns[conn]
                        try:
                            record = conn.recv()
                        except (EOFError, OSError):
                            self.counters["crashes"] += 1
                            self.counters["respawns"] += 1
                            exitcode = worker.process.exitcode
                            cell_id = worker.task[0].cell_id  # type: ignore[index]
                            worker.process.join(_KILL_GRACE_S)
                            worker.conn.close()
                            replacement = self._spawn()
                            handle_crash(
                                worker, "crash", "WorkerCrashed",
                                f"worker {worker.id} exited with code "
                                f"{exitcode} while running {cell_id}",
                            )
                            workers[workers.index(worker)] = replacement
                            continue
                        worker.task = None
                        handle_terminal(record)
                else:
                    time.sleep(_POLL_S)

                # Hung-cell detection: kill, record, respawn.
                if self.timeout_s is not None:
                    now = time.monotonic()
                    for index, worker in enumerate(workers):
                        if not worker.busy:
                            continue
                        if now - worker.started_at <= self.timeout_s:
                            continue
                        self.counters["timeouts"] += 1
                        self.counters["respawns"] += 1
                        cell, attempt = worker.task
                        worker.kill()
                        workers[index] = self._spawn()
                        worker.task = None
                        handle_terminal(self._failure_record(
                            cell, attempt, "timeout",
                            {
                                "type": "CellTimeout",
                                "message": (
                                    f"{cell.cell_id} exceeded the per-cell "
                                    f"timeout of {self.timeout_s}s "
                                    f"(attempt {attempt})"
                                ),
                                "traceback": "",
                            },
                        ))
        finally:
            for worker in workers:
                worker.shutdown()

        return PoolStatus(
            stop_reason=self._stop_reason,
            counters=dict(self.counters),
            not_run=[cell for cell, _, _ in pending],
        )

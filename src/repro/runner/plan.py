"""Declarative sweep plans: cells and their stable configuration hashes.

A :class:`Cell` is the unit of work of every evaluation artifact in the
paper: one (trace, policy, disks, parameters) combination, carried as
plain data so it can be hashed, journaled, shipped to a worker process,
and re-identified across runs.  ``experiments.py`` and the benchmark
harnesses emit lists of cells (a *plan*) instead of looping ``run_one``
inline; ``repro.runner`` executes plans serially, in a supervised
process pool, or resumed from a crash — always producing bit-identical
results (see ``docs/RUNNER.md``).

The **config hash** is a SHA-256 over the canonical JSON encoding of the
cell's parameters.  It is deliberately independent of execution details
(jobs, attempt counts, wall-clock), so a journal keyed by config hash
lets ``--resume`` recognise completed cells across interrupted runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Cell kinds understood by the stock executor (tests may register more
#: via :data:`repro.runner.execute.CELL_KINDS`).
KIND_RUN = "run"
KIND_TUNED_REVERSE = "tuned-reverse"


def jsonable(value: Any) -> Any:
    """A JSON-encodable canonical form of ``value``.

    Dataclasses (e.g. :class:`repro.faults.FaultSchedule` inside
    ``config_overrides``) encode as tagged dicts, tuples as lists, dict
    keys sorted as strings.  Anything else falls back to ``repr`` — good
    enough for hashing, and loud enough to notice in a journal.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        encoded["__type__"] = type(value).__name__
        return encoded
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): jsonable(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class Cell:
    """One declarative unit of sweep work.

    ``kind`` selects the executor: ``"run"`` is a single simulation,
    ``"tuned-reverse"`` grid-searches reverse aggressive's (F, batch)
    parameters and keeps the best elapsed time (the paper's baseline
    tuning).  ``params`` carries kind-specific options (the tuned grids).
    Explicit ``policy_kwargs`` always win over the scale-adjusted
    defaults applied at execution time.
    """

    trace: str
    policy: str
    disks: int
    kind: str = KIND_RUN
    scale: float = 1.0
    discipline: str = "cscan"
    cpu_speedup: float = 1.0
    cache_blocks: Optional[int] = None  # None: the paper's per-trace choice
    disk_model: str = "hp97560"
    seed: Optional[int] = None
    #: Apply the scale-adjusted policy defaults (horizon/batch shrink with
    #: the trace — see ``scaled_policy_kwargs``).  ``False`` runs the
    #: policy's stock parameters regardless of scale; the golden-result
    #: cells use this to pin the unmodified-policy digests.
    scaled_defaults: bool = True
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    policy_kwargs: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_setting(cls, setting: Any, trace: str, policy: str, disks: int,
                     **extra: Any) -> "Cell":
        """Build a cell from anything shaped like an ``ExperimentSetting``
        (duck-typed to avoid a circular import with ``analysis``)."""
        return cls(
            trace=trace,
            policy=policy,
            disks=disks,
            scale=setting.scale,
            discipline=setting.discipline,
            cpu_speedup=setting.cpu_speedup,
            cache_blocks=setting.cache_blocks,
            disk_model=setting.disk_model,
            seed=setting.seed,
            **extra,
        )

    @property
    def cell_id(self) -> str:
        """Human-readable identifier (mirrors the golden-test naming)."""
        suffix = "" if self.kind == KIND_RUN else f"+{self.kind}"
        return f"{self.trace}/{self.policy}/d{self.disks}/{self.discipline}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready encoding (the config-hash input)."""
        return {
            "kind": self.kind,
            "trace": self.trace,
            "policy": self.policy,
            "disks": self.disks,
            "scale": self.scale,
            "discipline": self.discipline,
            "cpu_speedup": self.cpu_speedup,
            "cache_blocks": self.cache_blocks,
            "disk_model": self.disk_model,
            "seed": self.seed,
            "scaled_defaults": self.scaled_defaults,
            "config_overrides": jsonable(dict(self.config_overrides)),
            "policy_kwargs": jsonable(dict(self.policy_kwargs)),
            "params": jsonable(dict(self.params)),
        }

    @property
    def config_hash(self) -> str:
        """Stable SHA-256 of the cell's parameters (journal key)."""
        serialized = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


def plan_hash(cells: Sequence[Cell]) -> str:
    """Order-sensitive SHA-256 over a whole plan (manifest key and the
    default journal directory name)."""
    serialized = json.dumps([cell.to_dict() for cell in cells], sort_keys=True)
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


def sweep_cells(
    setting: Any,
    trace_name: str,
    policies: Sequence[str],
    disk_counts: Sequence[int],
    tuned_reverse: bool = False,
    tuned_fetch_times: Sequence[float] = (2, 4, 8, 16, 64),
    tuned_batch_sizes: Optional[Sequence[int]] = None,
) -> List[Cell]:
    """The standard figure sweep as a plan: policies × disk counts.

    Cell order matches the historical ``sweep_policies`` loop (disks
    outer, policies inner) so rendered tables keep their row order.
    """
    cells: List[Cell] = []
    for num_disks in disk_counts:
        for policy in policies:
            if policy == "reverse-aggressive" and tuned_reverse:
                cells.append(tuned_reverse_cell(
                    setting, trace_name, num_disks,
                    fetch_times=tuned_fetch_times,
                    batch_sizes=tuned_batch_sizes,
                ))
            else:
                cells.append(Cell.from_setting(
                    setting, trace_name, policy, num_disks))
    return cells


def baseline_cells(
    setting: Any,
    trace_name: str,
    disk_counts: Sequence[int],
    policies: Sequence[str],
    tuned_reverse: bool = True,
) -> List[Cell]:
    """An Appendix-A-style table as a plan (policies outer, disks inner)."""
    cells: List[Cell] = []
    for policy in policies:
        for num_disks in disk_counts:
            if policy == "reverse-aggressive" and tuned_reverse:
                cells.append(tuned_reverse_cell(setting, trace_name, num_disks))
            else:
                cells.append(Cell.from_setting(
                    setting, trace_name, policy, num_disks))
    return cells


def tuned_reverse_cell(
    setting: Any,
    trace_name: str,
    num_disks: int,
    fetch_times: Sequence[float] = (2, 4, 8, 16, 64),
    batch_sizes: Optional[Sequence[int]] = None,
) -> Cell:
    """Reverse aggressive with the per-configuration (F, batch) grid search
    the paper's baseline uses ("chosen to minimize its elapsed time")."""
    if not tuple(fetch_times):
        raise ValueError(
            "tuned reverse-aggressive: fetch_times grid is empty — pass at "
            "least one fetch-time estimate (e.g. APPENDIX_F_FETCH_TIMES)"
        )
    if batch_sizes is not None and not tuple(batch_sizes):
        raise ValueError(
            "tuned reverse-aggressive: batch_sizes grid is empty — pass at "
            "least one reverse batch size or None for the per-disk default"
        )
    return Cell.from_setting(
        setting, trace_name, "reverse-aggressive", num_disks,
        kind=KIND_TUNED_REVERSE,
        params={
            "fetch_times": tuple(fetch_times),
            "batch_sizes": None if batch_sizes is None else tuple(batch_sizes),
        },
    )

"""Cell execution: the one code path behind serial, parallel, and resumed
sweeps.

Everything that turns a declarative :class:`~repro.runner.plan.Cell` into
a :class:`~repro.core.results.SimulationResult` lives here, so a cell run
inline by ``experiments.py``, in a pool worker, or re-run after a crash
follows byte-for-byte the same path — the foundation of the runner's
bit-identity guarantee (``docs/RUNNER.md``).

The **result digest** is the SHA-256 of the full-precision JSON
serialization of the result (plus the recorded timeline where enabled),
exactly as ``tests/test_golden_results.py`` pins it; runner digests are
therefore directly comparable to the golden values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import POLICIES, SimConfig, Simulator, make_policy
from repro.core.batching import batch_size_for
from repro.core.results import SimulationResult
from repro.runner.plan import KIND_RUN, KIND_TUNED_REVERSE, Cell
from repro.trace import WORKLOADS
from repro.trace import build as build_workload
from repro.trace import cache_blocks_for
from repro.trace.trace import Trace

if TYPE_CHECKING:
    from repro.obs import Observer
    from repro.perf import PhaseProfiler

#: Keyed by (name, scale, seed) — the complete build_workload signature —
#: so differently scaled cells never alias.
TraceCache = Dict[Tuple[str, float, Optional[int]], Trace]

#: Cross-cell trace cache for long-lived processes (pool workers replay
#: many cells of the same trace; rebuilding it per cell would dominate).
_TRACE_CACHE: TraceCache = {}


def validate_names(trace_name: str, policy: object) -> None:
    """Fail fast, and readably, on unknown trace/policy names.

    The runner's structured failure records quote the exception message
    verbatim, so an unknown name must say what the valid names are
    instead of surfacing as a KeyError deep in ``make_policy`` or
    ``build_workload``.
    """
    if trace_name not in WORKLOADS:
        raise ValueError(
            f"unknown trace {trace_name!r}; valid traces: "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    if isinstance(policy, str) and policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; valid policies: "
            f"{', '.join(sorted(POLICIES))}"
        )


def get_trace(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    cache: Optional[TraceCache] = None,
) -> Trace:
    """Build (or reuse) a workload; ``cache`` defaults to the module-wide
    per-process cache."""
    store = _TRACE_CACHE if cache is None else cache
    key = (name, scale, seed)
    trace = store.get(key)
    if trace is None:
        trace = build_workload(name, scale=scale, seed=seed)
        # Per-process memo by design: each forked worker rebuilds and
        # caches its own traces; nothing reads the parent's copy back,
        # so the copy-on-write divergence SL014 warns about is the point.
        store[key] = trace  # simlint: disable=SL014
    return trace


def scaled_policy_kwargs(
    policy: str, num_disks: int, scale: float
) -> Dict[str, object]:
    """Device-time parameters, shrunk alongside the trace.

    The prefetch horizon (62) and Table 6 batch sizes are *device*
    constants; at reduced trace scale they would dwarf the (shrunken)
    missing-block runs and distort every regime.  Scaling them with the
    trace preserves the paper's qualitative structure.
    """
    if scale >= 1.0:
        return {}
    kwargs: Dict[str, object] = {}
    if policy in ("fixed-horizon", "forestall"):
        kwargs["horizon"] = max(8, int(62 * scale))
    if policy in ("aggressive", "forestall", "reverse-aggressive"):
        kwargs["batch_size"] = max(4, int(batch_size_for(num_disks) * scale))
    if policy == "reverse-aggressive":
        kwargs["forward_batch_size"] = kwargs.pop("batch_size")
    return kwargs


def sim_config_for(cell: Cell) -> SimConfig:
    """The cell's SimConfig — identical to what ``ExperimentSetting``
    produces for the same parameters."""
    cache_blocks = cell.cache_blocks
    if cache_blocks is None:
        cache_blocks = cache_blocks_for(cell.trace, cell.scale)
    return SimConfig(
        cache_blocks=cache_blocks,
        discipline=cell.discipline,
        cpu_speedup=cell.cpu_speedup,
        disk_model=cell.disk_model,
    ).with_(**dict(cell.config_overrides))


def result_digest(result: SimulationResult,
                  timeline: Optional[List[Any]] = None) -> str:
    """SHA-256 of the complete serialized outcome (golden-test scheme:
    json renders floats via repr, so any ULP drift changes the digest)."""
    payload = dataclasses.asdict(result)
    if timeline is not None:
        payload["timeline"] = timeline
    serialized = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


@dataclass
class CellOutcome:
    """One executed cell: the result, its digest, and the wall cost."""

    cell: Cell
    result: SimulationResult
    digest: str
    wall_s: float

    @property
    def config_hash(self) -> str:
        return self.cell.config_hash


def _run_simulation(
    cell: Cell,
    policy_kwargs: Dict[str, Any],
    profiler: Optional["PhaseProfiler"] = None,
    observer: Optional["Observer"] = None,
    trace_cache: Optional[TraceCache] = None,
) -> Tuple[SimulationResult, str]:
    """One simulation for a cell; returns (result, digest)."""
    validate_names(cell.trace, cell.policy)
    trace = get_trace(cell.trace, cell.scale, cell.seed, cache=trace_cache)
    config = sim_config_for(cell)
    kwargs = (
        scaled_policy_kwargs(cell.policy, cell.disks, cell.scale)
        if cell.scaled_defaults else {}
    )
    kwargs.update(policy_kwargs)
    sim = Simulator(
        trace, make_policy(cell.policy, **kwargs), cell.disks, config,
        profiler=profiler, observer=observer,
    )
    result = sim.run()
    timeline = sim.timeline.events if config.record_timeline else None
    return result, result_digest(result, timeline)


def _execute_run(
    cell: Cell,
    profiler: Optional["PhaseProfiler"] = None,
    observer: Optional["Observer"] = None,
    trace_cache: Optional[TraceCache] = None,
) -> Tuple[SimulationResult, str]:
    return _run_simulation(
        cell, dict(cell.policy_kwargs),
        profiler=profiler, observer=observer, trace_cache=trace_cache,
    )


def _execute_tuned_reverse(
    cell: Cell,
    profiler: Optional["PhaseProfiler"] = None,
    observer: Optional["Observer"] = None,
    trace_cache: Optional[TraceCache] = None,
) -> Tuple[SimulationResult, str]:
    """The paper's baseline tuning: grid-search (F, reverse batch) and keep
    the best elapsed time (first winner on ties, like the serial loop)."""
    fetch_times = tuple(cell.params.get("fetch_times", (2, 4, 8, 16, 64)))
    batch_sizes = cell.params.get("batch_sizes")
    if batch_sizes is None:
        batch_sizes = (batch_size_for(cell.disks),)
    else:
        batch_sizes = tuple(batch_sizes)
    if not fetch_times:
        raise ValueError(
            "tuned reverse-aggressive: fetch_times grid is empty — pass at "
            "least one fetch-time estimate"
        )
    if not batch_sizes:
        raise ValueError(
            "tuned reverse-aggressive: batch_sizes grid is empty — pass at "
            "least one reverse batch size or None for the per-disk default"
        )
    best: Optional[SimulationResult] = None
    for fetch_time in fetch_times:
        for batch in batch_sizes:
            kwargs = dict(cell.policy_kwargs)
            kwargs.update(
                fetch_time_estimate=fetch_time, reverse_batch_size=batch
            )
            result, _ = _run_simulation(
                cell, kwargs,
                profiler=profiler, observer=observer, trace_cache=trace_cache,
            )
            if best is None or result.elapsed_ms < best.elapsed_ms:
                best = result
    assert best is not None
    best.policy_name = "reverse-aggressive"
    return best, result_digest(best)


#: Executors by cell kind.  Tests register extra kinds (sleep, crash-once,
#: always-fail) to exercise the supervisor; the fork start method means
#: parent-registered kinds are visible in pool workers.
CELL_KINDS: Dict[str, Callable[..., Tuple[SimulationResult, str]]] = {
    KIND_RUN: _execute_run,
    KIND_TUNED_REVERSE: _execute_tuned_reverse,
}


def execute_cell(
    cell: Cell,
    profiler: Optional["PhaseProfiler"] = None,
    observer: Optional["Observer"] = None,
    trace_cache: Optional[TraceCache] = None,
) -> CellOutcome:
    """Execute one cell (any kind) and digest its outcome."""
    try:
        executor = CELL_KINDS[cell.kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {cell.kind!r}; valid kinds: "
            f"{', '.join(sorted(CELL_KINDS))}"
        ) from None
    start = time.perf_counter()
    result, digest = executor(
        cell, profiler=profiler, observer=observer, trace_cache=trace_cache
    )
    wall_s = time.perf_counter() - start
    return CellOutcome(cell=cell, result=result, digest=digest, wall_s=wall_s)


def execute_cells(
    cells: Sequence[Cell], trace_cache: Optional[TraceCache] = None
) -> List[CellOutcome]:
    """Serial in-process plan execution (the reference semantics every
    parallel/resumed run must reproduce bit-identically)."""
    local_cache: TraceCache = {} if trace_cache is None else trace_cache
    return [execute_cell(cell, trace_cache=local_cache) for cell in cells]

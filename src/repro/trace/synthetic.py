"""Access-pattern primitives for synthesizing application traces.

The paper's traces are unavailable (DECstation 5000/200 captures from
1995), so each application is re-synthesized from its described access
pattern and calibrated to the Table 3 aggregates.  These primitives are
the vocabulary: sequential passes, file sets, index/data mixes, strided
slices, and the compute-gap distributions layered on top.
"""

import random
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class BlockSpace:
    """Allocates contiguous block-id ranges, one per file."""

    def __init__(self) -> None:
        self._next_block = 0
        self._next_file = 0
        self.files: Dict[int, Tuple[int, int]] = {}

    def new_file(self, num_blocks: int) -> List[int]:
        """Allocate a file of ``num_blocks`` blocks; returns its block ids."""
        if num_blocks < 1:
            raise ValueError("files must contain at least one block")
        file_id = self._next_file
        self._next_file += 1
        start = self._next_block
        self._next_block += num_blocks
        ids = list(range(start, start + num_blocks))
        for offset, block in enumerate(ids):
            self.files[block] = (file_id, offset)
        return ids


# --- reference-pattern primitives ------------------------------------------------


def sequential_passes(file_blocks: Sequence[int], passes: float) -> List[int]:
    """``passes`` full sequential sweeps over a file (fractional tail ok)."""
    refs: List[int] = []
    whole = int(passes)
    for _ in range(whole):
        refs.extend(file_blocks)
    tail = int(round((passes - whole) * len(file_blocks)))
    refs.extend(file_blocks[:tail])
    return refs


def interleave_rounds(streams: Sequence[Iterable[int]]) -> List[int]:
    """Concatenate streams round-robin one element at a time."""
    iterators = [iter(s) for s in streams]
    refs: List[int] = []
    live = list(iterators)
    while live:
        still: List[Iterator[int]] = []
        for iterator in live:
            try:
                refs.append(next(iterator))
                still.append(iterator)
            except StopIteration:
                pass
        live = still
    return refs


def index_data_scan(
    index_blocks: Sequence[int],
    data_blocks: Sequence[int],
    index_period: int,
    rng: random.Random,
    data_run: int = 1,
    data_order: str = "random",
) -> List[int]:
    """Index-driven data access: every ``index_period`` data references,
    revisit a random index block — the paper's description of glimpse and
    the postgres queries (index blocks hot, data blocks cold)."""
    data = list(data_blocks)
    if data_order == "random":
        rng.shuffle(data)
    refs: List[int] = []
    position = 0
    while position < len(data):
        refs.append(rng.choice(index_blocks))
        for _ in range(index_period):
            run_end = min(len(data), position + data_run)
            refs.extend(data[position:run_end])
            position = run_end
            if position >= len(data):
                break
    return refs


def strided_slice(
    file_blocks: Sequence[int], start: int, stride: int, count: int
) -> List[int]:
    """A planar slice through a volume file: every ``stride``-th block."""
    size = len(file_blocks)
    return [file_blocks[(start + i * stride) % size] for i in range(count)]


# --- compute-gap distributions -------------------------------------------------------


def exponential_gaps(count: int, mean_ms: float, rng: random.Random) -> List[float]:
    """Poisson-process inter-reference compute times (paper's synth trace)."""
    return [rng.expovariate(1.0 / mean_ms) for _ in range(count)]


def bursty_gaps(
    count: int,
    low_ms: float,
    high_ms: float,
    run_mean: int,
    rng: random.Random,
) -> List[float]:
    """Alternating runs of short and long compute times (cscope3's bursts:
    runs near 1 ms interspersed with runs around 7 ms)."""
    gaps: List[float] = []
    use_low = True
    while len(gaps) < count:
        run = max(1, int(rng.expovariate(1.0 / run_mean)))
        base = low_ms if use_low else high_ms
        for _ in range(min(run, count - len(gaps))):
            gaps.append(max(0.05, rng.gauss(base, base * 0.1)))
        use_low = not use_low
    return gaps


def fit_length(refs: List[int], target: int, rng: random.Random) -> List[int]:
    """Trim or cyclically extend ``refs`` to exactly ``target`` references.

    Extension repeats from the start (another partial pass), preserving the
    pattern; it never invents new blocks, so distinct-block counts hold.
    """
    if not refs:
        raise ValueError("cannot fit an empty reference stream")
    if len(refs) >= target:
        return refs[:target]
    out = list(refs)
    while len(out) < target:
        out.extend(refs[: target - len(out)])
    return out

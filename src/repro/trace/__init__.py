"""Traces: reference streams, synthesis primitives, and the paper's
ten calibrated workloads."""

from repro.trace import io as trace_io
from repro.trace.trace import Trace
from repro.trace.workloads import (
    COMPUTE_AS_SIMULATED,
    DEFAULT_CACHE_BLOCKS,
    PAPER_CACHE_BLOCKS,
    TABLE3,
    WORKLOADS,
    XL_WORKLOADS,
    build,
    cache_blocks_for,
)

__all__ = [
    "COMPUTE_AS_SIMULATED",
    "DEFAULT_CACHE_BLOCKS",
    "PAPER_CACHE_BLOCKS",
    "TABLE3",
    "Trace",
    "trace_io",
    "WORKLOADS",
    "XL_WORKLOADS",
    "build",
    "cache_blocks_for",
]

"""Plain-text trace import/export.

A line-oriented format for bringing external traces into the simulator
(the JSON round-trip in :class:`~repro.trace.trace.Trace` is the native
format; this one is for hand-written or converted captures)::

    # comment lines and blanks are ignored
    # name: my-app          <- optional header directives
    # description: anything
    R 1042 0.85             <- read block 1042, then compute 0.85 ms
    W 1042 1.20             <- write it back, then compute 1.20 ms
    R 7 2.0

Columns are operation (``R``/``W``), block id (int), and the compute time
following the reference (ms, optional — defaults to 1.0).
"""

from typing import List

from repro.trace.trace import Trace


class TraceFormatError(ValueError):
    """A text trace line could not be parsed."""


def loads(text: str, name: str = "imported") -> Trace:
    """Parse a text trace from a string."""
    blocks: List[int] = []
    compute_ms: List[float] = []
    writes: List[bool] = []
    description = ""
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            directive = line[1:].strip()
            if directive.lower().startswith("name:"):
                name = directive[5:].strip()
            elif directive.lower().startswith("description:"):
                description = directive[12:].strip()
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            raise TraceFormatError(
                f"line {line_number}: expected 'R|W <block> [compute_ms]', "
                f"got {raw!r}"
            )
        op = fields[0].upper()
        if op not in ("R", "W"):
            raise TraceFormatError(
                f"line {line_number}: unknown operation {fields[0]!r}"
            )
        try:
            block = int(fields[1])
            gap = float(fields[2]) if len(fields) == 3 else 1.0
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from None
        if gap < 0:
            raise TraceFormatError(
                f"line {line_number}: negative compute time"
            )
        blocks.append(block)
        compute_ms.append(gap)
        writes.append(op == "W")
    if not blocks:
        raise TraceFormatError("trace contains no references")
    return Trace(
        name=name,
        blocks=blocks,
        compute_ms=compute_ms,
        writes=writes if any(writes) else None,
        description=description,
    )


def load(path: str) -> Trace:
    """Parse a text trace file."""
    with open(path) as handle:
        return loads(handle.read(), name=path.rsplit("/", 1)[-1])


def dumps(trace: Trace) -> str:
    """Serialize a trace to the text format."""
    lines = [f"# name: {trace.name}"]
    if trace.description:
        lines.append(f"# description: {trace.description}")
    writes = trace.writes or [False] * len(trace.blocks)
    for block, gap, is_write in zip(trace.blocks, trace.compute_ms, writes):
        op = "W" if is_write else "R"
        lines.append(f"{op} {block} {gap:g}")
    return "\n".join(lines) + "\n"


def dump(trace: Trace, path: str) -> None:
    """Write a trace to a text file."""
    with open(path, "w") as handle:
        handle.write(dumps(trace))

"""The ten workloads of the paper, re-synthesized.

Each builder reproduces the access-pattern *structure* the paper describes
for that application and is calibrated to its Table 3 row (reads, distinct
blocks, total compute seconds).  The originals were captured on a
DECstation 5000/200 and are long gone; what the algorithms actually consume
— sequentiality, re-reference frequency, hot/cold block populations,
inter-reference compute-time distribution — is reproduced here.

Every builder accepts ``scale`` to shrink a trace proportionally (smaller
reads/distinct counts, same structure) and ``seed`` for deterministic
randomness.
"""

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.trace.synthetic import (
    BlockSpace,
    bursty_gaps,
    exponential_gaps,
    fit_length,
    sequential_passes,
    strided_slice,
)
from repro.trace.trace import Trace

#: Table 3 as printed in the paper: reads, distinct blocks, total compute
#: seconds.  NOTE: the paper's appendix tables and figures are internally
#: consistent with the postgres-join and postgres-select compute times
#: SWAPPED relative to this table (e.g. appendix Table 16 shows
#: postgres-select with ~11.5 s of compute and Table 15 shows postgres-join
#: with ~79.2 s).  The builders below follow the appendix/figures — see
#: :data:`COMPUTE_AS_SIMULATED` — since those define every result we
#: reproduce.
TABLE3 = {
    "dinero": (8867, 986, 103.5),
    "cscope1": (8673, 1073, 24.9),
    "cscope2": (20206, 2462, 37.1),
    "cscope3": (30200, 3910, 74.1),
    "glimpse": (27981, 5247, 38.7),
    "ld": (5881, 2882, 8.2),
    "postgres-join": (8896, 3793, 11.5),
    "postgres-select": (5044, 3085, 79.2),
    "xds": (10435, 5392, 30.8),
    "synth": (100000, 2000, 99.9),
}

#: Compute totals the paper's simulations actually used (appendix-consistent).
COMPUTE_AS_SIMULATED = dict(
    {name: row[2] for name, row in TABLE3.items()},
    **{"postgres-join": 79.2, "postgres-select": 11.5},
)

#: Cache sizes used in the paper: 512 blocks (4 MB) for the two traces with
#: fewer than 1280 distinct blocks, 1280 blocks (10 MB) for the rest.
PAPER_CACHE_BLOCKS = {"dinero": 512, "cscope1": 512}
DEFAULT_CACHE_BLOCKS = 1280


def cache_blocks_for(trace_name: str, scale: float = 1.0) -> int:
    """The paper's cache size for a trace, scaled alongside the trace."""
    base_name = trace_name.split("[")[0]
    base = PAPER_CACHE_BLOCKS.get(base_name, DEFAULT_CACHE_BLOCKS)
    return max(16, int(base * scale))


def _targets(name: str, scale: float) -> Tuple[int, int, float]:
    reads, distinct, _compute_s = TABLE3[name]
    compute_s = COMPUTE_AS_SIMULATED[name]
    return (
        max(8, int(reads * scale)),
        max(4, int(distinct * scale)),
        compute_s * scale,
    )


def _finish(
    name: str,
    refs: List[int],
    reads: int,
    compute_s: float,
    gap_builder: Callable[[int], List[float]],
    files: Optional[Dict[int, Tuple[int, int]]],
    rng: random.Random,
    description: str,
) -> Trace:
    refs = fit_length(refs, reads, rng)
    gaps = gap_builder(reads)
    trace = Trace(
        name=name,
        blocks=refs,
        compute_ms=gaps,
        files=files,
        description=description,
    )
    return trace.rescale_compute(compute_s)


def _split_file_sizes(
    total_blocks: int, num_files: int, rng: random.Random
) -> List[int]:
    """Uneven file sizes summing to ``total_blocks`` (log-uniform-ish)."""
    num_files = min(num_files, total_blocks)
    weights = [rng.uniform(0.5, 2.0) ** 2 for _ in range(num_files)]
    scale = total_blocks / sum(weights)
    sizes = [max(1, int(w * scale)) for w in weights]
    # Fix rounding drift on the largest file.
    sizes[sizes.index(max(sizes))] += total_blocks - sum(sizes)
    return [s for s in sizes if s > 0]


# --- individual applications --------------------------------------------------------


def dinero(scale: float = 1.0, seed: int = 1) -> Trace:
    """Cache simulator: reads one file sequentially, many times over."""
    reads, distinct, compute_s = _targets("dinero", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    file_blocks = space.new_file(distinct)
    refs = sequential_passes(file_blocks, reads / distinct)
    return _finish(
        "dinero", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        space.files, rng,
        "one file read sequentially multiple times",
    )


def _cscope(name: str, scale: float, seed: int, bursty: bool = False) -> Trace:
    """cscope: multiple files of a source package read sequentially, once
    per query, for several queries."""
    reads, distinct, compute_s = _targets(name, scale)
    rng = random.Random(seed)
    space = BlockSpace()
    num_files = max(2, int(12 * scale) or 2)
    file_ids = [
        space.new_file(size)
        for size in _split_file_sizes(distinct, num_files, rng)
    ]
    one_query: List[int] = []
    for blocks in file_ids:
        one_query.extend(blocks)
    queries = reads / len(one_query)
    refs = sequential_passes(one_query, queries)
    gap_builder: Callable[[int], List[float]]
    if bursty:
        gap_builder = lambda n: bursty_gaps(n, 1.0, 7.0, 40, rng)
    else:
        gap_builder = lambda n: exponential_gaps(n, 1.0, rng)
    return _finish(
        name, refs, reads, compute_s, gap_builder, space.files, rng,
        "C-source search: package files read sequentially per query",
    )


def cscope1(scale: float = 1.0, seed: int = 2) -> Trace:
    return _cscope("cscope1", scale, seed)


def cscope2(scale: float = 1.0, seed: int = 3) -> Trace:
    return _cscope("cscope2", scale, seed)


def cscope3(scale: float = 1.0, seed: int = 4) -> Trace:
    """cscope3 is the bursty-compute trace that trips reverse aggressive."""
    return _cscope("cscope3", scale, seed, bursty=True)


def glimpse(scale: float = 1.0, seed: int = 5) -> Trace:
    """Text retrieval: small index files re-read constantly, big data files
    visited infrequently."""
    reads, distinct, compute_s = _targets("glimpse", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    index_size = max(2, int(distinct * 0.076))  # ~400 of 5247
    index = space.new_file(index_size)
    data_total = distinct - index_size
    searches = 4
    partitions: List[List[int]] = []
    base = data_total // searches
    for i in range(searches):
        size = base if i < searches - 1 else data_total - base * (searches - 1)
        partitions.append(space.new_file(size))
    # Reads budget: every data block once, an index touch every other data
    # block, and the remainder as whole index re-read passes.  Budgeting
    # *under* the target matters: the stream is cyclically extended (never
    # trimmed), so every block keeps its reference.
    touch_every = 2
    touches = sum((len(p) + touch_every - 1) // touch_every for p in partitions)
    index_pass_budget = reads - data_total - touches
    index_passes_per_search = max(
        1, index_pass_budget // (searches * index_size)
    )
    refs: List[int] = []
    for partition in partitions:
        for _ in range(index_passes_per_search):
            refs.extend(index)
        for i, block in enumerate(partition):
            refs.append(block)
            if i % touch_every == 0:
                refs.append(rng.choice(index))
    return _finish(
        "glimpse", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        space.files, rng,
        "index files hot, data files cold (4 keyword searches)",
    )


def ld(scale: float = 1.0, seed: int = 6) -> Trace:
    """Link editor: many object files, each read sequentially, most twice
    (symbol pass then section pass)."""
    reads, distinct, compute_s = _targets("ld", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    num_files = max(2, int(90 * scale) or 2)
    object_files = [
        space.new_file(size)
        for size in _split_file_sizes(distinct, num_files, rng)
    ]
    refs: List[int] = []
    for blocks in object_files:  # pass 1: read symbols
        refs.extend(blocks)
    for blocks in reversed(object_files):  # pass 2: load sections
        refs.extend(blocks)
    return _finish(
        "ld", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        space.files, rng,
        "object files read sequentially, two passes",
    )


def postgres_join(scale: float = 1.0, seed: int = 7) -> Trace:
    """Indexed join: outer relation scanned once; inner reached through a
    small, very hot index."""
    reads, distinct, compute_s = _targets("postgres-join", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    outer_size = max(2, int(distinct * 0.108))  # ~410 of 3793
    index_size = max(2, int(distinct * 0.017))  # ~64 of 3793
    inner_size = distinct - outer_size - index_size
    outer = space.new_file(outer_size)
    index = space.new_file(index_size)
    inner = space.new_file(inner_size)
    inner_order = list(inner)
    rng.shuffle(inner_order)
    index_touches = reads - outer_size - inner_size
    touches_per_outer = max(1, index_touches // outer_size)
    inner_per_outer = max(1, inner_size // outer_size)
    refs: List[int] = []
    inner_pos = 0
    for outer_block in outer:
        refs.append(outer_block)
        for _ in range(touches_per_outer):
            refs.append(rng.choice(index))
        run_end = min(len(inner_order), inner_pos + inner_per_outer)
        refs.extend(inner_order[inner_pos:run_end])
        inner_pos = run_end
    refs.extend(inner_order[inner_pos:])
    return _finish(
        "postgres-join", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        space.files, rng,
        "Wisconsin join: hot index blocks, cold data blocks",
    )


def postgres_select(scale: float = 1.0, seed: int = 8) -> Trace:
    """Indexed 2% selection: index lookups interleaved with the selected
    data blocks, with long per-tuple compute."""
    reads, distinct, compute_s = _targets("postgres-select", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    index_size = max(2, int(distinct * 0.065))  # ~200 of 3085
    data_size = distinct - index_size
    index = space.new_file(index_size)
    data = space.new_file(data_size)
    selected = list(data)
    rng.shuffle(selected)
    index_touches = reads - data_size
    refs: List[int] = []
    touch_accumulator = 0.0
    per_data = index_touches / data_size
    for block in selected:
        touch_accumulator += per_data
        while touch_accumulator >= 1.0:
            refs.append(rng.choice(index))
            touch_accumulator -= 1.0
        refs.append(block)
    return _finish(
        "postgres-select", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 15.7, rng),
        space.files, rng,
        "Wisconsin 2% indexed selection",
    )


def xds(scale: float = 1.0, seed: int = 9) -> Trace:
    """3-D visualization: 25 planar slices at random orientations through a
    volume file — strided access with partial overlap between slices."""
    reads, distinct, compute_s = _targets("xds", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    # Volume sized so random slices overlap down to the target distinct count.
    volume_size = max(distinct + 2, int(distinct * 1.30))
    volume = space.new_file(volume_size)
    slices = 25
    per_slice = max(1, reads // slices)
    refs: List[int] = []
    # The volume's "side" stride must not alias with the stripe width, or a
    # whole slice lands on one disk — real volumes have odd dimensions and
    # the paper's 64 MB file gives side 19 (prime).  Keep that property at
    # any scale by rounding the side up to a prime.
    side = _next_prime(max(2, int(round(volume_size ** (1.0 / 3.0)))))
    stride_choices = [1, side, side * side]
    for _ in range(slices):
        stride = rng.choice(stride_choices)
        start = rng.randrange(volume_size)
        refs.extend(strided_slice(volume, start, stride, per_slice))
    refs = _force_distinct(refs, distinct)
    kept = set(refs)
    files = {b: fo for b, fo in space.files.items() if b in kept}
    return _finish(
        "xds", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        files, rng,
        "XDataSlice: 25 strided planar slices of a volume",
    )


def _next_prime(n: int) -> int:
    """Smallest prime >= n (n is tiny here: cube roots of volume sizes)."""
    candidate = max(2, n)
    while True:
        if all(candidate % p for p in range(2, int(candidate ** 0.5) + 1)):
            return candidate
        candidate += 1


def _force_distinct(refs: List[int], target: int) -> List[int]:
    """Fold the distinct-block population down to exactly ``target``.

    Blocks beyond the first ``target`` distinct (in order of first
    appearance) are remapped deterministically onto the kept population,
    preserving the reference pattern's shape.
    """
    kept: List[int] = []
    seen: Dict[int, int] = {}
    for block in refs:
        if block not in seen:
            if len(kept) < target:
                seen[block] = block
                kept.append(block)
            else:
                seen[block] = kept[block % target]
    return [seen[b] for b in refs]


def synth(scale: float = 1.0, seed: int = 10) -> Trace:
    """The paper's synthetic trace: 50 passes over a loop of 2000 sequential
    blocks, Poisson compute gaps with a 1 ms mean."""
    reads, distinct, compute_s = _targets("synth", scale)
    rng = random.Random(seed)
    space = BlockSpace()
    loop = space.new_file(distinct)
    refs = sequential_passes(loop, reads / distinct)
    return _finish(
        "synth", refs, reads, compute_s,
        lambda n: exponential_gaps(n, 1.0, rng),
        space.files, rng,
        "50 passes over a 2000-block sequential loop",
    )


def synth_xl(scale: float = 1.0, seed: int = 11) -> Trace:
    """Million-block stress trace for the batched hot core (not in Table 3).

    At scale 1.0: two million references over one hundred thousand distinct
    blocks — a 2% hot index touched between variable-length sequential runs
    through a large cold file.  The shape deliberately exercises every hot
    path the array-backed core vectorizes: long missing-block scans (cold
    sweeps), heap revalidation (hot blocks keep jumping forward), and
    successor-array walks far past the cursor.
    """
    reads = max(1_000, int(2_000_000 * scale))
    distinct = max(100, int(100_000 * scale))
    rng = random.Random(seed)
    space = BlockSpace()
    hot_size = max(2, distinct // 50)
    hot = space.new_file(hot_size)
    cold = space.new_file(distinct - hot_size)
    refs: List[int] = []
    cold_pos = 0
    n_cold = len(cold)
    while len(refs) < reads:
        for _ in range(rng.randrange(8, 64)):
            refs.append(cold[cold_pos])
            cold_pos = (cold_pos + 1) % n_cold
        refs.append(hot[rng.randrange(hot_size)])
    del refs[reads:]
    trace = Trace(
        name="synth-xl",
        blocks=refs,
        compute_ms=exponential_gaps(reads, 1.0, rng),
        files=space.files,
        description="XL stress: hot index between sequential cold sweeps",
    )
    return trace.rescale_compute(reads / 1000.0)


#: Registry of all workload builders, in the paper's Table 3 order.
WORKLOADS: Dict[str, Callable[..., Trace]] = {
    "dinero": dinero,
    "cscope1": cscope1,
    "cscope2": cscope2,
    "cscope3": cscope3,
    "glimpse": glimpse,
    "ld": ld,
    "postgres-join": postgres_join,
    "postgres-select": postgres_select,
    "xds": xds,
    "synth": synth,
}

#: Extra-large traces for performance work only — deliberately *not* part of
#: WORKLOADS, which tests pin to the paper's ten Table 3 rows.
XL_WORKLOADS: Dict[str, Callable[..., Trace]] = {
    "synth-xl": synth_xl,
}


def build(name: str, scale: float = 1.0, seed: Optional[int] = None) -> Trace:
    """Build a workload by name (Table 3 set plus the XL perf tier)."""
    builder = WORKLOADS.get(name) or XL_WORKLOADS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown workload {name!r}; expected one of "
            f"{sorted(WORKLOADS) + sorted(XL_WORKLOADS)}"
        )
    if seed is None:
        return builder(scale=scale)
    return builder(scale=scale, seed=seed)

"""Trace container: a hinted, read-only file-access reference stream.

A trace is the paper's unit of workload: an ordered sequence of block read
requests plus the measured CPU time between consecutive requests.  Blocks
are small integers; traces that carry file structure also map each block to
a ``(file_id, offset)`` pair so the placement layer can cluster files the
way the paper's file systems did.
"""

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class Trace:
    """One application's read-reference stream with compute gaps."""

    name: str
    blocks: List[int]
    compute_ms: List[float]
    files: Optional[Dict[int, Tuple[int, int]]] = None
    description: str = ""
    #: Optional per-reference write flags (True = the reference writes the
    #: block).  The paper ignores writes; the engine supports them with
    #: write-behind (see repro.core.engine).
    writes: Optional[List[bool]] = None

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.compute_ms):
            raise ValueError(
                f"trace {self.name!r}: {len(self.blocks)} blocks but "
                f"{len(self.compute_ms)} compute gaps"
            )
        if self.writes is not None and len(self.writes) != len(self.blocks):
            raise ValueError(
                f"trace {self.name!r}: writes mask length mismatch"
            )

    # -- summary statistics (Table 3 columns) -----------------------------------

    @property
    def reads(self) -> int:
        if self.writes is None:
            return len(self.blocks)
        return sum(1 for w in self.writes if not w)

    @property
    def write_count(self) -> int:
        if self.writes is None:
            return 0
        return sum(1 for w in self.writes if w)

    @property
    def references(self) -> int:
        return len(self.blocks)

    @property
    def distinct_blocks(self) -> int:
        return len(set(self.blocks))

    @property
    def compute_time_s(self) -> float:
        return sum(self.compute_ms) / 1000.0

    @property
    def mean_compute_ms(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(self.compute_ms) / len(self.blocks)

    def summary(self) -> Dict[str, object]:
        """The Table 3 row for this trace."""
        return {
            "trace": self.name,
            "reads": self.reads,
            "distinct_blocks": self.distinct_blocks,
            "compute_time_s": round(self.compute_time_s, 1),
        }

    # -- transforms --------------------------------------------------------------

    def scaled(self, fraction: float) -> "Trace":
        """A shortened prefix of this trace (for fast tests/benchmarks).

        Keeps roughly ``fraction`` of the reads; block ids are untouched so
        locality structure is preserved.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        count = max(1, int(len(self.blocks) * fraction))
        kept = self.blocks[:count]
        files = None
        if self.files is not None:
            kept_set = set(kept)
            files = {b: fo for b, fo in self.files.items() if b in kept_set}
        return Trace(
            name=f"{self.name}[{fraction:g}]",
            blocks=kept,
            compute_ms=self.compute_ms[:count],
            files=files,
            description=self.description,
            writes=self.writes[:count] if self.writes is not None else None,
        )

    def rescale_compute(self, total_s: float) -> "Trace":
        """Scale compute gaps so they sum to exactly ``total_s`` seconds."""
        current = sum(self.compute_ms)
        if current <= 0:
            raise ValueError("trace has no compute time to rescale")
        factor = (total_s * 1000.0) / current
        return Trace(
            name=self.name,
            blocks=self.blocks,
            compute_ms=[c * factor for c in self.compute_ms],
            files=self.files,
            description=self.description,
            writes=self.writes,
        )

    # -- persistence --------------------------------------------------------------

    def save(self, path: str) -> None:
        payload = {
            "name": self.name,
            "description": self.description,
            "blocks": self.blocks,
            "compute_ms": self.compute_ms,
            "writes": self.writes,
            "files": (
                {str(b): list(fo) for b, fo in self.files.items()}
                if self.files is not None
                else None
            ),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as handle:
            payload = json.load(handle)
        files = payload.get("files")
        if files is not None:
            files = {int(b): tuple(fo) for b, fo in files.items()}
        return cls(
            name=payload["name"],
            blocks=payload["blocks"],
            compute_ms=payload["compute_ms"],
            files=files,
            description=payload.get("description", ""),
            writes=payload.get("writes"),
        )

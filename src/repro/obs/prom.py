"""Prometheus text exposition for a :class:`MetricsRegistry`.

The registry's instrument names are dotted (``svc.request_ms``) and may
carry an inline label set appended by :func:`labeled`
(``svc.http.request_ms{route="cells",code="200"}``).  The renderer maps
them onto the Prometheus data model:

* dots become underscores and every family is prefixed ``repro_``;
* counters gain the conventional ``_total`` suffix;
* histograms emit cumulative ``_bucket{le="..."}`` series ending with the
  mandatory ``+Inf`` bucket, plus ``_sum`` and ``_count``
  (:meth:`repro.obs.metrics.Histogram.cumulative`);
* instruments sharing a base name but differing in labels are one family:
  a single ``# HELP``/``# TYPE`` header followed by every labelled series.

This module never reads a clock and performs no I/O — it is a pure
function of the registry, so the HTTP layer can render a scrape on the
event loop.  :func:`validate_exposition` is the self-check used by tests
and the chaos-smoke harness: it re-parses an exposition and reports
structural violations (bad names, broken escaping, non-cumulative
buckets, missing ``+Inf``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One exposition line: name, optional label set, one value (Prometheus
#: accepts an optional trailing timestamp; we never emit one).
_LINE_OK = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" [-+]?(?:[0-9.eE+-]+|Inf|NaN)$"
)


def labeled(base: str, **labels: str) -> str:
    """An instrument name carrying an inline Prometheus label set.

    ``labeled("svc.http.request_ms", route="cells", code="200")`` →
    ``svc.http.request_ms{code="200",route="cells"}``.  Labels are sorted
    so the same logical series always maps to the same instrument.
    """
    if not labels:
        return base
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return f"{base}{{{inner}}}"


def split_labels(name: str) -> Tuple[str, str]:
    """Split an instrument name into ``(base, label_block)`` where the
    label block is either empty or ``{k="v",...}`` verbatim."""
    brace = name.find("{")
    if brace < 0 or not name.endswith("}"):
        return name, ""
    return name[:brace], name[brace:]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def metric_name(base: str) -> str:
    """The Prometheus family name for a dotted instrument base name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", base)
    if not cleaned.startswith("repro_"):
        cleaned = f"repro_{cleaned}"
    return cleaned


def _merge_label_block(block: str, extra: str) -> str:
    """Combine an instrument's label block with one extra ``k="v"`` pair
    (used to add ``le`` to histogram bucket series)."""
    if not block:
        return f"{{{extra}}}"
    return f"{block[:-1]},{extra}}}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    All series of one family (label variants of the same base name) are
    grouped under a single ``# HELP``/``# TYPE`` header, as the format
    requires; families keep first-registration order.
    """
    # family -> (kind, base, sample lines); insertion-ordered.
    families: Dict[str, Tuple[str, str, List[str]]] = {}

    def family_lines(family: str, kind: str, base: str) -> List[str]:
        entry = families.get(family)
        if entry is None:
            entry = families[family] = (kind, base, [])
        return entry[2]

    for name, counter in registry.counters.items():
        base, labels = split_labels(name)
        family = f"{metric_name(base)}_total"
        family_lines(family, "counter", base).append(
            f"{family}{labels} {_format_value(float(counter.value))}"
        )
    for name, gauge in registry.gauges.items():
        base, labels = split_labels(name)
        family = metric_name(base)
        family_lines(family, "gauge", base).append(
            f"{family}{labels} {_format_value(gauge.value)}"
        )
    for name, histogram in registry.histograms.items():
        base, labels = split_labels(name)
        family = metric_name(base)
        samples = family_lines(family, "histogram", base)
        for le_label, cumulative_count in histogram.cumulative():
            block = _merge_label_block(labels, f'le="{le_label}"')
            samples.append(
                f"{family}_bucket{block} {_format_value(float(cumulative_count))}"
            )
        samples.append(f"{family}_sum{labels} {_format_value(histogram.total)}")
        samples.append(
            f"{family}_count{labels} {_format_value(float(histogram.count))}"
        )
    lines: List[str] = []
    for family, (kind, base, samples) in families.items():
        lines.append(f"# HELP {family} repro {kind} {base}")
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Structural errors in a Prometheus text exposition; empty when valid.

    Checks line syntax, HELP/TYPE pairing, histogram bucket monotonicity,
    and the mandatory ``+Inf`` bucket per histogram series.  Used by
    tests and ``scripts/chaos_smoke.py`` to validate live scrapes.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    # (family, labels-without-le) -> list of (le, value) in order seen.
    buckets: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
            elif parts[1] == "TYPE":
                if parts[2] in typed:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {parts[2]}"
                    )
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if not _LINE_OK.match(line):
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        base, labels = split_labels(name_part)
        if not _NAME_OK.match(base):
            errors.append(f"line {lineno}: bad metric name {base!r}")
        if base.endswith("_bucket"):
            le = ""
            kept: List[str] = []
            for pair in labels[1:-1].split(",") if labels else []:
                key, _, raw = pair.partition("=")
                if key == "le":
                    le = raw.strip('"')
                else:
                    kept.append(pair)
            if not le:
                errors.append(f"line {lineno}: bucket sample without le label")
                continue
            series = (base[: -len("_bucket")], ",".join(kept))
            buckets.setdefault(series, []).append((le, float(value_part)))
    for (family, labels), series in buckets.items():
        where = f"{family}{{{labels}}}" if labels else family
        if series[-1][0] != "+Inf":
            errors.append(f"{where}: last bucket is {series[-1][0]}, not +Inf")
        values = [value for _, value in series]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"{where}: bucket counts are not cumulative")
    return errors

"""Counters, gauges, and fixed-bucket histograms for per-run metrics.

All instruments are plain accumulators over *simulated* quantities — they
never read the host clock (simlint SL002 applies to this module).  The
registry keeps insertion order so exports are deterministic.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default bucket upper bounds (ms) for latency-like histograms.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)
#: Default bucket upper bounds (ms) for single-request service times.
SERVICE_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0)
#: Default bucket upper bounds for disk queue depths.
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: Default bucket upper bounds for victim forward distances (references).
DISTANCE_BUCKETS = (4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)
#: Default bucket upper bounds (ms) for service request latencies: store
#: hits land in the low buckets, computed cells in the high ones
#: (``repro.svc`` reads a real clock for these — allowlisted by SL002).
REQUEST_BUCKETS_MS = (
    1.0, 5.0, 25.0, 100.0, 500.0, 2000.0, 10000.0, 60000.0, 300000.0,
)
#: Default bucket upper bounds (ms) for journal/store fsync latencies —
#: sub-millisecond on a healthy local disk, tens of milliseconds when the
#: device (or a CI runner's overlay filesystem) is struggling.
FSYNC_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0, 1000.0,
)


def occupancy_buckets(capacity: int, steps: int = 8) -> List[float]:
    """Evenly spaced occupancy bounds up to the cache capacity."""
    bounds: List[float] = []
    for step in range(1, steps + 1):
        bound = float(max(1, (capacity * step) // steps))
        if not bounds or bound > bounds[-1]:
            bounds.append(bound)
    return bounds


class Counter:
    """A monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": self.value}


class Gauge:
    """A sampled level; tracks last, min, and max."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges.

    Values above the last bound land in an implicit overflow bucket
    (``float("inf")`` observations included — used for "never referenced
    again" victim distances).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = [float(b) for b in bounds]
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left gives inclusive upper edges: a value exactly on a
        # bound belongs to that bound's bucket, so e.g. a full cache lands
        # in the <=capacity bucket, not in overflow.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations above the last bound."""
        return self.counts[-1]

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-shaped cumulative buckets: ``(le_label, count)``
        pairs where each count includes every smaller bucket, ending with
        the mandatory ``("+Inf", total observations)`` entry."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if bound == float("inf"):
                label = "+Inf"
            elif bound == int(bound):
                label = str(int(bound))
            else:
                label = repr(bound)
            pairs.append((label, running))
        pairs.append(("+Inf", self.count))
        return pairs

    def as_dict(self) -> Dict[str, object]:
        # ``sum`` and the trailing ``+Inf`` bucket make the exposition
        # well-formed Prometheus; ``overflow`` stays for older readers
        # (it equals the +Inf bucket's own, non-cumulative count).
        buckets: List[Dict[str, object]] = [
            {"le": bound, "count": count}
            for bound, count in zip(self.bounds, self.counts)
        ]
        buckets.append({"le": "+Inf", "count": self.overflow})
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Named instruments, created on first use, exported in creation order."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            if bounds is None:
                raise ValueError(
                    f"histogram {name!r} does not exist yet; bounds required"
                )
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``registry.counter(name).inc(amount)`` (the common
        case for ``repro.runner``'s supervision counters)."""
        self.counter(name).inc(amount)

    def merge_counters(self, values: Dict[str, int], prefix: str = "") -> None:
        """Fold a plain ``{name: count}`` mapping (e.g. a pool's counter
        snapshot) into this registry, optionally under a prefix."""
        for name, value in values.items():
            self.counter(f"{prefix}{name}").inc(value)

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.as_dict() for name, g in self.gauges.items()},
            "histograms": {
                name: h.as_dict() for name, h in self.histograms.items()
            },
        }

"""The Observer: instance-attribute-shadowing instrumentation.

``Observer.attach(sim)`` installs wrappers *on the instance* over the
engine's event handlers (``_app_step``, ``_wake_app``, ``_disk_complete``,
``_fault_complete``, ``_retry_fetch``, ``_abandon_fetch``,
``issue_fetch``, ``write_allocate``, ``_build_result``), the disk array's
request lifecycle (``submit``, ``start_next``), and the policy's hooks —
the same pattern as ``Simulator._instrument``, so an unobserved simulator
carries zero tracing calls and class methods stay untouched.

Every wrapper calls the original exactly once with unchanged arguments
and only *reads* simulator state (victim distances use the stateless
``NextRefIndex.next_use_cold``), so an observed run produces bit-identical
:class:`~repro.core.results.SimulationResult` values — the golden-digest
suite enforces this.

Stall attribution mirrors the engine's accounting exactly: the quantum
charged per episode is ``max(0, now - _stall_start)``, the same expression
``_wake_app`` adds to ``stall_total``, so the per-cause totals sum back to
``stall_ms`` up to float reassociation noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.obs import events as ev
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    DISTANCE_BUCKETS,
    LATENCY_BUCKETS_MS,
    SERVICE_BUCKETS_MS,
    MetricsRegistry,
    occupancy_buckets,
)

if TYPE_CHECKING:
    from repro.core.engine import Simulator
    from repro.core.results import SimulationResult
    from repro.disk.drive import ServiceBreakdown
    from repro.disk.scheduler import Request


@dataclass(frozen=True)
class StallRecord:
    """One completed stall episode, with its attributed cause."""

    start_ms: float
    end_ms: float
    duration_ms: float
    block: int
    cursor: int
    cause: str


class Observer:
    """Collects events, metrics, and stall attribution from one run.

    Attach via ``Simulator(..., observer=observer)`` (or the ``observer``
    argument of :func:`repro.run_simulation` /
    :func:`repro.analysis.experiments.run_one`); one observer observes
    exactly one simulator for exactly one run.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: List[ev.Event] = []
        self.stall_breakdown: Dict[str, float] = {
            cause: 0.0 for cause in ev.STALL_CAUSES
        }
        self.stall_episodes: List[StallRecord] = []
        self.busy_ms_per_disk: List[float] = []
        self.num_disks = 0
        self.trace_name = ""
        self.policy_name = ""
        self.elapsed_ms = 0.0
        self.result: Optional["SimulationResult"] = None
        self._sim: Optional["Simulator"] = None
        # -- live bookkeeping (reset per run) ------------------------------
        self._open_cause: Optional[str] = None
        self._miss_cursor = -1
        self._fault_seen = False
        self._issued_in_step: Set[int] = set()
        self._submit_ms: Dict[int, float] = {}  # block -> first read submit
        self._read_disk: Dict[int, int] = {}  # block -> disk last submitted to

    # -- instrumentation -----------------------------------------------------

    def attach(self, sim: "Simulator") -> None:
        """Shadow the simulator's hot-path methods with recording versions."""
        if self._sim is not None:
            raise RuntimeError("an Observer observes exactly one simulator")
        self._sim = sim
        self.num_disks = sim.num_disks
        self.trace_name = sim.trace.name
        self.policy_name = sim.policy.name
        self.busy_ms_per_disk = [0.0] * sim.num_disks

        metrics = self.metrics
        append = self.events.append
        breakdown = self.stall_breakdown
        episodes = self.stall_episodes
        busy_ms = self.busy_ms_per_disk
        issued_in_step = self._issued_in_step
        submit_ms = self._submit_ms
        read_disk = self._read_disk

        c_refs = metrics.counter("app.references")
        c_hits = metrics.counter("app.hits")
        c_misses = metrics.counter("app.misses")
        c_unreadable = metrics.counter("app.unreadable")
        c_demand = metrics.counter("fetch.issued.demand")
        c_prefetch = metrics.counter("fetch.issued.prefetch")
        c_done = metrics.counter("fetch.completed")
        c_retries = metrics.counter("fetch.retries")
        c_abandoned = metrics.counter("fetch.abandoned")
        c_failovers = metrics.counter("fetch.failovers")
        c_flush = metrics.counter("flush.issued")
        c_flush_done = metrics.counter("flush.completed")
        c_evict = metrics.counter("cache.evictions")
        c_evict_dead = metrics.counter("cache.evictions.never-used-again")
        c_alloc = metrics.counter("cache.write_allocates")
        c_faults = metrics.counter("faults.observed")
        c_stalls = metrics.counter("stall.episodes")
        c_p_before = metrics.counter("policy.before_reference")
        c_p_idle = metrics.counter("policy.on_disk_idle")
        c_p_miss = metrics.counter("policy.on_miss")
        c_p_evict = metrics.counter("policy.on_evict")
        h_latency = metrics.histogram("fetch.latency_ms", LATENCY_BUCKETS_MS)
        h_service = metrics.histogram("disk.service_ms", SERVICE_BUCKETS_MS)
        h_depth = metrics.histogram("disk.queue_depth", DEPTH_BUCKETS)
        h_distance = metrics.histogram("cache.victim_distance", DISTANCE_BUCKETS)
        h_occupancy = metrics.histogram(
            "cache.occupancy", occupancy_buckets(sim.cache.capacity)
        )
        h_stall = metrics.histogram("stall.duration_ms", LATENCY_BUCKETS_MS)
        g_occupancy = metrics.gauge("cache.occupancy")

        cache = sim.cache
        array = sim.array
        app_blocks = sim.app_blocks
        index = sim.index

        def sample_occupancy(now: float) -> None:
            occupancy = float(cache.occupancy)
            g_occupancy.set(occupancy)
            h_occupancy.observe(occupancy)
            append(ev.Event(now, ev.CACHE_OCCUPANCY, value=occupancy))

        def victim_distance(victim: int) -> float:
            next_use = index.next_use_cold(victim, sim.cursor)
            if next_use >= index.never:
                c_evict_dead.inc()
                return -1.0
            distance = float(next_use - sim.cursor)
            h_distance.observe(distance)
            return distance

        # -- disk array: request lifecycle ---------------------------------

        inner_submit = array.submit

        def obs_submit(
            disk: int, block: int, lbn: int, kind: str = "read",
            attempt: int = 0,
        ) -> "Request":
            request = inner_submit(disk, block, lbn, kind=kind, attempt=attempt)
            now = sim.now
            depth = float(array.queue_length(disk))
            h_depth.observe(depth)
            append(ev.Event(now, ev.QUEUE_DEPTH, disk=disk, value=depth))
            if kind == "read":
                submit_ms.setdefault(block, now)
                read_disk[block] = disk
            else:
                c_flush.inc()
                append(ev.Event(now, ev.FLUSH_ISSUE, block=block, disk=disk))
            return request

        array.submit = obs_submit  # type: ignore[method-assign]

        inner_start_next = array.start_next

        def obs_start_next(
            disk: int, now: float
        ) -> Optional[Tuple["Request", float, "ServiceBreakdown"]]:
            started = inner_start_next(disk, now)
            if started is not None:
                request, _completion, bd = started
                total = bd.total
                busy_ms[disk] += total
                h_service.observe(total)
                detail: Dict[str, object] = bd.as_dict()
                detail.update(request.as_dict())
                append(
                    ev.Event(
                        now, ev.DISK_BUSY, block=request.block, disk=disk,
                        dur_ms=total, cause=request.kind, detail=detail,
                    )
                )
                append(
                    ev.Event(
                        now, ev.QUEUE_DEPTH, disk=disk,
                        value=float(array.queue_length(disk)),
                    )
                )
            return started

        array.start_next = obs_start_next  # type: ignore[method-assign]

        # -- engine: fetch issue and write allocation ----------------------

        inner_issue_fetch = sim.issue_fetch

        def obs_issue_fetch(block: int, victim: Optional[int]) -> None:
            cursor = sim.cursor
            distance = -1.0 if victim is None else victim_distance(victim)
            inner_issue_fetch(block, victim)
            now = sim.now
            issued_in_step.add(block)
            demand = cursor < len(app_blocks) and app_blocks[cursor] == block
            (c_demand if demand else c_prefetch).inc()
            append(
                ev.Event(
                    now, ev.FETCH_ISSUE, block=block,
                    disk=read_disk.get(block, -1), cursor=cursor,
                    cause="demand" if demand else "prefetch",
                )
            )
            if victim is not None:
                c_evict.inc()
                append(
                    ev.Event(
                        now, ev.EVICT, block=victim, cursor=cursor,
                        value=distance,
                    )
                )
            sample_occupancy(now)

        sim.issue_fetch = obs_issue_fetch  # type: ignore[method-assign]

        inner_write_allocate = sim.write_allocate

        def obs_write_allocate(block: int, victim: Optional[int]) -> None:
            cursor = sim.cursor
            distance = -1.0 if victim is None else victim_distance(victim)
            inner_write_allocate(block, victim)
            now = sim.now
            c_alloc.inc()
            append(ev.Event(now, ev.WRITE_ALLOCATE, block=block, cursor=cursor))
            if victim is not None:
                c_evict.inc()
                append(
                    ev.Event(
                        now, ev.EVICT, block=victim, cursor=cursor,
                        value=distance,
                    )
                )
            sample_occupancy(now)

        sim.write_allocate = obs_write_allocate  # type: ignore[method-assign]

        # -- engine: the application timeline ------------------------------

        inner_app_step = sim._app_step

        def obs_app_step(now: float) -> None:
            cursor_before = sim.cursor
            was_waiting = sim._waiting_block is not None
            issued_in_step.clear()
            inner_app_step(now)
            if sim.cursor != cursor_before:
                block = app_blocks[cursor_before]
                c_refs.inc()
                if block in sim.lost_blocks and block not in cache.resident:
                    c_unreadable.inc()
                    kind = ev.REF_UNREADABLE
                elif cursor_before == self._miss_cursor:
                    c_misses.inc()
                    kind = ev.REF_MISS
                else:
                    c_hits.inc()
                    kind = ev.REF_HIT
                append(ev.Event(now, kind, block=block, cursor=cursor_before))
            elif not was_waiting and sim._waiting_block is not None:
                # A stall just began.  Classify it: parked with no issuable
                # buffer; waiting on an earlier (too-late) prefetch; or
                # waiting on a fetch issued in this very step (pure demand).
                block = sim._waiting_block
                if sim._retry_miss:
                    cause = ev.CAUSE_ALL_DISKS_BUSY
                elif block in issued_in_step:
                    cause = ev.CAUSE_DEMAND_MISS
                else:
                    cause = ev.CAUSE_PREFETCH_TOO_LATE
                self._open_cause = cause
                self._miss_cursor = sim.cursor
                append(
                    ev.Event(
                        sim._stall_start, ev.STALL_BEGIN, block=block,
                        cursor=sim.cursor, cause=cause,
                    )
                )

        sim._app_step = obs_app_step  # type: ignore[method-assign]

        inner_wake_app = sim._wake_app

        def obs_wake_app(now: float) -> None:
            start = sim._stall_start
            waiting = sim._waiting_block
            block = -1 if waiting is None else waiting
            cursor = sim.cursor
            # The exact quantum the engine is about to add to stall_total.
            quantum = max(0.0, now - start)
            inner_wake_app(now)
            cause = self._open_cause
            if cause is None:  # defensive: a wake with no observed begin
                cause = ev.CAUSE_DEMAND_MISS
            breakdown[cause] += quantum
            self._open_cause = None
            c_stalls.inc()
            h_stall.observe(quantum)
            end = max(now, start)
            episodes.append(
                StallRecord(
                    start_ms=start, end_ms=end, duration_ms=quantum,
                    block=block, cursor=cursor, cause=cause,
                )
            )
            append(
                ev.Event(end, ev.STALL_END, block=block, dur_ms=quantum,
                         cursor=cursor, cause=cause)
            )

        sim._wake_app = obs_wake_app  # type: ignore[method-assign]

        # -- engine: completions, faults, recovery -------------------------

        inner_disk_complete = sim._disk_complete

        def obs_disk_complete(disk: int, now: float) -> None:
            request = array.in_service[disk]
            self._fault_seen = False
            inner_disk_complete(disk, now)
            if request is None or self._fault_seen:
                return  # faulted completions are recorded by obs_fault_complete
            block = request.block
            if request.kind == "write":
                c_flush_done.inc()
                append(ev.Event(now, ev.FLUSH_DONE, block=block, disk=disk))
                return
            c_done.inc()
            latency = now - submit_ms.pop(block, now)
            read_disk.pop(block, None)
            h_latency.observe(latency)
            append(
                ev.Event(now, ev.FETCH_DONE, block=block, disk=disk,
                         dur_ms=latency)
            )
            sample_occupancy(now)

        sim._disk_complete = obs_disk_complete  # type: ignore[method-assign]

        inner_fault_complete = sim._fault_complete

        def obs_fault_complete(
            disk: int, request: "Request", outcome: str, now: float
        ) -> None:
            self._fault_seen = True
            block = request.block
            waiting = sim._waiting_block
            failovers_before = sim.failover_reads + sim.failover_writes
            attempts_before = sim._fetch_attempts.get(block, 0)
            c_faults.inc()
            append(
                ev.Event(now, ev.FAULT, block=block, disk=disk, cause=outcome,
                         value=float(request.attempt))
            )
            inner_fault_complete(disk, request, outcome, now)
            if sim.failover_reads + sim.failover_writes > failovers_before:
                c_failovers.inc()
                append(
                    ev.Event(now, ev.FETCH_FAILOVER, block=block,
                             disk=read_disk.get(block, disk))
                )
                if self._open_cause is not None and waiting == block:
                    self._open_cause = ev.CAUSE_FAILOVER
            attempts = sim._fetch_attempts.get(block, 0)
            if attempts > attempts_before:
                append(
                    ev.Event(now, ev.FETCH_BACKOFF, block=block, disk=disk,
                             value=float(attempts))
                )
                if self._open_cause is not None and waiting == block:
                    self._open_cause = ev.CAUSE_FAULT_RETRY

        sim._fault_complete = obs_fault_complete  # type: ignore[method-assign]

        inner_retry_fetch = sim._retry_fetch

        def obs_retry_fetch(block: int, now: float) -> None:
            live = cache.is_in_flight(block)
            inner_retry_fetch(block, now)
            if live:
                c_retries.inc()
                append(
                    ev.Event(
                        now, ev.FETCH_RETRY, block=block,
                        disk=read_disk.get(block, -1),
                        value=float(sim._fetch_attempts.get(block, 0)),
                    )
                )

        sim._retry_fetch = obs_retry_fetch  # type: ignore[method-assign]

        inner_abandon_fetch = sim._abandon_fetch

        def obs_abandon_fetch(block: int) -> None:
            inner_abandon_fetch(block)
            now = sim.now
            c_abandoned.inc()
            submit_ms.pop(block, None)
            disk = read_disk.pop(block, -1)
            cause = "lost" if block in sim.lost_blocks else "prefetch-fault"
            append(
                ev.Event(now, ev.FETCH_ABANDON, block=block, disk=disk,
                         cause=cause)
            )
            sample_occupancy(now)

        sim._abandon_fetch = obs_abandon_fetch  # type: ignore[method-assign]

        # -- policy consultation counters ----------------------------------
        # Internal super().hook() calls resolve through the class, so these
        # shadows count only the engine's consultations, never double.

        policy = sim.policy
        inner_before = policy.before_reference

        def obs_before_reference(cursor: int, now: float) -> None:
            c_p_before.inc()
            inner_before(cursor, now)

        policy.before_reference = obs_before_reference  # type: ignore[method-assign]

        inner_on_idle = policy.on_disk_idle

        def obs_on_disk_idle(disk: int, now: float) -> None:
            c_p_idle.inc()
            inner_on_idle(disk, now)

        policy.on_disk_idle = obs_on_disk_idle  # type: ignore[method-assign]

        inner_on_miss = policy.on_miss

        def obs_on_miss(cursor: int, now: float) -> None:
            c_p_miss.inc()
            inner_on_miss(cursor, now)

        policy.on_miss = obs_on_miss  # type: ignore[method-assign]

        inner_on_evict = policy.on_evict

        def obs_on_evict(block: int, next_use: float) -> None:
            c_p_evict.inc()
            inner_on_evict(block, next_use)

        policy.on_evict = obs_on_evict  # type: ignore[method-assign]

        # -- finalization ---------------------------------------------------

        inner_build_result = sim._build_result

        def obs_build_result() -> "SimulationResult":
            result = inner_build_result()
            self._finalize(result)
            return result

        sim._build_result = obs_build_result  # type: ignore[method-assign]

    # -- results ---------------------------------------------------------------

    def _finalize(self, result: "SimulationResult") -> None:
        """Publish aggregates onto the result and self-audit attribution."""
        self.result = result
        self.elapsed_ms = result.elapsed_ms
        result.stall_breakdown = dict(self.stall_breakdown)
        residual = abs(result.stall_ms - math.fsum(self.stall_breakdown.values()))
        if residual > 1e-6 * max(1.0, result.stall_ms):
            raise AssertionError(
                f"stall attribution residual {residual} ms "
                f"({result.trace_name}/{result.policy_name})"
            )
        metrics = self.metrics
        elapsed = result.elapsed_ms
        for disk, busy in enumerate(self.busy_ms_per_disk):
            clamped = min(busy, elapsed)
            metrics.gauge(f"disk.busy_ms.d{disk}").set(clamped)
            utilization = clamped / elapsed if elapsed > 0 else 0.0
            metrics.gauge(f"disk.utilization.d{disk}").set(utilization)

    @property
    def stall_residual_ms(self) -> float:
        """Attributed-total minus ``stall_ms`` (float noise only)."""
        if self.result is None:
            return 0.0
        return math.fsum(self.stall_breakdown.values()) - self.result.stall_ms

    def worst_stalls(self, count: int = 5) -> List[StallRecord]:
        """The ``count`` longest stall episodes, longest first."""
        ranked = sorted(
            self.stall_episodes,
            key=lambda r: (-r.duration_ms, r.start_ms),
        )
        return ranked[:count]

    def window(
        self, start_ms: float, end_ms: float, lead_ms: float = 5.0,
        limit: int = 12,
    ) -> List[ev.Event]:
        """Events in ``[start_ms - lead_ms, end_ms]`` (up to ``limit``,
        closest-to-the-end first trimmed from the front)."""
        lower = start_ms - lead_ms
        hits = [e for e in self.events if lower <= e.t_ms <= end_ms]
        return hits[-limit:]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready aggregate view (no per-event data)."""
        payload: Dict[str, object] = {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "disks": self.num_disks,
            "events": len(self.events),
            "stall_breakdown_ms": dict(self.stall_breakdown),
            "stall_episodes": len(self.stall_episodes),
            "busy_ms_per_disk": list(self.busy_ms_per_disk),
            "metrics": self.metrics.to_dict(),
        }
        if self.result is not None:
            payload["result"] = self.result.to_dict()
        return payload

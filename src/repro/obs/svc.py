"""Request-scoped service telemetry: correlation IDs and typed spans.

PR 4 gave the *simulator* a timeline (``repro.obs.export``); this module
gives the *service tier* the same treatment.  A request entering
``repro-sim serve`` is assigned a correlation ID at HTTP accept and the
layers it crosses emit typed spans against that ID:

``http.parse``
    Reading and parsing the request off the socket.
``singleflight.join``
    A coalesced follower waiting on another request's in-flight compute.
``admission.wait``
    The flight leader's path from store miss through breaker and
    admission checks to pool submission (rejections end the span early).
``pool.queue``
    Submission to dispatch: time spent waiting for a free worker.
``worker.execute``
    ``execute_cell`` inside the forked worker — measured *in the worker*
    with the same monotonic clock (comparable across ``fork`` on Linux,
    where the clock is system-wide) and shipped back over the duplex
    pipe in the record's telemetry block.
``store.get`` / ``store.put``
    Result-store lookups and durable writes.
``overload.shed``
    A request refused before any work happened — deadline-aware shed,
    queue full, breaker, or draining — with the reason, projected wait,
    and retry hint in its args (PR 10's overload control).

Spans export into the same Chrome ``trace_event`` document as the
simulator's events: :meth:`ServiceTracer.chrome_trace` merges the
service spans (pid 1, one track per span kind) with every simulation
timeline shipped back by traced workers (one pid per request, its rows
stamped with the correlation ID) — so ui.perfetto.dev shows a request's
service overhead and its inner simulation side by side.

Like the Observer and profiler, tracing is strictly opt-in: an untraced
service holds no tracer and the instrumented call sites collapse to the
plain code path (``maybe_span`` returns a no-op context).  This module
reads the host monotonic clock by design and is allowlisted by simlint
SL002; nothing here may be imported from ``repro.core``/``repro.disk``
(SL015/SL016 guard the other direction).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ContextManager,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

#: The closed span vocabulary (docs/OBSERVABILITY.md, "Service telemetry").
SPAN_HTTP_PARSE = "http.parse"
SPAN_SINGLEFLIGHT_JOIN = "singleflight.join"
SPAN_ADMISSION_WAIT = "admission.wait"
SPAN_POOL_QUEUE = "pool.queue"
SPAN_WORKER_EXECUTE = "worker.execute"
SPAN_STORE_GET = "store.get"
SPAN_STORE_PUT = "store.put"
SPAN_OVERLOAD_SHED = "overload.shed"

#: Service spans share pid 1 with nothing (simulations are re-homed onto
#: their own pids); each span kind gets its own track for readability.
SERVICE_PID = 1
_SPAN_TIDS: Dict[str, int] = {
    SPAN_HTTP_PARSE: 0,
    SPAN_SINGLEFLIGHT_JOIN: 1,
    SPAN_ADMISSION_WAIT: 2,
    SPAN_POOL_QUEUE: 3,
    SPAN_WORKER_EXECUTE: 4,
    SPAN_STORE_GET: 5,
    SPAN_STORE_PUT: 6,
    SPAN_OVERLOAD_SHED: 7,
}
#: Embedded simulation timelines start at this pid, one per request.
SIM_PID_BASE = 100

_request_counter = itertools.count(1)


def new_correlation_id() -> str:
    """A process-unique request ID: ``r<pid-hex>-<sequence>``.

    Cheap enough to mint on every request even with tracing off (an
    X-Correlation-Id header and event stamps are always useful); the
    pid component keeps IDs distinct across service restarts over the
    same store."""
    return f"r{os.getpid():x}-{next(_request_counter):06d}"


@dataclass
class ServiceSpan:
    """One completed span: host-monotonic start, duration, request ID."""

    name: str
    corr_id: str
    start_ms: float
    dur_ms: float
    args: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "corr_id": self.corr_id,
            "start_ms": self.start_ms,
            "dur_ms": self.dur_ms,
            "args": dict(self.args),
        }


class ServiceTracer:
    """Thread-safe span collector for one service instance.

    Spans arrive from the event loop, the pool supervision thread, and
    (indirectly, via shipped telemetry blocks) forked workers, so every
    mutation holds one lock.  Memory is bounded: the oldest spans and
    simulation timelines fall off ring buffers — an ops console wants
    the recent window, not the service's whole life.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        max_spans: int = 8192,
        max_sim_traces: int = 64,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: Deque[ServiceSpan] = deque(maxlen=max_spans)
        self._sim_traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_sim_traces = max_sim_traces

    def now_ms(self) -> float:
        """Host-monotonic milliseconds (the spans' shared timebase)."""
        return self._clock() * 1000.0

    def add_span(
        self,
        name: str,
        corr_id: str,
        start_ms: float,
        dur_ms: float,
        **args: Any,
    ) -> ServiceSpan:
        """Record an externally measured span (e.g. one shipped back from
        a forked worker, or a queue wait measured by the pool)."""
        span = ServiceSpan(name, corr_id, start_ms, dur_ms, args)
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, corr_id: str, **args: Any) -> Iterator[None]:
        """Measure the enclosed block as one span (records on exit, even
        when the block raises — a rejected request still shows where its
        time went)."""
        start_ms = self.now_ms()
        try:
            yield
        finally:
            self.add_span(
                name, corr_id, start_ms, self.now_ms() - start_ms, **args
            )

    def attach_simulation(
        self, corr_id: str, document: Dict[str, Any]
    ) -> None:
        """Adopt a worker-shipped simulation timeline (a full
        :func:`repro.obs.export.chrome_trace` document) for ``corr_id``."""
        with self._lock:
            self._sim_traces[corr_id] = document
            self._sim_traces.move_to_end(corr_id)
            while len(self._sim_traces) > self._max_sim_traces:
                self._sim_traces.popitem(last=False)

    @property
    def spans(self) -> List[ServiceSpan]:
        with self._lock:
            return list(self._spans)

    def spans_for(self, corr_id: str) -> List[ServiceSpan]:
        with self._lock:
            return [s for s in self._spans if s.corr_id == corr_id]

    def sim_trace_for(self, corr_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._sim_traces.get(corr_id)

    # -- export ------------------------------------------------------------

    def chrome_trace(self, stamp: bool = False) -> Dict[str, Any]:
        """One merged Chrome ``trace_event`` document: service spans on
        pid 1 (one track per span kind) plus every retained simulation
        timeline on its own pid, each row stamped with its correlation
        ID.  Opens directly in ui.perfetto.dev next to (or merged with)
        PR 4's simulation exports.

        Timebases differ by design — service spans are host-monotonic
        milliseconds, simulation rows are *simulated* milliseconds — so
        they live on separate pids and are linked by ``corr_id``, never
        by timestamp arithmetic.
        """
        with self._lock:
            spans = list(self._spans)
            sims = list(self._sim_traces.items())
        tids = dict(_SPAN_TIDS)
        rows: List[Dict[str, Any]] = []
        for span in spans:
            tid = tids.setdefault(span.name, len(tids))
            args: Dict[str, Any] = {
                "corr_id": span.corr_id,
                # Exact values ride along so re-parsers never depend on
                # the µs unit conversion (same contract as repro.obs
                # .export).
                "start_ms": span.start_ms,
                "dur_ms": span.dur_ms,
            }
            args.update(span.args)
            rows.append(
                {
                    "ph": "X", "pid": SERVICE_PID, "tid": tid,
                    "ts": span.start_ms * 1000.0,
                    "dur": span.dur_ms * 1000.0,
                    "name": span.name, "cat": "svc", "args": args,
                }
            )
        rows.sort(key=lambda row: float(row["ts"]))
        metadata: List[Dict[str, Any]] = [
            {
                "ph": "M", "pid": SERVICE_PID, "tid": 0,
                "name": "process_name",
                "args": {"name": "repro-svc service tier"},
            }
        ]
        for name, tid in sorted(tids.items(), key=lambda item: item[1]):
            metadata.append(
                {
                    "ph": "M", "pid": SERVICE_PID, "tid": tid,
                    "name": "thread_name", "args": {"name": name},
                }
            )
        sim_rows: List[Dict[str, Any]] = []
        for index, (corr_id, document) in enumerate(sims):
            sim_rows.extend(
                _rehome_sim_rows(document, SIM_PID_BASE + index, corr_id)
            )
        meta: Dict[str, Any] = {
            "source": "repro.obs.svc",
            "spans": len(spans),
            "simulations": [corr_id for corr_id, _ in sims],
        }
        if stamp:
            meta["captured_unix_s"] = time.time()
        return {
            "traceEvents": metadata + rows + sim_rows,
            "displayTimeUnit": "ms",
            "otherData": meta,
        }


def _rehome_sim_rows(
    document: Dict[str, Any], pid: int, corr_id: str
) -> List[Dict[str, Any]]:
    """A simulation document's rows re-homed onto ``pid`` and stamped
    with the owning request's correlation ID."""
    rows: List[Dict[str, Any]] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return rows
    for original in events:
        if not isinstance(original, dict):
            continue
        row = dict(original)
        row["pid"] = pid
        args = dict(row.get("args") or {})
        if row.get("ph") == "M" and row.get("name") == "process_name":
            args["name"] = f"{args.get('name', 'sim')} [{corr_id}]"
        args["corr_id"] = corr_id
        row["args"] = args
        rows.append(row)
    return rows


def maybe_span(
    tracer: Optional[ServiceTracer],
    name: str,
    corr_id: str,
    **args: Any,
) -> ContextManager[None]:
    """``tracer.span(...)`` when tracing is on, a free no-op otherwise —
    lets instrumented call sites stay a single ``with`` statement."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, corr_id, **args)


def reconstruct_durations(
    document: Dict[str, Any], corr_id: str
) -> Dict[str, Tuple[float, float]]:
    """Re-parse a merged trace document: ``{span name: (start_ms,
    dur_ms)}`` for one request, taken from the exact values in ``args``
    (the round-trip contract tests pin)."""
    durations: Dict[str, Tuple[float, float]] = {}
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return durations
    for row in events:
        if not isinstance(row, dict) or row.get("cat") != "svc":
            continue
        args = row.get("args") or {}
        if args.get("corr_id") != corr_id:
            continue
        name = row.get("name")
        if isinstance(name, str):
            durations[name] = (
                float(args["start_ms"]), float(args["dur_ms"])
            )
    return durations

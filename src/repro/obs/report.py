"""Text report over an observed run: utilization, stall attribution, and
the worst stall episodes with the event window around each.

This is the renderer behind ``repro-sim report``; the tables come from
:mod:`repro.analysis.tables` so the CLI's other subcommands and the report
share one formatting vocabulary.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import (
    format_stall_table,
    format_table,
    format_utilization_table,
)
from repro.obs import events as ev
from repro.obs.metrics import Histogram
from repro.obs.observer import Observer


def _histogram_line(histogram: Histogram) -> str:
    cells = [
        f"<={bound:g}:{count}"
        for bound, count in zip(histogram.bounds, histogram.counts)
    ]
    cells.append(f">{histogram.bounds[-1]:g}:{histogram.overflow}")
    return (
        f"{histogram.name}: n={histogram.count} mean={histogram.mean:.2f} "
        f"max={histogram.max if histogram.max is not None else 0:.2f}  "
        + " ".join(cells)
    )


def _format_event(event: ev.Event) -> str:
    parts = [f"t={event.t_ms:10.2f}", f"{event.kind:<16}"]
    if event.block != -1:
        parts.append(f"block={event.block}")
    if event.disk != -1:
        parts.append(f"disk={event.disk}")
    if event.dur_ms != 0.0:
        parts.append(f"dur={event.dur_ms:.2f}ms")
    if event.cause:
        parts.append(event.cause)
    return "  ".join(parts)


def render_report(
    observer: Observer, top: int = 5, window_lead_ms: float = 20.0,
    window_limit: int = 10,
) -> str:
    """Render the full text report for one observed run."""
    result = observer.result
    if result is None:
        raise ValueError("render_report needs a finished run (result is None)")
    lines: List[str] = [str(result), ""]

    lines.append("stall attribution:")
    lines.append(format_stall_table(result))
    lines.append("")

    lines.append("disk utilization:")
    lines.append(format_utilization_table(result))
    lines.append("")

    metrics = observer.metrics
    counters = [
        (name, counter.value)
        for name, counter in metrics.counters.items()
        if counter.value
    ]
    if counters:
        lines.append("counters (non-zero):")
        lines.append(format_table(("counter", "value"), counters))
        lines.append("")

    histograms = [h for h in metrics.histograms.values() if h.count]
    if histograms:
        lines.append("histograms:")
        for histogram in histograms:
            lines.append("  " + _histogram_line(histogram))
        lines.append("")

    worst = observer.worst_stalls(top)
    if worst:
        lines.append(f"top {len(worst)} stall episodes:")
        for rank, record in enumerate(worst, start=1):
            lines.append(
                f"#{rank}  {record.duration_ms:9.2f} ms  "
                f"block={record.block}  cursor={record.cursor}  "
                f"cause={record.cause}  at t={record.start_ms:.2f} ms"
            )
            for event in observer.window(
                record.start_ms, record.end_ms, lead_ms=window_lead_ms,
                limit=window_limit,
            ):
                lines.append("      " + _format_event(event))
    else:
        lines.append("no stall episodes recorded")
    return "\n".join(lines)

"""Exporters: Chrome ``trace_event`` JSON (Perfetto) and JSONL streams.

The Chrome export opens directly in https://ui.perfetto.dev (or
``chrome://tracing``): one track per disk carrying its busy spans, an
application track carrying stall episodes, and counter tracks for cache
occupancy and per-disk queue depth.  Timestamps convert simulated
milliseconds to the format's microseconds; the *exact* millisecond values
ride along in ``args`` so re-parsers never depend on the unit conversion.

This module is the one place in ``repro.obs`` allowed to read the host
wall clock (simlint SL002 allowlist): with ``stamp=True`` the export
records *when it was generated* for artifact provenance.  Simulated time
never comes from the host clock.
"""

from __future__ import annotations

import json
import time
from typing import IO, Dict, Iterator, List

from repro.obs import events as ev
from repro.obs.observer import Observer

#: Single simulated process in the trace.
PID = 1
#: Thread id of the application track; disk ``d`` uses ``d + 1``.
TID_APP = 0

#: Kinds exported as thread-scoped instants by default (fault handling is
#: rare and load-bearing for debugging; per-reference kinds are not).
_INSTANT_KINDS = frozenset(
    {
        ev.FAULT,
        ev.FETCH_RETRY,
        ev.FETCH_BACKOFF,
        ev.FETCH_ABANDON,
        ev.FETCH_FAILOVER,
    }
)
#: Additional kinds exported as instants with ``full=True``.
_FULL_INSTANT_KINDS = frozenset(
    {
        ev.REF_HIT,
        ev.REF_MISS,
        ev.REF_UNREADABLE,
        ev.WRITE_ALLOCATE,
        ev.FETCH_ISSUE,
        ev.FETCH_DONE,
        ev.FLUSH_ISSUE,
        ev.FLUSH_DONE,
        ev.EVICT,
    }
)


def _tid(event: ev.Event) -> int:
    return event.disk + 1 if event.disk >= 0 else TID_APP


def chrome_trace(
    observer: Observer, full: bool = False, stamp: bool = False
) -> Dict[str, object]:
    """Render an observer's events as a Chrome ``trace_event`` document.

    ``full`` additionally exports per-reference and per-fetch instants
    (large but exhaustive); the default keeps spans, counters, and fault
    handling.  ``stamp`` adds a host-clock capture time to the metadata.
    """
    rows: List[Dict[str, object]] = []
    for event in observer.events:
        kind = event.kind
        if kind == ev.DISK_BUSY:
            rows.append(
                {
                    "ph": "X", "pid": PID, "tid": _tid(event),
                    "ts": event.t_ms * 1000.0, "dur": event.dur_ms * 1000.0,
                    "name": event.cause or "io", "cat": kind,
                    "args": {
                        "block": event.block,
                        "start_ms": event.t_ms,
                        "service_ms": event.dur_ms,
                        "detail": event.detail or {},
                    },
                }
            )
        elif kind == ev.STALL_END:
            start_ms = event.t_ms - event.dur_ms
            rows.append(
                {
                    "ph": "X", "pid": PID, "tid": TID_APP,
                    "ts": start_ms * 1000.0, "dur": event.dur_ms * 1000.0,
                    "name": event.cause or "stall", "cat": "stall",
                    "args": {
                        "block": event.block,
                        "cursor": event.cursor,
                        "start_ms": start_ms,
                        "stall_ms": event.dur_ms,
                    },
                }
            )
        elif kind == ev.CACHE_OCCUPANCY:
            rows.append(
                {
                    "ph": "C", "pid": PID, "tid": TID_APP,
                    "ts": event.t_ms * 1000.0, "name": "cache occupancy",
                    "args": {"buffers": event.value},
                }
            )
        elif kind == ev.QUEUE_DEPTH:
            rows.append(
                {
                    "ph": "C", "pid": PID, "tid": _tid(event),
                    "ts": event.t_ms * 1000.0,
                    "name": f"queue depth d{event.disk}",
                    "args": {"requests": event.value},
                }
            )
        elif kind in _INSTANT_KINDS or (full and kind in _FULL_INSTANT_KINDS):
            args: Dict[str, object] = {"block": event.block}
            if event.cause:
                args["cause"] = event.cause
            if event.value != 0.0:
                args["value"] = event.value
            rows.append(
                {
                    "ph": "i", "pid": PID, "tid": _tid(event),
                    "ts": event.t_ms * 1000.0, "s": "t",
                    "name": kind, "cat": kind, "args": args,
                }
            )
    # Perfetto does not require ordering, but a sorted stream lets
    # re-parsers assert per-track monotonicity directly.  Python's sort is
    # stable, so same-timestamp rows keep their recording order.
    def _row_ts(row: Dict[str, object]) -> float:
        ts = row["ts"]
        assert isinstance(ts, float)
        return ts

    rows.sort(key=_row_ts)
    metadata: List[Dict[str, object]] = [
        {
            "ph": "M", "pid": PID, "tid": TID_APP, "name": "process_name",
            "args": {
                "name": f"repro-sim {observer.trace_name}/"
                f"{observer.policy_name} d{observer.num_disks}"
            },
        },
        {
            "ph": "M", "pid": PID, "tid": TID_APP, "name": "thread_name",
            "args": {"name": "application"},
        },
    ]
    for disk in range(observer.num_disks):
        metadata.append(
            {
                "ph": "M", "pid": PID, "tid": disk + 1, "name": "thread_name",
                "args": {"name": f"disk {disk}"},
            }
        )
    meta: Dict[str, object] = {
        "trace": observer.trace_name,
        "policy": observer.policy_name,
        "disks": observer.num_disks,
        "elapsed_ms": observer.elapsed_ms,
        "stall_breakdown_ms": dict(observer.stall_breakdown),
    }
    if stamp:
        meta["captured_unix_s"] = time.time()
    return {
        "traceEvents": metadata + rows,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome_trace(
    observer: Observer, path: str, full: bool = False, stamp: bool = False
) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    document = chrome_trace(observer, full=full, stamp=stamp)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def iter_jsonl_rows(
    observer: Observer, stamp: bool = False
) -> Iterator[Dict[str, object]]:
    """Yield the JSONL export row by row: one ``meta`` header, every
    event, then the aggregates (metrics, stall breakdown, result)."""
    meta: Dict[str, object] = {
        "type": "meta",
        "trace": observer.trace_name,
        "policy": observer.policy_name,
        "disks": observer.num_disks,
        "elapsed_ms": observer.elapsed_ms,
        "events": len(observer.events),
    }
    if stamp:
        meta["captured_unix_s"] = time.time()
    yield meta
    for event in observer.events:
        row: Dict[str, object] = {"type": "event"}
        row.update(event.as_dict())
        yield row
    metrics = observer.metrics
    for counter in metrics.counters.values():
        yield {"type": "counter", "name": counter.name, "value": counter.value}
    for gauge in metrics.gauges.values():
        row = {"type": "gauge"}
        row.update(gauge.as_dict())
        yield row
    for histogram in metrics.histograms.values():
        row = {"type": "histogram"}
        row.update(histogram.as_dict())
        yield row
    yield {
        "type": "stall_breakdown",
        "stall_breakdown_ms": dict(observer.stall_breakdown),
        "episodes": len(observer.stall_episodes),
    }
    if observer.result is not None:
        row = {"type": "result"}
        row.update(observer.result.to_dict())
        yield row


def write_jsonl(observer: Observer, path: str, stamp: bool = False) -> None:
    """Write the full event stream and aggregates as JSON Lines."""
    with open(path, "w", encoding="utf-8") as handle:
        _dump_rows(observer, handle, stamp=stamp)


def _dump_rows(observer: Observer, handle: IO[str], stamp: bool) -> None:
    for row in iter_jsonl_rows(observer, stamp=stamp):
        handle.write(json.dumps(row, separators=(",", ":")))
        handle.write("\n")

"""Typed trace events and the stall-cause taxonomy.

Every event carries the *simulated* time it happened at (``t_ms``); span
events (disk busy, stall episodes) also carry a duration.  The ``kind``
vocabulary is dotted and closed — exporters and tests match on the
constants below, never on ad-hoc strings.  See ``docs/OBSERVABILITY.md``
for the full vocabulary with per-kind field semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# -- event kinds ------------------------------------------------------------------

#: The application consumed a reference that was resident (no wait).
REF_HIT = "ref.hit"
#: The application consumed a reference it had to stall for.
REF_MISS = "ref.miss"
#: The application consumed a reference to a block with no surviving copy
#: (partial-data mode; see docs/FAULTS.md).
REF_UNREADABLE = "ref.unreadable"
#: A whole-block write miss allocated a buffer without a disk read.
WRITE_ALLOCATE = "write.allocate"

#: A read fetch entered a disk queue (``cause`` is "demand"/"prefetch").
FETCH_ISSUE = "fetch.issue"
#: A read fetch completed; ``dur_ms`` is submit-to-completion latency
#: (queue wait + service, including any retries and failovers).
FETCH_DONE = "fetch.done"
#: A failed demand fetch was resubmitted after its backoff expired.
FETCH_RETRY = "fetch.retry"
#: A failed demand fetch scheduled an exponential-backoff retry
#: (``value`` is the attempt number).
FETCH_BACKOFF = "fetch.backoff"
#: An in-flight fetch was abandoned (failed prefetch, or lost block).
FETCH_ABANDON = "fetch.abandon"
#: A request was rerouted to its mirror twin after a dead-spindle failure.
FETCH_FAILOVER = "fetch.failover"

#: A write-behind flush of an evicted dirty block entered a disk queue.
FLUSH_ISSUE = "flush.issue"
#: A write-behind flush finished.
FLUSH_DONE = "flush.done"

#: A resident block was evicted; ``value`` is its forward distance (next
#: use minus cursor, in references), -1.0 when it is never used again.
EVICT = "evict"

#: The application began waiting for a block; ``cause`` is the initial
#: stall-cause classification (it may be refined by fault handling).
STALL_BEGIN = "stall.begin"
#: The wait ended; ``dur_ms`` is the stall quantum charged to ``cause``.
STALL_END = "stall.end"

#: A disk serviced one request: a span of ``dur_ms`` starting at ``t_ms``
#: (``cause`` is the request kind, ``detail`` the service breakdown).
#: Gaps between consecutive spans on one disk are its idle time.
DISK_BUSY = "disk.busy"
#: Sample of a disk's queue length (``value``), taken after each queue
#: push and each dispatch.
QUEUE_DEPTH = "disk.queue"
#: Sample of cache occupancy — resident plus in-flight buffers
#: (``value``), taken at fetch issue/completion boundaries.
CACHE_OCCUPANCY = "cache.occupancy"

#: A request finished with an injected fault (``cause`` is the outcome:
#: "transient" or "dead"); the recovery action follows as its own event.
FAULT = "fault"

#: Every kind an :class:`Event` may carry.
KINDS = frozenset(
    {
        REF_HIT,
        REF_MISS,
        REF_UNREADABLE,
        WRITE_ALLOCATE,
        FETCH_ISSUE,
        FETCH_DONE,
        FETCH_RETRY,
        FETCH_BACKOFF,
        FETCH_ABANDON,
        FETCH_FAILOVER,
        FLUSH_ISSUE,
        FLUSH_DONE,
        EVICT,
        STALL_BEGIN,
        STALL_END,
        DISK_BUSY,
        QUEUE_DEPTH,
        CACHE_OCCUPANCY,
        FAULT,
    }
)

# -- stall causes -----------------------------------------------------------------

#: The app parked on a miss it could not even issue: every buffer was
#: pinned by fetches already riding the (saturated) array.
CAUSE_ALL_DISKS_BUSY = "all-disks-busy"
#: The needed block's fetch was issued in an *earlier* step but had not
#: completed when the app arrived — the prefetch was simply too late.
CAUSE_PREFETCH_TOO_LATE = "prefetch-too-late"
#: The fetch was only issued in the very step that stalled on it — the
#: block was never prefetched ahead of need.
CAUSE_DEMAND_MISS = "demand-miss-never-prefetched"
#: The wait was extended by transient-error retries with backoff; once a
#: stalled fetch enters the retry path its remaining quantum is charged
#: here (see docs/OBSERVABILITY.md for the reclassification rule).
CAUSE_FAULT_RETRY = "fault-retry"
#: The wait was extended by a dead spindle failing over to its mirror.
CAUSE_FAILOVER = "failover"

#: All causes, in reporting order.  Every stall quantum is charged to
#: exactly one of these; their totals sum to ``stall_ms``.
STALL_CAUSES = (
    CAUSE_ALL_DISKS_BUSY,
    CAUSE_PREFETCH_TOO_LATE,
    CAUSE_DEMAND_MISS,
    CAUSE_FAULT_RETRY,
    CAUSE_FAILOVER,
)


@dataclass
class Event:
    """One simulated-time trace event.

    Only ``t_ms`` and ``kind`` are always meaningful; the other fields
    default to sentinels (-1 / 0.0 / "" / None) and are populated per
    kind as documented on the kind constants.
    """

    t_ms: float
    kind: str
    block: int = -1
    disk: int = -1
    dur_ms: float = 0.0
    cursor: int = -1
    value: float = 0.0
    cause: str = ""
    detail: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        """Compact JSON-ready form: sentinel-valued fields are omitted."""
        row: Dict[str, object] = {"t_ms": self.t_ms, "kind": self.kind}
        if self.block != -1:
            row["block"] = self.block
        if self.disk != -1:
            row["disk"] = self.disk
        if self.dur_ms != 0.0:
            row["dur_ms"] = self.dur_ms
        if self.cursor != -1:
            row["cursor"] = self.cursor
        if self.value != 0.0:
            row["value"] = self.value
        if self.cause:
            row["cause"] = self.cause
        if self.detail is not None:
            row["detail"] = self.detail
        return row

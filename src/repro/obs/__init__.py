"""repro.obs — opt-in observability for the simulator.

Three layers, all strictly read-only with respect to simulation state:

* **event tracing** — an :class:`Observer` attached to a
  :class:`~repro.core.engine.Simulator` records typed events (references,
  fetch lifecycle, evictions with victim distance, disk busy spans, stall
  episodes, fault handling) keyed on *simulated* time;
* **metrics** — a :class:`MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms (queue depth, fetch latency, victim forward
  distance, cache occupancy, per-disk utilization) aggregated per run;
* **stall attribution** — every stall quantum is charged to exactly one
  cause (:data:`~repro.obs.events.STALL_CAUSES`), and the per-cause totals
  sum back to ``SimulationResult.stall_ms`` to within float noise.

An unobserved simulator carries **zero** tracing calls: the hooks are
installed by instance-attribute shadowing (the same pattern as
``Simulator._instrument``), so the class methods stay untouched and the
default hot path has no flag checks, no indirection, and bit-identical
results.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.events import Event, STALL_CAUSES
from repro.obs.export import (
    chrome_trace,
    iter_jsonl_rows,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logging import (
    JsonFormatter,
    configure_logging,
    get_correlation_id,
    get_logger,
    set_correlation_id,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import Observer, StallRecord
from repro.obs.prom import labeled, render_prometheus, validate_exposition
from repro.obs.report import render_report
from repro.obs.svc import (
    ServiceSpan,
    ServiceTracer,
    maybe_span,
    new_correlation_id,
    reconstruct_durations,
)

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "Observer",
    "STALL_CAUSES",
    "ServiceSpan",
    "ServiceTracer",
    "StallRecord",
    "chrome_trace",
    "configure_logging",
    "get_correlation_id",
    "get_logger",
    "iter_jsonl_rows",
    "labeled",
    "maybe_span",
    "new_correlation_id",
    "reconstruct_durations",
    "render_prometheus",
    "render_report",
    "set_correlation_id",
    "validate_exposition",
    "write_chrome_trace",
    "write_jsonl",
]

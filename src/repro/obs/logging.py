"""Structured JSON logging with request correlation for the service tier.

Strictly opt-in, like every layer of ``repro.obs``: the service modules
log through :func:`get_logger`, which parks a ``NullHandler`` on the
``repro`` root logger so an unconfigured process emits **nothing** — no
``lastResort`` stderr surprises, no formatting cost beyond the level
check.  ``repro-sim serve --log-json`` calls :func:`configure_logging`
to attach the real handler.

Correlation: the active request's correlation ID lives in a
:class:`contextvars.ContextVar`.  The HTTP layer sets it per connection;
the forked pool worker cannot inherit it (the context is copied at fork
time, not at dispatch time), so the ID crosses the worker's duplex pipe
inside the task metadata and the worker re-seeds the contextvar itself
(:mod:`repro.runner.pool`).  Every JSON record carries the ID under
``corr_id`` when one is set.

``repro.core`` and ``repro.disk`` must never log (or print): logging
reads wall-clock timestamps and allocates per call, which would both
perturb the hot loop and break the zero-cost guarantee — simlint SL016
enforces the ban statically.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from typing import IO, Any, Dict, Optional

#: The active request's correlation ID (contextvar: async-task local on
#: the event loop, thread-local elsewhere).
_correlation_id: "contextvars.ContextVar[Optional[str]]" = (
    contextvars.ContextVar("repro_correlation_id", default=None)
)

#: logging.LogRecord attributes that are not user-supplied extras.
_RECORD_FIELDS = frozenset(
    logging.LogRecord(
        "x", logging.INFO, "x", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


def set_correlation_id(
    corr_id: Optional[str],
) -> "contextvars.Token[Optional[str]]":
    """Bind ``corr_id`` to the current context; returns the reset token."""
    return _correlation_id.set(corr_id)


def get_correlation_id() -> Optional[str]:
    """The correlation ID bound to the current context, if any."""
    return _correlation_id.get()


def reset_correlation_id(token: "contextvars.Token[Optional[str]]") -> None:
    """Undo a :func:`set_correlation_id` (scoped binding)."""
    _correlation_id.reset(token)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ``ts`` (unix seconds, captured by the
    logging machinery itself — this module never reads a clock), level,
    logger, message, ``corr_id`` when bound, any ``extra=`` fields, and
    the formatted traceback under ``exc`` for exception records."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        corr_id = getattr(record, "corr_id", None) or _correlation_id.get()
        if corr_id is not None:
            payload["corr_id"] = corr_id
        for name, value in record.__dict__.items():
            if name in _RECORD_FIELDS or name == "corr_id":
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[name] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy that is silent until
    :func:`configure_logging` opts in (NullHandler on the root of the
    hierarchy keeps ``logging.lastResort`` out of stderr)."""
    root = logging.getLogger("repro")
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    return logging.getLogger(name)


def configure_logging(
    stream: Optional[IO[str]] = None, level: str = "info"
) -> logging.Handler:
    """Attach the JSON handler to the ``repro`` logger hierarchy.

    Idempotent: a second call replaces the previous JSON handler rather
    than duplicating records.  Returns the handler (tests detach it via
    ``logging.getLogger("repro").removeHandler(...)``)."""
    root = get_logger("repro")
    for handler in list(root.handlers):
        if isinstance(handler, _JsonHandler):
            root.removeHandler(handler)
    handler = _JsonHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    return handler


class _JsonHandler(logging.StreamHandler):
    """Marker subclass so :func:`configure_logging` can stay idempotent."""

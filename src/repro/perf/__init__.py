"""Lightweight phase instrumentation for the simulator hot path.

The simulator spends its time in four places: consulting the policy,
modelling disk service, cache bookkeeping, and dispatching events.  This
module attributes wall-clock *self time* to those phases with a plain
start/stop stack — entering a nested phase pauses its parent, so the
reported numbers sum to the bracketed total without double counting.

Profiling is strictly opt-in: a :class:`~repro.core.engine.Simulator`
constructed without a profiler carries **zero** timing calls on its hot
path, and an attached profiler never changes simulation behaviour — a
profiled run produces a bit-identical :class:`SimulationResult`
(``tests/test_perf.py`` pins this).
"""

from repro.perf.profiler import PHASES, PhaseProfiler
from repro.perf.wrappers import ProfiledPolicy

__all__ = ["PHASES", "PhaseProfiler", "ProfiledPolicy"]

"""Stack-based self-time profiler for the simulator's phases."""

import time
from typing import Callable, Dict, List, Optional, Tuple

#: The engine's phase vocabulary (reports order phases by self time, not
#: by this tuple):
#:
#: * ``policy``   — time inside policy decision points and hooks
#:   (``before_reference``, ``on_disk_idle``, ``on_miss``, …);
#: * ``disk``     — starting queued requests and computing their service
#:   times (:meth:`Simulator._start_disks`);
#: * ``cache``    — issue-side bookkeeping of a fetch (buffer reservation,
#:   eviction, request submission);
#: * ``dispatch`` — the event loop itself: heap pops, completions, app
#:   steps, and everything not attributed to a nested phase.
PHASES = ("policy", "disk", "cache", "dispatch")


class PhaseProfiler:
    """Accumulates per-phase wall-clock self time.

    ``start(phase)`` pauses the phase currently on top of the stack (if
    any) and begins attributing time to ``phase``; ``stop()`` ends it and
    resumes the parent.  Self times therefore partition the bracketed
    span: a phase's number excludes the nested phases it called into.

    The clock is injectable for deterministic tests; it must be a
    callable returning integer nanoseconds.
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter_ns
        # (phase, resumed_at_ns) — top is the running phase; the top entry
        # is replaced whenever its phase is paused or resumed.
        self._stack: List[Tuple[str, int]] = []
        self.totals_ns: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    def start(self, phase: str) -> None:
        now = self._clock()
        stack = self._stack
        if stack:
            parent, resumed = stack[-1]
            self.totals_ns[parent] = (
                self.totals_ns.get(parent, 0) + now - resumed
            )
            stack[-1] = (parent, now)
        stack.append((phase, now))
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def stop(self) -> None:
        now = self._clock()
        phase, since = self._stack.pop()
        self.totals_ns[phase] = self.totals_ns.get(phase, 0) + now - since
        if self._stack:
            parent, _resumed = self._stack[-1]
            self._stack[-1] = (parent, now)

    def reset(self) -> None:
        self._stack.clear()
        self.totals_ns.clear()
        self.counts.clear()

    # -- reporting --------------------------------------------------------------

    def ms(self, phase: str) -> float:
        return self.totals_ns.get(phase, 0) / 1e6

    @property
    def total_ms(self) -> float:
        return sum(self.totals_ns.values()) / 1e6

    def _ordered_phases(self) -> List[str]:
        # Hottest first: the report exists to answer "where did the time
        # go", so order by self time descending, name breaking ties.
        return sorted(
            self.totals_ns, key=lambda p: (-self.totals_ns[p], p)
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary: per-phase self-time ms, call counts, shares."""
        total = self.total_ms
        phases: Dict[str, Dict[str, object]] = {}
        for phase in self._ordered_phases():
            ms = self.ms(phase)
            phases[phase] = {
                "ms": round(ms, 3),
                "calls": self.counts.get(phase, 0),
                "share": round(ms / total, 4) if total > 0 else 0.0,
            }
        return {"total_ms": round(total, 3), "phases": phases}

    def report(self) -> str:
        """Human-readable phase breakdown table."""
        total = self.total_ms
        lines = [
            f"{'phase':<10} {'self ms':>10} {'share':>7} {'calls':>10}"
        ]
        for phase in self._ordered_phases():
            ms = self.ms(phase)
            share = ms / total if total > 0 else 0.0
            lines.append(
                f"{phase:<10} {ms:>10.1f} {share:>6.1%} "
                f"{self.counts.get(phase, 0):>10,}"
            )
        lines.append(f"{'total':<10} {total:>10.1f}")
        return "\n".join(lines)

"""Profiling wrappers that bracket hot-path calls with phase timing.

Kept out of the engine so an unprofiled :class:`Simulator` never touches
this module: the wrapper is swapped in only when a profiler is attached,
and it delegates every call unchanged — the wrapped policy cannot tell it
is being observed, which is what keeps profiled runs bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.core.policy import PrefetchPolicy, SimulatorLike, Victim
    from repro.perf.profiler import PhaseProfiler


class ProfiledPolicy:
    """Wraps a :class:`PrefetchPolicy`, timing its consultations.

    Every decision point and observation hook is bracketed with the
    ``policy`` phase; anything else (attributes, helper methods the
    policy calls on itself) passes straight through via delegation.
    """

    def __init__(self, policy: PrefetchPolicy, profiler: PhaseProfiler) -> None:
        self._policy = policy
        self._profiler = profiler

    @property
    def name(self) -> str:
        return self._policy.name

    def bind(self, sim: SimulatorLike) -> None:
        self._policy.bind(sim)

    # -- timed decision points --------------------------------------------------

    def before_reference(self, cursor: int, now: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.before_reference(cursor, now)
        finally:
            profiler.stop()

    def on_disk_idle(self, disk: int, now: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.on_disk_idle(disk, now)
        finally:
            profiler.stop()

    def on_miss(self, cursor: int, now: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.on_miss(cursor, now)
        finally:
            profiler.stop()

    def choose_victim(self, cursor: int, exclude: Iterable[int] = ()) -> Victim:
        profiler = self._profiler
        profiler.start("policy")
        try:
            return self._policy.choose_victim(cursor, exclude)
        finally:
            profiler.stop()

    # -- timed observation hooks ------------------------------------------------

    def on_fetch_complete(self, disk: int, service_ms: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.on_fetch_complete(disk, service_ms)
        finally:
            profiler.stop()

    def on_reference_served(self, cursor: int, compute_ms: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.on_reference_served(cursor, compute_ms)
        finally:
            profiler.stop()

    def on_evict(self, block: int, next_use: float) -> None:
        profiler = self._profiler
        profiler.start("policy")
        try:
            self._policy.on_evict(block, next_use)
        finally:
            profiler.stop()

    # -- transparent delegation -------------------------------------------------

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self._policy, attribute)

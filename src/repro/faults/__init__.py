"""Fault injection: transient read errors, fail-slow disks, disk death.

See :mod:`repro.faults.schedule` for the model and
``docs/FAULTS.md`` for the full semantics (retry layer, mirrored
failover, degraded partial-data mode).
"""

from repro.faults.schedule import (
    DiskFailure,
    ErrorWindow,
    FaultSchedule,
    SlowWindow,
    UnrecoverableReadError,
)

__all__ = [
    "DiskFailure",
    "ErrorWindow",
    "FaultSchedule",
    "SlowWindow",
    "UnrecoverableReadError",
]

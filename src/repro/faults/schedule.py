"""Deterministic fault injection: what the paper's fault-free disks hide.

The paper compares prefetching algorithms on perfect HP 97560 arrays; real
arrays exhibit **transient read errors** (media defects, bus glitches),
**fail-slow spindles** (degraded servo, vibrating chassis, remapped
sectors), and **whole-disk loss**.  Aggressive prefetching interacts with
every one of these regimes: retries can hide behind compute (the fault is
masked) or land on the critical path (the fault is amplified by wasted
bandwidth on a degraded spindle).

A :class:`FaultSchedule` is a *pure, immutable description* of the faults
to inject — it owns no counters and no mutable RNG.  Every transient-error
decision is a stateless hash of ``(seed, disk, request sequence number)``,
so a run is a deterministic function of ``(trace, policy, schedule)``:
identical invocations produce bit-identical results, and the zero-fault
schedule reproduces fault-free timings exactly (the injection hooks take
the same code paths with the same floating-point values).

Fault classes
-------------

* **Transient read errors** — a baseline per-request probability
  (:attr:`FaultSchedule.read_error_rate`) plus scripted
  :class:`ErrorWindow` spans during which a disk (or all disks) fails
  requests at an elevated rate.  The request consumed full mechanical
  service time before the error is detected (the media was read; the
  transfer was bad).
* **Fail-slow** — :class:`SlowWindow` spans multiply a disk's service
  times by a factor; an open-ended window models a permanently degraded
  spindle, a bounded one models a transient brown-out spike.
* **Permanent failure** — a :class:`DiskFailure` kills a spindle at a
  wall-clock time; from then on its requests fail fast (the controller
  reports the error after :attr:`FaultSchedule.fail_fast_ms`).

Retry semantics (implemented by the engine) are carried here as policy
knobs: failed *demand* fetches retry with exponential backoff up to
:attr:`FaultSchedule.max_retries` times and then raise
:class:`UnrecoverableReadError`; failed *prefetches* are abandoned — the
block simply surfaces later as a demand miss.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

_MASK64 = (1 << 64) - 1
_TWO64 = float(1 << 64)


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer: a fast, well-mixed 64-bit
    hash that is identical on every platform and Python version (unlike
    ``hash``/``random``, which must not leak into simulation results)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class UnrecoverableReadError(RuntimeError):
    """A demand fetch failed and exhausted its retry budget.

    Carries enough context (``block``, ``disk``, ``attempts``) for a
    caller to report which data became unreadable and how hard the retry
    layer tried before giving up.
    """

    def __init__(self, block: int, disk: int, attempts: int) -> None:
        super().__init__(
            f"demand fetch of block {block!r} on disk {disk} failed "
            f"{attempts} times (retries exhausted)"
        )
        self.block = block
        self.disk = disk
        self.attempts = attempts


@dataclass(frozen=True)
class ErrorWindow:
    """Scripted span of elevated transient-error probability.

    ``disk is None`` applies the window to every disk (a shared-bus or
    controller brown-out); otherwise only the named spindle is affected.
    """

    start_ms: float
    end_ms: float
    rate: float = 1.0
    disk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValueError("error window must end at or after its start")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("error rate must be in [0, 1]")

    def covers(self, disk: int, now_ms: float) -> bool:
        return (self.disk is None or self.disk == disk) and (
            self.start_ms <= now_ms < self.end_ms
        )


@dataclass(frozen=True)
class SlowWindow:
    """Span during which a disk's service times are multiplied by
    ``factor``.  ``end_ms is None`` means forever (a fail-slow spindle);
    ``disk is None`` slows the whole array.  Overlapping windows
    compound multiplicatively."""

    factor: float
    disk: Optional[int] = None
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError("slow factor must be positive")
        if self.end_ms is not None and self.end_ms < self.start_ms:
            raise ValueError("slow window must end at or after its start")

    def covers(self, disk: int, now_ms: float) -> bool:
        if self.disk is not None and self.disk != disk:
            return False
        if now_ms < self.start_ms:
            return False
        return self.end_ms is None or now_ms < self.end_ms


@dataclass(frozen=True)
class DiskFailure:
    """Permanent death of one spindle at a wall-clock time."""

    disk: int
    at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ValueError("disk index must be nonnegative")
        if self.at_ms < 0.0:
            raise ValueError("failure time must be nonnegative")


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded, deterministic description of the faults to inject.

    The default instance is the *null schedule*: no errors, no slowdowns,
    no failures — and (by construction) zero perturbation of a run's
    timing.  Retry knobs: ``max_retries`` bounds demand-fetch retries
    (attempt ``n`` backs off ``retry_backoff_ms * 2**(n-1)``);
    ``fail_fast_ms`` is the controller latency to report a request against
    a dead spindle.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    error_windows: Tuple[ErrorWindow, ...] = ()
    slow_windows: Tuple[SlowWindow, ...] = ()
    disk_failures: Tuple[DiskFailure, ...] = ()
    max_retries: int = 3
    retry_backoff_ms: float = 1.0
    fail_fast_ms: float = 0.5

    def __post_init__(self) -> None:
        # Accept lists for ergonomics; store tuples so the schedule stays
        # hashable and safely shareable across simulators.
        for name in ("error_windows", "slow_windows", "disk_failures"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not 0.0 <= self.read_error_rate <= 1.0:
            raise ValueError("read_error_rate must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if self.retry_backoff_ms < 0.0:
            raise ValueError("retry_backoff_ms must be nonnegative")
        if self.fail_fast_ms <= 0.0:
            # A zero-latency failure would let a policy re-issue a doomed
            # fetch at the same instant forever; strictly positive
            # detection time guarantees the event loop always advances.
            raise ValueError("fail_fast_ms must be positive")

    # -- queries (all pure) ---------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when this schedule injects nothing at all."""
        return (
            self.read_error_rate == 0.0
            and not self.error_windows
            and not self.slow_windows
            and not self.disk_failures
        )

    def death_time(self, disk: int) -> Optional[float]:
        """When ``disk`` dies permanently, or None if it never does."""
        times = [f.at_ms for f in self.disk_failures if f.disk == disk]
        return min(times) if times else None

    def is_dead(self, disk: int, now_ms: float) -> bool:
        time = self.death_time(disk)
        return time is not None and now_ms >= time

    def slow_factor(self, disk: int, now_ms: float) -> float:
        """Service-time multiplier for a request starting now on ``disk``."""
        factor = 1.0
        for window in self.slow_windows:
            if window.covers(disk, now_ms):
                factor *= window.factor
        return factor

    def error_rate(self, disk: int, now_ms: float) -> float:
        """Effective transient-error probability: the baseline rate or the
        strongest covering scripted window, whichever is higher."""
        rate = self.read_error_rate
        for window in self.error_windows:
            if window.covers(disk, now_ms) and window.rate > rate:
                rate = window.rate
        return rate

    def draw_error(self, disk: int, seq: int, now_ms: float) -> bool:
        """Does the request with sequence number ``seq`` fail transiently?

        The draw is a stateless hash of ``(seed, disk, seq)`` — no RNG
        stream exists to be perturbed, so injecting a fault for one
        request can never change the outcome drawn for another.
        """
        rate = self.error_rate(disk, now_ms)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._uniform(disk, seq) < rate

    def _uniform(self, disk: int, seq: int) -> float:
        h = _splitmix64(self.seed & _MASK64)
        h = _splitmix64(h ^ (disk & _MASK64))
        h = _splitmix64(h ^ (seq & _MASK64))
        return h / _TWO64

"""repro.svc: a crash-safe simulation service over the supervised runner.

The service turns the batch runner into a long-lived, chaos-tested
daemon: cells arrive over HTTP/JSON, are deduplicated against a sharded
content-addressed :class:`ResultStore` (a second identical request is
O(1) and bit-identical), coalesced while in flight, guarded by admission
control and a circuit breaker, and drained gracefully on signals using
the runner's resumable exit codes.  ``repro.svc.chaos`` provides the
fault-injection hooks the chaos test suite drives.

See ``docs/SERVICE.md`` for the API surface, the store's durability
model, and the invariants the chaos harness asserts.
"""

from repro.svc.admission import AdmissionController
from repro.svc.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.svc.chaos import (
    CHAOS_EXIT_CODE,
    CRASH_ENV,
    RAISE_ENV,
    crash_point,
    kill_worker,
    tear_file,
    worker_pids,
)
from repro.svc.http import ServiceServer, serve_async, serve_forever
from repro.svc.limits import (
    HARD_MAX_BODY_BYTES,
    HARD_MAX_HEADER_BYTES,
    ProtocolLimits,
)
from repro.svc.netchaos import (
    ChaosProxy,
    ConnPlan,
    NetChaosSchedule,
    load_schedule,
    paced_write,
)
from repro.svc.ratelimit import PeerRateLimiter
from repro.svc.service import (
    SERVED_COALESCED,
    SERVED_COMPUTED,
    SERVED_STORE,
    Overloaded,
    RequestTimedOut,
    ServiceConfig,
    SimulationService,
    SpecError,
    cell_from_spec,
)
from repro.svc.singleflight import SingleFlight
from repro.svc.store import STORE_LOG_NAME, ResultStore
from repro.svc.top import render_top, run_top

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CHAOS_EXIT_CODE",
    "CRASH_ENV",
    "RAISE_ENV",
    "crash_point",
    "kill_worker",
    "tear_file",
    "worker_pids",
    "ServiceServer",
    "serve_async",
    "serve_forever",
    "HARD_MAX_BODY_BYTES",
    "HARD_MAX_HEADER_BYTES",
    "ProtocolLimits",
    "ChaosProxy",
    "ConnPlan",
    "NetChaosSchedule",
    "load_schedule",
    "paced_write",
    "PeerRateLimiter",
    "SERVED_STORE",
    "SERVED_COMPUTED",
    "SERVED_COALESCED",
    "Overloaded",
    "RequestTimedOut",
    "ServiceConfig",
    "SimulationService",
    "SpecError",
    "cell_from_spec",
    "SingleFlight",
    "STORE_LOG_NAME",
    "ResultStore",
    "render_top",
    "run_top",
]

"""Admission control: a bounded queue with deadline-aware shedding.

Under overload a service has exactly two honest choices: queue a bounded
amount of work, or tell the client *now* with a retryable status.  The
controller counts cells in the system (queued + running in the pool) and
admits new ones only below ``limit``; beyond that the HTTP front end
returns 429 with a Retry-After hint instead of letting the queue — and
every client's latency — grow without bound.

The queue bound alone is not enough once service times vary: a full-but-
short queue should admit while a half-full-but-slow one should not.  So
the controller also keeps an EWMA of recent cell service times and
projects, CoDel-style, how long a *new* arrival would wait before its
cell even starts.  When that projected wait exceeds the request's
deadline, :meth:`admit` sheds **early** with 429 — the client learns in
microseconds instead of burning a slot for ``request_timeout_s`` and
getting a 504 anyway.  Shedding early under sustained overload is what
keeps the goodput curve flat instead of collapsing.

All calls happen on the service's event loop thread, so plain floats
suffice; the counters mirror into ``repro.obs`` metrics for the
``/v1/metrics`` endpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

#: EWMA smoothing for observed service times: ~86% of weight in the
#: last 12 observations — fast enough to track a load shift, slow
#: enough not to flap on one outlier cell.
_EWMA_ALPHA = 0.15


class AdmissionController:
    """Admit at most ``limit`` cells into the system at once."""

    def __init__(
        self, limit: int, metrics: Optional["MetricsRegistry"] = None
    ) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.in_system = 0
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.metrics = metrics
        #: Smoothed seconds per completed cell; None until first sample.
        self.service_time_ewma_s: Optional[float] = None

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("svc.admission.in_system").set(
                float(self.in_system)
            )

    def note_service_time(self, seconds: float) -> None:
        """Feed one completed cell's wall duration into the EWMA."""
        if seconds < 0.0:
            return
        previous = self.service_time_ewma_s
        smoothed = (
            seconds if previous is None
            else previous + _EWMA_ALPHA * (seconds - previous)
        )
        self.service_time_ewma_s = smoothed
        if self.metrics is not None:
            self.metrics.gauge("svc.admission.service_time_ewma_s").set(
                smoothed
            )

    def projected_wait_s(self, workers: int) -> float:
        """Expected queue wait for an arrival right now.

        With ``in_system`` cells ahead of it and ``workers`` servers each
        averaging ``service_time_ewma_s`` seconds per cell, an M/M/c-ish
        estimate of time-to-start is ``ceil-free``: cells ahead divided
        by aggregate service rate.  Zero until the first sample — the
        controller never sheds on a guess.
        """
        if self.service_time_ewma_s is None or self.in_system == 0:
            return 0.0
        effective_workers = max(1, workers)
        queued_ahead = max(0, self.in_system - effective_workers)
        if queued_ahead == 0:
            return 0.0
        return queued_ahead * self.service_time_ewma_s / effective_workers

    def admit(
        self, deadline_s: float, workers: int
    ) -> Tuple[bool, str, float]:
        """Deadline-aware acquire.

        Returns ``(admitted, reason, retry_after_s)``.  ``reason`` is
        ``"ok"``, ``"queue_full"``, or ``"deadline"``; ``retry_after_s``
        hints when retrying could succeed.  A shed request never
        occupied a slot.
        """
        if self.in_system >= self.limit:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.inc("svc.admission.rejected")
            retry = self.service_time_ewma_s or 1.0
            return False, "queue_full", max(1.0, retry)
        projected = self.projected_wait_s(workers)
        if deadline_s > 0.0 and projected > deadline_s:
            self.rejected += 1
            self.shed += 1
            if self.metrics is not None:
                self.metrics.inc("svc.admission.rejected")
                self.metrics.inc("svc.admission.shed")
            return False, "deadline", max(1.0, projected - deadline_s)
        self.in_system += 1
        self.admitted += 1
        if self.metrics is not None:
            self.metrics.inc("svc.admission.admitted")
        self._gauge()
        return True, "ok", 0.0

    def try_acquire(self) -> bool:
        """Claim one slot; False means the queue is full (HTTP 429).

        The original deadline-blind entry point, kept for callers that
        have no deadline to project against.
        """
        admitted, _, _ = self.admit(0.0, 1)
        return admitted

    def release(self) -> None:
        """A cell reached a terminal state (ok, failed, or cancelled)."""
        if self.in_system > 0:
            self.in_system -= 1
        self._gauge()

    @property
    def available(self) -> int:
        return max(0, self.limit - self.in_system)

    def status(self) -> Dict[str, object]:
        return {
            "limit": self.limit,
            "in_system": self.in_system,
            "available": self.available,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "service_time_ewma_s": self.service_time_ewma_s,
        }

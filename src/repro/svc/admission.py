"""Admission control: a bounded queue with explicit backpressure.

Under overload a service has exactly two honest choices: queue a bounded
amount of work, or tell the client *now* with a retryable status.  The
controller counts cells in the system (queued + running in the pool) and
admits new ones only below ``limit``; beyond that the HTTP front end
returns 429 with a Retry-After hint instead of letting the queue — and
every client's latency — grow without bound.

All calls happen on the service's event loop thread, so plain integers
suffice; the counters mirror into ``repro.obs`` metrics for the
``/v1/metrics`` endpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry


class AdmissionController:
    """Admit at most ``limit`` cells into the system at once."""

    def __init__(
        self, limit: int, metrics: Optional["MetricsRegistry"] = None
    ) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.in_system = 0
        self.admitted = 0
        self.rejected = 0
        self.metrics = metrics

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("svc.admission.in_system").set(
                float(self.in_system)
            )

    def try_acquire(self) -> bool:
        """Claim one slot; False means the queue is full (HTTP 429)."""
        if self.in_system >= self.limit:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.inc("svc.admission.rejected")
            return False
        self.in_system += 1
        self.admitted += 1
        if self.metrics is not None:
            self.metrics.inc("svc.admission.admitted")
        self._gauge()
        return True

    def release(self) -> None:
        """A cell reached a terminal state (ok, failed, or cancelled)."""
        if self.in_system > 0:
            self.in_system -= 1
        self._gauge()

    @property
    def available(self) -> int:
        return max(0, self.limit - self.in_system)

    def status(self) -> Dict[str, int]:
        return {
            "limit": self.limit,
            "in_system": self.in_system,
            "available": self.available,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }

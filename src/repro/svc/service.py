"""The simulation service core: store → single-flight → admission → pool.

:class:`SimulationService` is the transport-independent heart of
``repro-sim serve`` (the HTTP layer in :mod:`repro.svc.http` is a thin
skin over it, and tests drive it directly).  One request for a cell
travels:

1. **Store lookup** — a hit returns the journal record in O(1), bit-
   identical to the computed path (the digest pins every float).
2. **Single-flight** — a miss joins the in-flight computation for its
   config hash; only the flight leader goes further.
3. **Circuit breaker** — open: reject 503 without touching the pool.
4. **Admission** — bounded queue full: reject 429.  Otherwise the cell
   is submitted to the long-lived :class:`~repro.runner.pool
   .SupervisedPool` running ``serve()`` in a dedicated thread.
5. **Completion** — the pool's terminal record crosses back onto the
   event loop, feeds the breaker, lands in the store (successes), and
   resolves every coalesced waiter.

Per-request timeouts cancel cooperatively: a timed-out waiter leaves its
flight, and when the *last* waiter is gone the pool drops or kills the
cell (:meth:`SupervisedPool.cancel`).  ``drain`` reuses the runner's
SIGINT/SIGTERM semantics — stop admitting, drain in-flight cells, report
exit 75 (or 76 on deadline) — so a killed service resumes from its store
exactly like an interrupted sweep resumes from its journal.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, REQUEST_BUCKETS_MS
from repro.obs.prom import labeled
from repro.obs.svc import (
    SPAN_ADMISSION_WAIT,
    SPAN_OVERLOAD_SHED,
    SPAN_SINGLEFLIGHT_JOIN,
    SPAN_STORE_GET,
    SPAN_STORE_PUT,
    ServiceTracer,
    maybe_span,
    new_correlation_id,
)
from repro.runner.plan import Cell
from repro.runner.pool import PoolStatus, SupervisedPool
from repro.runner.runner import EXIT_DEADLINE, EXIT_INTERRUPTED
from repro.runner.execute import validate_names
from repro.svc.admission import AdmissionController
from repro.svc.breaker import CircuitBreaker
from repro.svc.limits import ProtocolLimits
from repro.svc.ratelimit import PeerRateLimiter
from repro.svc.singleflight import SingleFlight
from repro.svc.store import ResultStore

#: How results were served, reported per request and counted in metrics.
SERVED_STORE = "store"
SERVED_COMPUTED = "computed"
SERVED_COALESCED = "coalesced"

#: Silent until ``configure_logging`` opts in (docs/OBSERVABILITY.md).
_log = get_logger("repro.svc.service")


class SpecError(ValueError):
    """A request body that cannot become a valid Cell (HTTP 400)."""


class Overloaded(Exception):
    """Backpressure: the request was rejected before any work happened."""

    def __init__(self, status: int, reason: str,
                 retry_after_s: float = 1.0) -> None:
        super().__init__(reason)
        self.status = status  # 429 (queue full) or 503 (breaker/draining)
        self.reason = reason
        self.retry_after_s = retry_after_s


class RequestTimedOut(Exception):
    """The per-request timeout elapsed (HTTP 504); the cell was cancelled
    unless other waiters still want it."""

    def __init__(self, config_hash: str, timeout_s: float) -> None:
        super().__init__(
            f"request for {config_hash[:12]} timed out after {timeout_s}s"
        )
        self.config_hash = config_hash
        self.timeout_s = timeout_s


#: Cell fields settable over the wire, with coercions for JSON types.
_SPEC_FIELDS = {
    "trace": str,
    "policy": str,
    "disks": int,
    "kind": str,
    "scale": float,
    "discipline": str,
    "cpu_speedup": float,
    "cache_blocks": int,
    "disk_model": str,
    "seed": int,
    "scaled_defaults": bool,
    "config_overrides": dict,
    "policy_kwargs": dict,
    "params": dict,
}
_REQUIRED_FIELDS = ("trace", "policy", "disks")
_OPTIONAL_NONE = ("cache_blocks", "seed")


def cell_from_spec(spec: Any) -> Cell:
    """A validated :class:`Cell` from a JSON request body.

    Raises :class:`SpecError` (not bare KeyError/TypeError) so the HTTP
    layer can answer 400 with a message that names the problem.
    """
    if not isinstance(spec, dict):
        raise SpecError(f"cell spec must be a JSON object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - set(_SPEC_FIELDS))
    if unknown:
        raise SpecError(
            f"unknown cell field(s) {', '.join(unknown)}; valid fields: "
            f"{', '.join(sorted(_SPEC_FIELDS))}"
        )
    missing = [name for name in _REQUIRED_FIELDS if name not in spec]
    if missing:
        raise SpecError(f"missing required cell field(s): {', '.join(missing)}")
    kwargs: Dict[str, Any] = {}
    for name, value in spec.items():
        expected = _SPEC_FIELDS[name]
        if value is None and name in _OPTIONAL_NONE:
            kwargs[name] = None
            continue
        if expected in (int, float) and isinstance(value, bool):
            raise SpecError(f"cell field {name!r} must be {expected.__name__}")
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected):
            raise SpecError(
                f"cell field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = value
    try:
        validate_names(kwargs["trace"], kwargs["policy"])
    except ValueError as exc:
        raise SpecError(str(exc)) from None
    return Cell(**kwargs)


@dataclass
class ServiceConfig:
    """Tunables for one service instance (CLI flags map 1:1)."""

    store_dir: str = "svc-store"
    jobs: int = 2
    queue_limit: int = 32
    request_timeout_s: Optional[float] = 120.0
    cell_timeout_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.5
    breaker_failures: int = 5
    breaker_reset_s: float = 30.0
    store_max_entries: Optional[int] = None
    #: Ring-buffer capacity of the progress event stream.
    event_buffer: int = 1024
    #: Request tracing (``repro.obs.svc`` spans + per-request simulation
    #: timelines).  Strictly opt-in: False means no tracer exists at all.
    trace: bool = False
    #: Where ``serve_forever`` writes the merged Perfetto timeline on
    #: drain (implies nothing unless ``trace`` is on).
    trace_out: Optional[str] = None
    #: Wire-protocol bounds the HTTP layer enforces (sizes, deadlines,
    #: connection caps, priority-lane reservation) — see
    #: :mod:`repro.svc.limits` and docs/SERVICE.md.
    limits: ProtocolLimits = field(default_factory=ProtocolLimits)
    #: Per-peer token-bucket rate for compute requests; 0 disables.
    rate_limit_per_s: float = 0.0
    #: Bucket depth per peer when rate limiting is on.
    rate_limit_burst: int = 10


class SimulationService:
    """Crash-safe simulation-as-a-service over the supervised runner."""

    def __init__(
        self,
        config: ServiceConfig,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self.store = ResultStore(
            config.store_dir,
            max_entries=config.store_max_entries,
            metrics=self.metrics,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            reset_timeout_s=config.breaker_reset_s,
            clock=clock,
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            config.queue_limit, metrics=self.metrics
        )
        self.rate_limiter = PeerRateLimiter(
            config.rate_limit_per_s, config.rate_limit_burst, clock=clock
        )
        self.flights = SingleFlight()
        self.pool = SupervisedPool(
            jobs=config.jobs,
            timeout_s=config.cell_timeout_s,
            max_retries=config.max_retries,
            retry_backoff_s=config.retry_backoff_s,
        )
        #: None unless ``config.trace``: the zero-shadowing guarantee is
        #: structural — no tracer object, no span calls, no telemetry
        #: blocks on the worker pipe (tests/test_obs_svc.py pins it).
        self.tracer: Optional[ServiceTracer] = (
            ServiceTracer() if config.trace else None
        )
        self.pool.tracer = self.tracer
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool_thread: Optional[threading.Thread] = None
        self._pool_status: Optional[PoolStatus] = None
        self.draining = False
        self.drain_reason: Optional[str] = None
        self._events: Deque[Dict[str, Any]] = deque(maxlen=config.event_buffer)
        self._event_seq = 0
        self._event_cond: Optional[asyncio.Condition] = None
        # Strong references to in-flight notify tasks: the event loop only
        # keeps weak ones, so an unreferenced task can be garbage-collected
        # before it runs and its exception is never consumed (SL012).
        self._notify_tasks: Set["asyncio.Task[None]"] = set()
        self.started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running event loop and start the pool thread."""
        self._loop = asyncio.get_running_loop()
        self._event_cond = asyncio.Condition()
        self._pool_thread = threading.Thread(
            target=self._pool_main, name="svc-pool", daemon=True
        )
        self._pool_thread.start()
        self.started = True
        self._publish({"type": "service", "state": "started",
                       "resident": len(self.store)})
        _log.info(
            "service started",
            extra={
                "resident": len(self.store),
                "jobs": self.config.jobs,
                "tracing": self.tracer is not None,
            },
        )

    def _pool_main(self) -> None:
        self._pool_status = self.pool.serve(self._emit_from_pool_thread)

    async def drain(self, reason: str = "signal") -> int:
        """Stop admitting, drain in-flight cells, close the store.

        Returns the runner's resumable exit codes: 75 for signal, 76 for
        deadline — a drained service continues from its store exactly as
        an interrupted sweep continues from its journal.
        """
        if not self.draining:
            self.draining = True
            self.drain_reason = reason
            self._publish({"type": "service", "state": "draining",
                           "reason": reason})
        # Unconditionally: the draining flag may have been raised without
        # the pool being told (and request_stop is idempotent anyway).
        self.pool.request_stop(reason)
        if self._pool_thread is not None:
            await asyncio.to_thread(self._pool_thread.join)
        self.store.close()
        self._publish({"type": "service", "state": "drained",
                       "reason": reason})
        _log.info("service drained", extra={"reason": reason})
        return EXIT_DEADLINE if reason == "deadline" else EXIT_INTERRUPTED

    # -- pool completion path ----------------------------------------------

    def _emit_from_pool_thread(self, record: Dict[str, Any]) -> None:
        """Pool thread → event loop handoff for terminal records."""
        loop = self._loop
        if loop is None or loop.is_closed():  # pragma: no cover — teardown
            return
        loop.call_soon_threadsafe(self._on_record, record)

    def _on_record(self, record: Dict[str, Any]) -> None:
        """A cell reached a terminal state (event loop thread)."""
        self.admission.release()
        wall_s = record.get("wall_s")
        if isinstance(wall_s, (int, float)) and not isinstance(wall_s, bool):
            # Feed the deadline-aware admission estimator: projected
            # queue waits are only as honest as this EWMA.
            self.admission.note_service_time(float(wall_s))
        failure = record.get("failure")
        corr_id = record.get("corr_id")
        state_before = self.breaker.state
        # Waiters receive the journal-shaped record (no live result
        # object, no correlation/telemetry transport fields) so computed
        # responses serialize — and match what a later store hit returns,
        # byte for byte.
        record = _storable(record)
        if record["status"] == "ok":
            self.breaker.record_success()
            try:
                with maybe_span(
                    self.tracer, SPAN_STORE_PUT, corr_id or "",
                    hash=record["hash"],
                ):
                    self.store.put(record["hash"], record)
            except OSError as exc:
                # A full/failing store must not fail the request: the
                # result is still returned, it is just not cached.
                self.metrics.inc("svc.store.put_errors")
                self._publish({
                    "type": "store-error", "hash": record["hash"],
                    "error": str(exc), "corr_id": corr_id,
                })
                _log.error(
                    "store put failed",
                    extra={"hash": record["hash"], "error": str(exc),
                           "corr_id": corr_id},
                )
        elif failure in ("crash", "timeout"):
            self.breaker.record_failure()
        elif failure == "exception":
            # Deterministic in-cell failure: the worker itself is healthy.
            self.breaker.record_success()
        if record["status"] != "ok":
            _log.warning(
                "cell failed",
                extra={"hash": record["hash"],
                       "cell_id": record.get("cell_id"),
                       "failure": failure, "corr_id": corr_id},
            )
        if self.breaker.state != state_before:
            self._publish({"type": "breaker", "from": state_before,
                           "to": self.breaker.state})
            _log.warning(
                "breaker transition",
                extra={"from_state": state_before,
                       "to_state": self.breaker.state},
            )
        self.flights.resolve(record["hash"], record)
        self._publish(_event_for(record, corr_id))

    # -- request path ------------------------------------------------------

    async def run_spec(
        self, spec: Any, corr_id: Optional[str] = None
    ) -> Tuple[Dict[str, Any], str]:
        """Serve one JSON cell spec; see :meth:`run_cell`."""
        return await self.run_cell(cell_from_spec(spec), corr_id=corr_id)

    async def run_cell(
        self,
        cell: Cell,
        timeout_s: Optional[float] = None,
        corr_id: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], str]:
        """Serve one cell: ``(terminal record, how it was served)``.

        ``timeout_s`` overrides the configured per-request timeout for
        this call only.  ``corr_id`` is the request's correlation ID
        (the HTTP layer mints one at accept; direct callers may pass
        their own or let one be minted here) — it stamps every published
        event and, when tracing is on, every span.  Raises
        :class:`Overloaded` on backpressure and :class:`RequestTimedOut`
        when the timeout elapses.
        """
        if timeout_s is None:
            timeout_s = self.config.request_timeout_s
        if corr_id is None:
            corr_id = new_correlation_id()
        start = self._clock()
        config_hash = cell.config_hash
        self.metrics.inc("svc.requests")
        with maybe_span(
            self.tracer, SPAN_STORE_GET, corr_id, hash=config_hash
        ):
            # Deliberately on-loop: a store hit is one open()+json.load
            # of a small record — microseconds against a multi-second
            # simulate, and serializing hits on the loop is what makes
            # the hit path bit-identical to the journal record without
            # locking the store.
            cached = self.store.get(config_hash)  # simlint: disable=SL010
        if cached is not None:
            self.metrics.inc("svc.served_store")
            self._observe_latency(start, SERVED_STORE)
            self._publish({"type": "request", "hash": config_hash,
                           "cell_id": cell.cell_id, "served": SERVED_STORE,
                           "corr_id": corr_id})
            return cached, SERVED_STORE
        future, leader = self.flights.join(config_hash)
        if leader:
            # No awaits between join and submit: the leader's admission
            # decisions are atomic on the event loop.  The span measures
            # miss detection through breaker/admission checks to pool
            # submission (rejections end it early, exception included).
            try:
                with maybe_span(
                    self.tracer, SPAN_ADMISSION_WAIT, corr_id,
                    hash=config_hash, cell_id=cell.cell_id,
                ):
                    self._admit(cell, corr_id, timeout_s)
            except Overloaded:
                self.flights.leave(config_hash)
                raise
        # Followers record their coalesced wait; the leader's wait is
        # already decomposed into pool.queue + worker.execute.
        join_tracer = None if leader else self.tracer
        try:
            with maybe_span(
                join_tracer, SPAN_SINGLEFLIGHT_JOIN, corr_id,
                hash=config_hash,
            ):
                if timeout_s is not None:
                    record = await asyncio.wait_for(
                        asyncio.shield(future), timeout_s
                    )
                else:
                    record = await future
        except asyncio.TimeoutError:
            remaining = self.flights.leave(config_hash)
            if remaining == 0:
                self.pool.cancel(config_hash)
            self.metrics.inc("svc.request_timeouts")
            _log.warning(
                "request timed out",
                extra={"hash": config_hash, "timeout_s": timeout_s,
                       "corr_id": corr_id},
            )
            raise RequestTimedOut(config_hash, timeout_s or 0.0) from None
        served = SERVED_COMPUTED if leader else SERVED_COALESCED
        self.metrics.inc(f"svc.served_{served}")
        self._observe_latency(start, served)
        self._publish({"type": "request", "hash": config_hash,
                       "cell_id": cell.cell_id, "served": served,
                       "corr_id": corr_id})
        return record, served

    def _admit(
        self, cell: Cell, corr_id: str,
        deadline_s: Optional[float] = None,
    ) -> None:
        """Leader-side backpressure checks, then submit to the pool.

        ``deadline_s`` is the request's remaining budget: when the
        admission controller projects a queue wait beyond it, the
        request is shed *now* with 429 (CoDel-style) instead of burning
        a slot for ``deadline_s`` seconds and answering 504 anyway.
        """
        if self.draining:
            self._note_shed(cell, corr_id, "draining", 5.0)
            raise Overloaded(503, "service is draining", 5.0)
        if not self.breaker.allow():
            retry = self.breaker.retry_after_s or 1.0
            self._note_shed(cell, corr_id, "breaker", retry)
            raise Overloaded(
                503,
                f"circuit breaker {self.breaker.state} after "
                f"{self.breaker.consecutive_failures} consecutive pool "
                "failures",
                retry,
            )
        admitted, reason, retry_after_s = self.admission.admit(
            deadline_s or 0.0, self.config.jobs
        )
        if not admitted:
            self._note_shed(cell, corr_id, reason, retry_after_s)
            if reason == "deadline":
                projected = self.admission.projected_wait_s(self.config.jobs)
                raise Overloaded(
                    429,
                    f"shed early: projected queue wait {projected:.1f}s "
                    f"exceeds the {deadline_s or 0.0:.0f}s request deadline",
                    retry_after_s,
                )
            raise Overloaded(
                429,
                f"admission queue full ({self.admission.limit} cells in "
                "the system)",
                retry_after_s,
            )
        self.pool.submit(cell, meta=self._task_meta(corr_id))
        self._publish({"type": "queued", "hash": cell.config_hash,
                       "cell_id": cell.cell_id, "corr_id": corr_id})

    def _note_shed(
        self, cell: Cell, corr_id: str, reason: str, retry_after_s: float
    ) -> None:
        """Count, trace, and publish a pre-admission refusal — shed
        decisions must be as observable as served requests (a flat
        goodput curve you cannot see is indistinguishable from an
        outage)."""
        self.metrics.inc(labeled("svc.overload.shed", reason=reason))
        if self.tracer is not None:
            now_ms = self.tracer.now_ms()
            self.tracer.add_span(
                SPAN_OVERLOAD_SHED, corr_id, now_ms, 0.0,
                reason=reason, hash=cell.config_hash,
                retry_after_s=round(retry_after_s, 3),
                projected_wait_s=round(
                    self.admission.projected_wait_s(self.config.jobs), 3
                ),
            )
        self._publish({"type": "shed", "reason": reason,
                       "hash": cell.config_hash, "cell_id": cell.cell_id,
                       "corr_id": corr_id})

    def _task_meta(self, corr_id: str) -> Dict[str, Any]:
        """Per-request metadata crossing the pool's duplex pipe: the
        correlation ID always (event stamping and worker log records
        work untraced); the trace flag and submission timestamp only
        matter when the tracer exists."""
        meta: Dict[str, Any] = {"corr_id": corr_id, "trace": False}
        if self.tracer is not None:
            meta["trace"] = True
            meta["submitted_ms"] = self.tracer.now_ms()
        return meta

    async def run_cells(
        self, cells: List[Cell], corr_id: Optional[str] = None
    ) -> List[Tuple[Optional[Dict[str, Any]], str]]:
        """Serve a bundle of cells concurrently (a sweep request).

        Returns one ``(record, served)`` pair per cell, in order; a cell
        rejected by backpressure or timed out yields ``(None, reason)``
        so one hot bundle member cannot sink its siblings.  Each cell
        gets a derived correlation ID (``<corr_id>.<index>``) so a
        sweep's members stay attributable to the one HTTP request.
        """
        if corr_id is None:
            corr_id = new_correlation_id()

        async def one(
            cell: Cell, member_id: str
        ) -> Tuple[Optional[Dict[str, Any]], str]:
            try:
                return await self.run_cell(cell, corr_id=member_id)
            except Overloaded as exc:
                return None, f"rejected:{exc.status}"
            except RequestTimedOut:
                return None, "timeout"

        return list(await asyncio.gather(*(
            one(cell, f"{corr_id}.{index}")
            for index, cell in enumerate(cells)
        )))

    # -- events & status ---------------------------------------------------

    def _observe_latency(self, start: float, served: str) -> None:
        elapsed_ms = (self._clock() - start) * 1000.0
        self.metrics.histogram(
            "svc.request_ms", REQUEST_BUCKETS_MS
        ).observe(elapsed_ms)
        # Per-outcome latency: store hits, computed cells, and coalesced
        # waits have wildly different distributions — one histogram per
        # ``served`` label keeps them distinguishable in Prometheus.
        self.metrics.histogram(
            labeled("svc.request_outcome_ms", served=served),
            REQUEST_BUCKETS_MS,
        ).observe(elapsed_ms)

    def _publish(self, event: Dict[str, Any]) -> None:
        self._event_seq += 1
        event = dict(event, seq=self._event_seq)
        self._events.append(event)
        cond = self._event_cond
        if cond is not None:
            # Wake streaming readers; schedule rather than await (callers
            # of _publish are synchronous).  Keep a strong reference until
            # the task completes — the loop's own reference is weak.
            task = asyncio.ensure_future(_notify(cond))
            self._notify_tasks.add(task)
            task.add_done_callback(self._notify_tasks.discard)

    async def events_since(
        self, seq: int, timeout_s: float = 10.0
    ) -> List[Dict[str, Any]]:
        """Events with ``seq`` **strictly greater** than the given one
        (``seq`` itself is excluded — pass the last sequence number you
        have seen and you will never receive it twice; ``seq=0`` returns
        everything still buffered).  Waits up to ``timeout_s`` for news;
        empty list on timeout (long-poll/stream heartbeat).  Pinned by
        ``tests/test_obs_svc.py::TestEventsSince``."""
        fresh = [e for e in self._events if e["seq"] > seq]
        if fresh or self._event_cond is None:
            return fresh
        try:
            async with self._event_cond:
                await asyncio.wait_for(
                    self._event_cond.wait(), timeout_s
                )
        except asyncio.TimeoutError:
            return []
        return [e for e in self._events if e["seq"] > seq]

    def sample_gauges(self) -> None:
        """Refresh scrape-time gauges (queue depth, per-worker
        utilization, store hit ratio).  Called by :meth:`status` and by
        the HTTP layer before every ``/v1/metrics`` export, so gauges
        reflect *now* rather than the last state-changing request."""
        self.metrics.gauge("svc.pool.queue_depth").set(
            float(self.pool.queue_depth())
        )
        for worker_id, fraction in self.pool.utilization().items():
            self.metrics.gauge(
                labeled("svc.pool.worker_utilization",
                        worker=str(worker_id))
            ).set(fraction)
        self.metrics.gauge("svc.store.hit_ratio").set(self.store.hit_ratio)

    def status(self) -> Dict[str, Any]:
        self.sample_gauges()
        return {
            "draining": self.draining,
            "drain_reason": self.drain_reason,
            "breaker": self.breaker.status(),
            "admission": self.admission.status(),
            "rate_limiter": self.rate_limiter.status(),
            "pool": {
                "jobs": self.pool.jobs,
                "queue_depth": self.pool.queue_depth(),
                "utilization": {
                    str(worker_id): round(fraction, 6)
                    for worker_id, fraction
                    in self.pool.utilization().items()
                },
                "counters": dict(self.pool.counters),
            },
            "store": self.store.stats(),
            "telemetry": {
                "tracing": self.tracer is not None,
                "spans": len(self.tracer.spans)
                if self.tracer is not None else 0,
            },
            "requests": {
                name: counter.value
                for name, counter in self.metrics.counters.items()
                if name.startswith("svc.")
            },
        }


async def _notify(cond: asyncio.Condition) -> None:
    async with cond:
        cond.notify_all()


#: Transport-only record fields that must never reach waiters or the
#: store: the live result object (not serializable) and the telemetry /
#: correlation block (request-specific — keeping it would make a
#: computed response differ from the store hit a byte-identity test
#: compares it against).
_TRANSPORT_FIELDS = frozenset({"result_obj", "telemetry", "corr_id"})


def _storable(record: Dict[str, Any]) -> Dict[str, Any]:
    """The journal-shaped subset of a record that belongs in the store
    (drop the live result object and per-request transport fields; the
    serialized form is lossless)."""
    return {k: v for k, v in record.items() if k not in _TRANSPORT_FIELDS}


def _event_for(
    record: Dict[str, Any], corr_id: Optional[str] = None
) -> Dict[str, Any]:
    event = {
        "type": "record",
        "hash": record["hash"],
        "cell_id": record.get("cell_id"),
        "status": record["status"],
        # The *originating* request: the flight leader that submitted
        # the cell (coalesced followers see it in their own request
        # events).
        "corr_id": corr_id,
    }
    if record["status"] == "ok":
        event["digest"] = record["digest"]
        event["wall_s"] = record.get("wall_s")
    else:
        event["failure"] = record.get("failure")
    return event

"""Per-client token-bucket rate limiting keyed by peer address.

One misbehaving client must not be able to consume the whole admission
queue: before a compute request reaches admission, the server charges a
token from the peer's bucket and refuses with 429 + ``Retry-After`` when
the bucket is dry.  Buckets refill continuously at ``rate_per_s`` up to
``burst``, so well-paced clients never notice and bursty ones are shaped
rather than banned.

The bucket map is LRU-bounded (``max_peers``): a spoofing client cycling
through source addresses cannot grow server memory — the oldest idle
bucket is evicted, which at worst *refreshes* an attacker's allowance to
one burst, never blocks a legitimate peer longer than its own bucket
would.  Time comes from an injectable monotonic clock so tests run
instantly (and the SL002 wall-clock rule stays satisfied via the
``repro.svc`` orchestration allowlist).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

__all__ = ["PeerRateLimiter"]


class PeerRateLimiter:
    """Token buckets per peer key (usually the client IP).

    ``rate_per_s <= 0`` disables limiting entirely — ``check`` always
    admits — so the feature is strictly opt-in from the CLI.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        max_peers: int = 4096,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if max_peers < 1:
            raise ValueError("max_peers must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self.max_peers = int(max_peers)
        self._clock: Callable[[], float] = clock or time.monotonic
        # peer -> (tokens, last_refill_ts); OrderedDict gives LRU eviction.
        self._buckets: "OrderedDict[str, Tuple[float, float]]" = OrderedDict()
        self.rejected_total = 0
        self.evicted_total = 0

    @property
    def enabled(self) -> bool:
        return self.rate_per_s > 0.0

    def check(self, peer: str) -> Tuple[bool, float]:
        """Charge one token for ``peer``.

        Returns ``(admitted, retry_after_s)``; ``retry_after_s`` is how
        long until one token will be available when refused, 0 when
        admitted.
        """
        if not self.enabled:
            return True, 0.0
        now = self._clock()
        tokens, last = self._buckets.pop(peer, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - last) * self.rate_per_s)
        if tokens >= 1.0:
            self._buckets[peer] = (tokens - 1.0, now)
            self._evict()
            return True, 0.0
        self._buckets[peer] = (tokens, now)
        self._evict()
        self.rejected_total += 1
        retry_after_s = (1.0 - tokens) / self.rate_per_s
        return False, retry_after_s

    def _evict(self) -> None:
        while len(self._buckets) > self.max_peers:
            self._buckets.popitem(last=False)
            self.evicted_total += 1

    def status(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "peers": len(self._buckets),
            "rejected_total": self.rejected_total,
            "evicted_total": self.evicted_total,
        }

"""Sharded, content-addressed result store — the service's cache.

The store maps a cell's **config hash** to its completed journal record
(result, digest, wall time).  It is deliberately shaped like the caches
this repository simulates: requests *hit* or *miss*, capacity pressure
*evicts* by recency, and the hit ratio is a first-class reported metric —
the paper's own subject matter, dogfooded (see ``docs/SERVICE.md``).

Durability model (the part chaos testing leans on):

* Results live at ``<root>/<hh>/<hash>.json`` (two-hex-character shard
  directories) and are written with
  :func:`repro.runner.journal.write_json_atomic` — tmp file, fsync,
  ``os.replace`` — so a reader can never observe a torn result file that
  *we* wrote.  A file torn by outside forces (the chaos harness, a bad
  disk) fails JSON validation on read and is quarantined into a miss.
* An append-only fsynced ``store.log.jsonl`` records every ``put`` (with
  its digest) and ``evict`` before the result file changes.  The log is
  the authority the chaos invariants are checked against: every digest
  ever recorded for a hash must be identical, and a resident file must
  match its logged digest.  ``touch`` entries (hit recency) are appended
  *without* fsync — losing recency can cost a future hit, never a result.
* Opening a store sweeps orphaned ``.*.tmp`` files (a crash between
  tmp-write and rename) and skips malformed log lines, counting both.

Crash points (:func:`repro.svc.chaos.crash_point`) bracket the dangerous
window: ``store.put.pre-log`` → ``store.put.post-log`` (logged but not
yet renamed) → ``store.put.post-write``.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, TextIO

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

from repro.runner.journal import sweep_stale_tmp, write_json_atomic
from repro.svc.chaos import crash_point

STORE_LOG_NAME = "store.log.jsonl"

#: Store log schema version.
LOG_VERSION = 1


class ResultStore:
    """Content-addressed cache of completed cell records.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`; the
    store mirrors its counters there under ``svc.store.*``.
    ``max_entries`` bounds residency: puts beyond it evict the least
    recently *used* entry (LRU over puts and hits), mirroring the cache
    replacement the simulator itself studies.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = root
        self.max_entries = max_entries
        self.metrics = metrics
        self.log_path = os.path.join(root, STORE_LOG_NAME)
        self._log_handle: Optional[TextIO] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.put_dedup = 0
        self.evictions = 0
        self.corrupt = 0
        self.skipped_log_lines = 0
        self.swept_tmp = 0
        #: Resident hashes in least-recently-used-first order.
        self._lru: "OrderedDict[str, str]" = OrderedDict()  # hash -> digest
        self._open()

    # -- lifecycle ---------------------------------------------------------

    def _open(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        self.swept_tmp += sweep_stale_tmp(self.root)
        for name in sorted(os.listdir(self.root)):
            shard = os.path.join(self.root, name)
            if len(name) == 2 and os.path.isdir(shard):
                self.swept_tmp += sweep_stale_tmp(shard)
        self._inc("svc.store.swept_tmp", self.swept_tmp)
        self._recover()

    def _recover(self) -> None:
        """Rebuild residency and recency from the log plus the shard
        directories, dropping log entries whose files never made it
        (crash between log append and rename — the recompute is free to
        happen again; the logged digest pins what it must produce)."""
        logged_digest: Dict[str, str] = {}
        order: "OrderedDict[str, None]" = OrderedDict()
        for entry in self.read_log():
            op = entry.get("op")
            entry_hash = entry.get("hash")
            if not isinstance(entry_hash, str):
                continue
            if op == "put":
                digest = entry.get("digest")
                if isinstance(digest, str):
                    logged_digest[entry_hash] = digest
                order[entry_hash] = None
                order.move_to_end(entry_hash)
            elif op == "touch":
                if entry_hash in order:
                    order.move_to_end(entry_hash)
            elif op == "evict":
                order.pop(entry_hash, None)
        resident: Dict[str, str] = {}
        for name in sorted(os.listdir(self.root)):
            shard = os.path.join(self.root, name)
            if not (len(name) == 2 and os.path.isdir(shard)):
                continue
            for filename in sorted(os.listdir(shard)):
                if not filename.endswith(".json"):
                    continue
                resident[filename[: -len(".json")]] = ""
        self._lru = OrderedDict()
        # Files with no surviving log entry (log lost or truncated) come
        # first — oldest, so capacity pressure reclaims them first.
        for entry_hash in resident:
            if entry_hash not in order:
                self._lru[entry_hash] = logged_digest.get(entry_hash, "")
        for entry_hash in order:
            if entry_hash in resident:
                self._lru[entry_hash] = logged_digest.get(entry_hash, "")

    def close(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.inc(name, amount)

    def path_for(self, config_hash: str) -> str:
        """The sharded result path for ``config_hash``."""
        return os.path.join(
            self.root, config_hash[:2], f"{config_hash}.json"
        )

    def _append_log(self, entry: Dict[str, Any], fsync: bool) -> None:
        entry = dict(entry)
        entry.setdefault("v", LOG_VERSION)
        if self._log_handle is None:
            self._log_handle = open(self.log_path, "a")
        self._log_handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._log_handle.flush()
        if fsync:
            if self.metrics is None:
                os.fsync(self._log_handle.fileno())
            else:
                fsync_start = time.perf_counter()
                os.fsync(self._log_handle.fileno())
                from repro.obs.metrics import FSYNC_BUCKETS_MS

                self.metrics.histogram(
                    "svc.store.fsync_ms", FSYNC_BUCKETS_MS
                ).observe((time.perf_counter() - fsync_start) * 1000.0)

    def read_log(self) -> List[Dict[str, Any]]:
        """Every fully written log entry; malformed lines (torn tails,
        chaos tears) are skipped and recounted into
        :attr:`skipped_log_lines`."""
        entries: List[Dict[str, Any]] = []
        skipped = 0
        try:
            with open(self.log_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except json.JSONDecodeError:
                        skipped += 1
        except OSError:
            pass
        self.skipped_log_lines = skipped
        return entries

    def _quarantine(self, config_hash: str, path: str) -> None:
        """A result file that fails validation is removed (the log still
        pins the digest any recompute must reproduce)."""
        self.corrupt += 1
        self._inc("svc.store.corrupt")
        try:
            os.unlink(path)
        except OSError:
            pass
        self._lru.pop(config_hash, None)

    # -- the cache surface -------------------------------------------------

    def get(self, config_hash: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``config_hash``, or None on a miss.

        A file that exists but fails validation (torn by the chaos
        harness or a dying disk) counts as corrupt *and* a miss: it is
        quarantined so the caller recomputes, and the recompute's digest
        is checked against the log by the chaos invariants.
        """
        path = self.path_for(config_hash)
        try:
            with open(path) as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            self._inc("svc.store.misses")
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(config_hash, path)
            self.misses += 1
            self._inc("svc.store.misses")
            return None
        if (
            not isinstance(record, dict)
            or record.get("hash") != config_hash
            or record.get("status") != "ok"
            or not isinstance(record.get("digest"), str)
        ):
            self._quarantine(config_hash, path)
            self.misses += 1
            self._inc("svc.store.misses")
            return None
        self.hits += 1
        self._inc("svc.store.hits")
        if config_hash in self._lru:
            self._lru.move_to_end(config_hash)
        else:
            self._lru[config_hash] = record["digest"]
        # Recency is advisory: no fsync — losing it can cost a future
        # hit, never a result.
        self._append_log({"op": "touch", "hash": config_hash}, fsync=False)
        return record

    def put(self, config_hash: str, record: Dict[str, Any]) -> bool:
        """Store a completed record; returns False when an identical
        entry is already resident (idempotent re-put after a crash
        recompute records nothing new)."""
        if record.get("status") != "ok" or not isinstance(
            record.get("digest"), str
        ):
            raise ValueError(
                "only successful records with a digest are storable; got "
                f"status={record.get('status')!r}"
            )
        if record.get("hash") != config_hash:
            raise ValueError(
                f"record hash {record.get('hash')!r} != {config_hash!r}"
            )
        path = self.path_for(config_hash)
        if self._lru.get(config_hash) == record["digest"] and os.path.exists(
            path
        ):
            self.put_dedup += 1
            self._inc("svc.store.put_dedup")
            return False
        crash_point("store.put.pre-log")
        self._append_log(
            {"op": "put", "hash": config_hash, "digest": record["digest"]},
            fsync=True,
        )
        # The window a torn-down process is most likely to expose: the
        # log pins the digest, the result file does not exist yet.
        crash_point("store.put.post-log")
        write_json_atomic(path, record)
        crash_point("store.put.post-write")
        self.writes += 1
        self._inc("svc.store.writes")
        self._lru[config_hash] = record["digest"]
        self._lru.move_to_end(config_hash)
        self._evict_over_capacity()
        return True

    def _evict_over_capacity(self) -> None:
        if self.max_entries is None:
            return
        while len(self._lru) > self.max_entries:
            victim, _digest = next(iter(self._lru.items()))
            self._lru.pop(victim)
            self._append_log({"op": "evict", "hash": victim}, fsync=True)
            try:
                os.unlink(self.path_for(victim))
            except OSError:
                pass
            self.evictions += 1
            self._inc("svc.store.evictions")

    # -- reporting ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self._lru

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups — the store reporting on itself exactly the
        way the paper reports buffer-cache performance."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "resident": len(self._lru),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 6),
            "writes": self.writes,
            "put_dedup": self.put_dedup,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "skipped_log_lines": self.skipped_log_lines,
            "swept_tmp": self.swept_tmp,
        }

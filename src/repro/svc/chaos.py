"""Chaos injection points: crash or fail the process at named instants.

The service's crash-safety claims are only worth something if they are
*exercised* — this module gives the chaos harness
(``tests/test_svc_chaos.py``, ``scripts/chaos_smoke.py``) surgical
control over where a process dies or where a write fails:

* ``REPRO_CHAOS_EXIT_AT=<point>`` — the process calls ``os._exit(137)``
  the first time execution reaches :func:`crash_point` with that name,
  simulating SIGKILL at exactly that instant (e.g. between the store's
  log append and its atomic result rename).
* ``REPRO_CHAOS_RAISE_AT=<point>`` — :func:`crash_point` raises
  ``OSError(ENOSPC)`` at that point, simulating a full run directory;
  unlike the exit, this repeats on every hit so the caller's error
  handling is exercised continuously.

Both are read from the environment on every call, so a harness can flip
them for a *subprocess* without touching the parent.  When neither
variable is set the check is two dict lookups — cheap at cell
granularity (the points sit on store writes, not simulation hot paths).

The named points live in :mod:`repro.svc.store`; see ``docs/SERVICE.md``
for the catalogue and the invariants the harness asserts around each.
"""

from __future__ import annotations

import errno
import os
import random
from typing import List, Optional

#: Environment variable naming the point at which to hard-exit.
CRASH_ENV = "REPRO_CHAOS_EXIT_AT"
#: Environment variable naming the point at which to raise ENOSPC.
RAISE_ENV = "REPRO_CHAOS_RAISE_AT"
#: Exit status of a chaos-killed process (mirrors SIGKILL's 128+9).
CHAOS_EXIT_CODE = 137


def crash_point(name: str) -> None:
    """Die or fail here if the environment says so; otherwise a no-op."""
    if os.environ.get(CRASH_ENV) == name:
        os._exit(CHAOS_EXIT_CODE)
    if os.environ.get(RAISE_ENV) == name:
        raise OSError(
            errno.ENOSPC, f"chaos: injected ENOSPC at {name!r}"
        )


def tear_file(path: str, rng: random.Random,
              min_remaining: int = 0) -> Optional[int]:
    """Truncate ``path`` at a random offset, simulating a torn write.

    Returns the offset, or None when the file is missing or empty (there
    is nothing to tear).  ``rng`` must be a seeded ``random.Random`` so
    chaos scenarios replay deterministically.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    if size <= min_remaining:
        return None
    offset = rng.randrange(min_remaining, size)
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return offset


def kill_worker(pid: int) -> bool:
    """SIGKILL one pool worker mid-cell; True if the signal was sent."""
    import signal

    try:
        os.kill(pid, signal.SIGKILL)
        return True
    except (OSError, ProcessLookupError):
        return False


def worker_pids(pool: object) -> List[int]:
    """The live worker PIDs of a :class:`~repro.runner.pool.SupervisedPool`
    (chaos targets)."""
    pids: List[int] = []
    for worker in getattr(pool, "_workers", []):
        process = getattr(worker, "process", None)
        if process is not None and process.pid is not None:
            if process.is_alive():
                pids.append(process.pid)
    return pids

"""Protocol limits: every byte and every second a client may cost us.

The HTTP front end assumed a friendly network: ``readuntil`` with no
deadline, bodies read whole, one connection per request with nothing
counting how many are open.  A hostile peer — a slowloris dripping one
header byte a second, a client posting an 8 GiB body, ten thousand idle
sockets — could hold memory and admission slots forever.

:class:`ProtocolLimits` names every bound in one frozen dataclass so the
server, the CLI, and the docs cannot drift apart.  Two ceilings are
**hard**: no configuration may raise ``max_header_bytes`` above
:data:`HARD_MAX_HEADER_BYTES` or ``max_body_bytes`` above
:data:`HARD_MAX_BODY_BYTES` — values beyond them are clamped at
construction, so *no* configuration of the server is memory-unbounded
(the regression tests in ``tests/test_svc_hardening.py`` pin this).

Each limit maps to one observable refusal (docs/SERVICE.md, "Overload
and hostile networks"):

=====================================  ======================================
limit                                   refusal
=====================================  ======================================
``max_request_line_bytes``              431 Request Header Fields Too Large
``max_header_bytes``                    431 (also the stream buffer limit)
``max_body_bytes``                      413 Payload Too Large
``header_timeout_s``                    408 Request Timeout (slowloris)
``body_timeout_s``                      408 Request Timeout (drip-fed body)
``max_connections``                     503 + ``Retry-After`` at accept
``reserved_read_connections``           429 for compute when the lane is full
``max_requests_per_connection``         ``Connection: close`` on the last one
``keepalive_idle_s``                    silent close of an idle connection
``events_drain_timeout_s``              disconnect of a stalled event reader
``events_buffer_bytes``                 write-buffer bound per event stream
=====================================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass

#: No configuration may buffer more header bytes than this (64 KiB).
HARD_MAX_HEADER_BYTES = 64 * 1024
#: No configuration may buffer more body bytes than this (8 MiB).
HARD_MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ProtocolLimits:
    """Wire-protocol bounds for one :class:`~repro.svc.http.ServiceServer`.

    Every field has a conservative default, so a server constructed with
    ``ProtocolLimits()`` is already hardened; the CLI exposes each as a
    ``serve`` flag.  Size limits are clamped to the hard ceilings above.
    """

    #: Maximum bytes of request line + headers before 431.
    max_header_bytes: int = 16 * 1024
    #: Maximum declared/read body bytes before 413.
    max_body_bytes: int = 4 * 1024 * 1024
    #: Maximum bytes of the request line alone before 431.
    max_request_line_bytes: int = 4096
    #: Seconds to receive the complete header block before 408.
    header_timeout_s: float = 10.0
    #: Seconds to receive the complete body before 408.
    body_timeout_s: float = 30.0
    #: Seconds a keep-alive connection may sit idle between requests.
    keepalive_idle_s: float = 15.0
    #: Open connections beyond this are refused with 503 + Retry-After.
    max_connections: int = 256
    #: Connection headroom reserved for read-only routes: compute requests
    #: (POST /v1/cells, /v1/sweeps) may use at most
    #: ``max_connections - reserved_read_connections`` slots concurrently,
    #: so O(1) cached reads are never starved by compute traffic.
    reserved_read_connections: int = 32
    #: Requests served per keep-alive connection before ``Connection:
    #: close`` (bounds per-connection state and amortized abuse).
    max_requests_per_connection: int = 100
    #: Seconds a ``/v1/events`` consumer may stall ``drain()`` before the
    #: connection is aborted (a reader that stops reading must not make
    #: the server buffer without bound).
    events_drain_timeout_s: float = 10.0
    #: Transport write-buffer high watermark per event stream.
    events_buffer_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "max_header_bytes",
            min(self.max_header_bytes, HARD_MAX_HEADER_BYTES),
        )
        object.__setattr__(
            self, "max_body_bytes",
            min(self.max_body_bytes, HARD_MAX_BODY_BYTES),
        )
        object.__setattr__(
            self, "max_request_line_bytes",
            min(self.max_request_line_bytes, self.max_header_bytes),
        )
        for name in (
            "max_header_bytes", "max_body_bytes", "max_request_line_bytes",
            "max_connections", "max_requests_per_connection",
            "events_buffer_bytes",
        ):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in (
            "header_timeout_s", "body_timeout_s", "keepalive_idle_s",
            "events_drain_timeout_s",
        ):
            if float(getattr(self, name)) <= 0.0:
                raise ValueError(f"{name} must be > 0")
        if self.reserved_read_connections < 0:
            raise ValueError("reserved_read_connections must be >= 0")

    @property
    def compute_connections(self) -> int:
        """Concurrent compute requests allowed (the compute lane width):
        total connections minus the read-only reservation, floor 1."""
        return max(1, self.max_connections - self.reserved_read_connections)
